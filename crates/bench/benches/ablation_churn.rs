//! **Churn scenario: recall under adversity** — the paper inherits
//! Chord's resilience claims (§3.3) without measuring them; this
//! scenario does. The same index and workload run on a healthy overlay,
//! under 5% and 10% message loss, and under loss plus crash/restart
//! churn — once bare (`r = 1`, no retries) and once with the resilience
//! layer (`r = 2`, retry/failover). Bare runs silently shed recall as
//! faults rise; resilient runs hold it at the cost of retransmissions.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::Scale;
use landmark::SelectionMethod;
use simsearch::ResilienceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Churn: recall under message loss and crash/restart ===");
    println!(
        "{} nodes, {} objects, KMean-10",
        scale.n_nodes, scale.n_objects
    );
    let setup = synth_setup(&scale);
    let factors = [0.05];

    let mut table = Vec::new();
    for (name, resilient, loss, churn) in [
        ("healthy/bare", false, 0.0, 0),
        ("loss5%/bare", false, 0.05, 0),
        ("loss10%/bare", false, 0.10, 0),
        ("healthy/r2", true, 0.0, 0),
        ("loss5%/r2", true, 0.05, 0),
        ("loss10%/r2", true, 0.10, 0),
        ("churn+loss10%/r2", true, 0.10, 2),
    ] {
        eprintln!("running {name} ...");
        let run = SynthRun {
            resilience: resilient.then(ResilienceConfig::default),
            loss,
            churn,
            ..SynthRun::new(SelectionMethod::KMeans, 10, None)
        };
        let (rows, _) = run_synth(&scale, &setup, &run, &factors);
        table.push((name, rows));
    }

    println!(
        "\n{:>18} {:>8} {:>10} {:>8} {:>10}",
        "scenario", "hops", "resp-ms", "recall", "msgs"
    );
    for (name, rows) in &table {
        let r = &rows[0];
        println!(
            "{:>18} {:>8.2} {:>10.1} {:>8.3} {:>10.1}",
            name, r.hops, r.response_ms, r.recall, r.query_msgs
        );
    }
}
