//! **Ablation: Z-order (the paper's Algorithm 2) vs Hilbert locality.**
//!
//! The paper's related work (SCRAP) linearizes the index space with a
//! Hilbert curve; the paper instead uses a k-d bisection whose keys are
//! bit-interleaved — i.e. Z-order — because the prefix structure is what
//! the embedded-tree routing (Algorithms 3–5) splits on. The cost of
//! that choice is locality: a query region maps to more separate runs of
//! the key space (= ring arcs to visit). This harness quantifies the gap
//! across dimensionalities and query sizes.

use bench::{save_json, Scale};
use lph::{HilbertGrid, Rect};
use simnet::SimRng;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: Z-order (paper) vs Hilbert (SCRAP) key-space locality ===");
    println!("metric: contiguous key-space runs per query region (fewer = fewer ring arcs)");

    let mut rng = SimRng::new(scale.seed).fork(0xC0);
    let trials = if scale.full { 400 } else { 120 };

    println!(
        "\n{:>5} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "dims", "side%", "regions", "Z-runs", "H-runs", "Z/H"
    );
    let mut out = Vec::new();
    for (dims, bits) in [(2usize, 8u32), (3, 6), (4, 5)] {
        for side_frac in [0.05f64, 0.10, 0.20] {
            let grid = HilbertGrid::new(Rect::cube(dims, 0.0, 1.0), bits);
            let mut z_total = 0usize;
            let mut h_total = 0usize;
            let mut counted = 0usize;
            for _ in 0..trials {
                let lo: Vec<f64> = (0..dims).map(|_| rng.f64() * (1.0 - side_frac)).collect();
                let hi: Vec<f64> = lo.iter().map(|&l| l + side_frac).collect();
                let rect = Rect::new(lo, hi);
                let z = grid.runs_for_rect(&rect, |c| grid.morton_rank_of_cell(c), 2_000_000);
                let h = grid.runs_for_rect(&rect, |c| grid.rank_of_cell(c), 2_000_000);
                if let (Some(z), Some(h)) = (z, h) {
                    z_total += z;
                    h_total += h;
                    counted += 1;
                }
            }
            let zr = z_total as f64 / counted as f64;
            let hr = h_total as f64 / counted as f64;
            println!(
                "{dims:>5} {:>8.0} {counted:>10} {zr:>12.2} {hr:>12.2} {:>8.2}",
                side_frac * 100.0,
                zr / hr
            );
            out.push(serde_json::json!({
                "dims": dims, "side": side_frac, "z_runs": zr, "h_runs": hr,
            }));
            assert!(
                hr <= zr,
                "Hilbert locality must not lose to Z-order: {hr} vs {zr}"
            );
        }
    }
    println!(
        "\nOK: Hilbert needs fewer key-space runs everywhere — the locality the paper \
trades away for prefix-routable keys (Alg. 3-5 cut the resulting arc count \
by sharing embedded-tree paths instead; see ablation_routing)."
    );
    save_json("ablation_curves", &out);
}
