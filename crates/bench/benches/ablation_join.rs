//! **Ablation: join-time balancing vs dynamic migration** (§3.4's two
//! dynamic mechanisms).
//!
//! The paper offers two runtime levers: (1) steer *joining* nodes toward
//! heavily loaded ranges, splitting them in half, and (2) migrate load
//! afterwards by asking light nodes to leave and re-join. This harness
//! compares four builds on the same skewed synthetic index:
//! random ids / load-aware joins, each with and without migration.

use bench::synth::{select_landmarks, synth_setup};
use bench::{save_json, Scale};
use landmark::{boundary_from_metric, Mapper, SelectionMethod};
use metric::{Metric, ObjectId, L2};
use simsearch::{
    IndexSpec, LoadBalanceConfig, QueryDistance, QueryId, QuerySpec, SearchSystem, SystemConfig,
};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: join-time balancing vs dynamic migration ===");
    println!(
        "{} nodes, {} objects, KMean-10",
        scale.n_nodes, scale.n_objects
    );

    let setup = synth_setup(&scale);
    let landmarks = select_landmarks(&setup, SelectionMethod::KMeans, 10, &scale);
    let metric = L2::bounded(100, 0.0, 100.0);
    let mapper = Mapper::new(metric, landmarks);
    let boundary = boundary_from_metric(&metric, 10).unwrap();
    let points = mapper.map_all::<[f32], _>(&setup.dataset.objects);
    let qmapped = mapper.map_all::<[f32], _>(&setup.qpoints);

    let objects = Arc::new(setup.dataset.objects.clone());
    let qpoints = Arc::new(setup.qpoints.clone());
    let nq = qpoints.len();
    let mk_oracle = || -> Arc<dyn QueryDistance> {
        let objects = Arc::clone(&objects);
        let qpoints = Arc::clone(&qpoints);
        Arc::new(move |qid: QueryId, obj: ObjectId| {
            L2::new().distance(
                qpoints[qid as usize % nq].as_slice(),
                objects[obj.0 as usize].as_slice(),
            )
        })
    };

    let queries: Vec<QuerySpec> = qmapped
        .iter()
        .zip(&setup.truth)
        .map(|(qm, t)| QuerySpec {
            index: 0,
            point: qm.clone(),
            radius: 0.05 * setup.dataset.max_distance(),
            truth: t.clone(),
        })
        .collect();

    println!(
        "\n{:>14} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "placement", "migration", "max-load", "hops", "resp-ms", "recall"
    );
    let mut out = Vec::new();
    for (pname, load_aware) in [("random", false), ("load-aware", true)] {
        for (mname, lb) in [("off", None), ("on", Some(LoadBalanceConfig::default()))] {
            let cfg = SystemConfig {
                n_nodes: scale.n_nodes,
                seed: scale.seed,
                load_aware_join: load_aware,
                lb,
                ..SystemConfig::default()
            };
            let mut system = SearchSystem::build(
                cfg,
                &[IndexSpec {
                    name: "join-ablation".into(),
                    boundary: boundary.dims.clone(),
                    points: points.clone(),
                    rotate: false,
                    rotation: None,
                }],
                mk_oracle(),
            );
            let max_load = system.load_distribution(0)[0];
            let outcomes = system.run_queries(&queries, 150.0);
            let n = outcomes.len() as f64;
            let hops = outcomes.iter().map(|o| o.hops as f64).sum::<f64>() / n;
            let resp = outcomes.iter().map(|o| o.response_ms).sum::<f64>() / n;
            let recall = outcomes.iter().map(|o| o.recall).sum::<f64>() / n;
            println!(
                "{pname:>14} {mname:>10} {max_load:>10} {hops:>8.2} {resp:>10.1} {recall:>8.3}"
            );
            out.push(serde_json::json!({
                "placement": pname, "migration": mname,
                "max_load": max_load, "hops": hops, "recall": recall,
            }));
        }
    }

    // Shape checks: load-aware joins alone must flatten the placement
    // far below random placement.
    let find = |p: &str, m: &str| {
        out.iter()
            .find(|v| v["placement"] == p && v["migration"] == m)
            .unwrap()
            .clone()
    };
    let rand_off = find("random", "off")["max_load"].as_u64().unwrap();
    let aware_off = find("load-aware", "off")["max_load"].as_u64().unwrap();
    assert!(
        aware_off * 4 <= rand_off,
        "load-aware joins should flatten: {aware_off} !<< {rand_off}"
    );
    println!("\nOK: load-aware joins cut the unbalanced maximum load {rand_off} -> {aware_off}.");
    save_json("ablation_join", &out);
}
