//! **Ablation: k-NN by iterative range expansion** (extension; the
//! paper's evaluation probes k=10 recall through fixed-radius queries —
//! this harness measures the adaptive strategy a client would actually
//! use, and the cost of guessing the initial radius wrong).
//!
//! Three strategies resolve the same exact 10-NN queries:
//! * `tiny`      — start at 0.1% of the max distance, double per round:
//!   many cheap rounds (lowest bandwidth, highest latency);
//! * `estimated` — start at the sampled median 10-NN radius and grow
//!   gently (×1.3): few rounds with little overshoot;
//! * `oversized` — start at 30% of the max distance: one round, lowest
//!   latency, the query floods a large part of the ring.

use bench::synth::{select_landmarks, synth_setup};
use bench::{save_json, Scale};
use landmark::{boundary_from_metric, Mapper, SelectionMethod};
use metric::{Metric, ObjectId, L2};
use simsearch::{IndexSpec, QueryDistance, QueryId, SearchSystem, SystemConfig};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: k-NN initial-radius strategies (exact 10-NN) ===");
    println!(
        "{} nodes, {} objects, KMean-10",
        scale.n_nodes, scale.n_objects
    );

    let setup = synth_setup(&scale);
    let landmarks = select_landmarks(&setup, SelectionMethod::KMeans, 10, &scale);
    let metric = L2::bounded(100, 0.0, 100.0);
    let mapper = Mapper::new(metric, landmarks);
    let boundary = boundary_from_metric(&metric, 10).unwrap();
    let points = mapper.map_all::<[f32], _>(&setup.dataset.objects);

    // Estimate the 10-NN radius from the ground truth of the setup
    // (in a deployment: from a published sample); median over queries.
    let mut radii: Vec<f64> = setup
        .qpoints
        .iter()
        .zip(&setup.truth)
        .map(|(q, t)| {
            let last = t.last().expect("10 truth ids");
            L2::new().distance(
                q.as_slice(),
                setup.dataset.objects[last.0 as usize].as_slice(),
            )
        })
        .collect();
    radii.sort_by(|a, b| a.total_cmp(b));
    let est_radius = radii[radii.len() / 2];
    let max_d = setup.dataset.max_distance();
    println!(
        "estimated 10-NN radius: {est_radius:.1} ({:.1}% of max)",
        est_radius / max_d * 100.0
    );

    let n_queries = scale.n_queries.min(60); // knn runs are sequential
    let objects = Arc::new(setup.dataset.objects.clone());
    let qpoints = Arc::new(setup.qpoints.clone());
    let mk_oracle = || -> Arc<dyn QueryDistance> {
        let objects = Arc::clone(&objects);
        let qpoints = Arc::clone(&qpoints);
        Arc::new(move |qid: QueryId, obj: ObjectId| {
            L2::new().distance(
                qpoints[qid as usize % qpoints.len()].as_slice(),
                objects[obj.0 as usize].as_slice(),
            )
        })
    };

    println!(
        "\n{:>10} {:>8} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "strategy", "rounds", "exact%", "query-bytes", "result-bytes", "total-ms", "r0/max%"
    );
    let mut out = Vec::new();
    for (name, r0, growth) in [
        ("tiny", 0.001 * max_d, 2.0),
        ("estimated", est_radius, 1.3),
        ("oversized", 0.30 * max_d, 2.0),
    ] {
        let cfg = SystemConfig {
            n_nodes: scale.n_nodes,
            seed: scale.seed,
            ..SystemConfig::default()
        };
        let mut system = SearchSystem::build(
            cfg,
            &[IndexSpec {
                name: "knn-ablation".into(),
                boundary: boundary.dims.clone(),
                points: points.clone(),
                rotate: false,
                rotation: None,
            }],
            mk_oracle(),
        );
        let mut rounds = 0.0;
        let mut exact = 0usize;
        let mut qb = 0u64;
        let mut rb = 0u64;
        let mut ms = 0.0;
        for qi in 0..n_queries {
            let qm = mapper.map(setup.qpoints[qi].as_slice());
            let o = system.run_knn(qi as QueryId, 0, &qm, 10, r0, growth, 24);
            rounds += o.rounds as f64;
            let got: Vec<ObjectId> = o.results.iter().map(|&(id, _)| id).collect();
            if o.certified && got == setup.truth[qi] {
                exact += 1;
            }
            qb += o.query_bytes;
            rb += o.result_bytes;
            ms += o.total_ms;
        }
        let n = n_queries as f64;
        println!(
            "{name:>10} {:>8.2} {:>8.0} {:>12.0} {:>12.0} {:>10.0} {:>8.2}",
            rounds / n,
            exact as f64 / n * 100.0,
            qb as f64 / n,
            rb as f64 / n,
            ms / n,
            r0 / max_d * 100.0
        );
        out.push(serde_json::json!({
            "strategy": name, "rounds": rounds / n, "exact": exact,
            "query_bytes": qb as f64 / n, "result_bytes": rb as f64 / n, "ms": ms / n,
        }));
    }

    // Shape checks: every strategy is exact; the estimated start needs
    // the fewest bytes.
    for v in &out {
        assert_eq!(
            v["exact"].as_u64().unwrap() as usize,
            n_queries,
            "{} strategy lost exactness",
            v["strategy"]
        );
    }
    let field = |s: &str, f: &str| {
        out.iter().find(|v| v["strategy"] == s).unwrap()[f]
            .as_f64()
            .unwrap()
    };
    // The latency/bandwidth trade-off must point the expected ways:
    // growing from tiny is the slowest but thriftiest; starting oversized
    // is the fastest; the informed start sits at one round-ish.
    assert!(field("tiny", "ms") > field("oversized", "ms"));
    assert!(field("tiny", "query_bytes") < field("oversized", "query_bytes"));
    assert!(field("estimated", "rounds") < field("tiny", "rounds"));
    println!(
        "\nOK: all strategies exact; tiny-start trades {:.1}x latency for {:.1}x less bandwidth vs oversized.",
        field("tiny", "ms") / field("oversized", "ms"),
        field("oversized", "query_bytes") / field("tiny", "query_bytes")
    );
    save_json("ablation_knn", &out);
}
