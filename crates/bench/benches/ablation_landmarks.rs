//! **Ablation: number of landmarks** (§3.1).
//!
//! "The number of landmarks affects the tradeoff between querying
//! quality and querying efficiency": too few landmarks filter poorly
//! (bigger candidate sets, more result bandwidth); too many blow up the
//! dimensionality of the index space (more subqueries, higher routing
//! cost). This harness sweeps k at fixed range factors.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: landmark count sweep (KMean-k) ===");
    println!("{} nodes, {} objects", scale.n_nodes, scale.n_objects);
    let setup = synth_setup(&scale);
    let factors = [0.02, 0.05];
    let ks = [2usize, 3, 5, 8, 10, 15, 20];

    let mut rows_all = Vec::new();
    println!(
        "\n{:>4} {:>8} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "k", "range%", "recall", "hops", "query-bytes", "result-bytes", "msgs"
    );
    for &k in &ks {
        let run = SynthRun::new(SelectionMethod::KMeans, k, None);
        let (rows, _) = run_synth(&scale, &setup, &run, &factors);
        for r in &rows {
            println!(
                "{:>4} {:>8.1} {:>8.3} {:>8.2} {:>12.0} {:>12.0} {:>10.1}",
                k,
                r.range_factor * 100.0,
                r.recall,
                r.hops,
                r.query_bytes,
                r.result_bytes,
                r.query_msgs
            );
        }
        rows_all.extend(rows);
    }

    // Shape checks — the §3.1 trade-off. Few landmarks filter poorly:
    // the candidate superset (and so the result bandwidth) balloons.
    // Many landmarks filter tightly: cheap delivery, slightly fewer
    // bonus near-misses in the merged top-10 at small radii. Both ends
    // must still answer the 5%-range queries with high recall.
    let at = |k: usize, f: f64| {
        rows_all
            .iter()
            .find(|r| r.label == format!("KMean-{k}") && r.range_factor == f)
            .unwrap()
    };
    let (loose, tight) = (at(2, 0.05), at(10, 0.05));
    assert!(
        loose.result_bytes > tight.result_bytes * 4.0,
        "2 landmarks should waste result bandwidth vs 10: {} vs {}",
        loose.result_bytes,
        tight.result_bytes
    );
    assert!(
        loose.query_msgs > tight.query_msgs,
        "2 landmarks should cost more query messages than 10"
    );
    for &k in &ks {
        let r = at(k, 0.05);
        assert!(r.recall > 0.85, "KMean-{k} recall at 5%: {}", r.recall);
    }
    println!(
        "\nOK: k=2 wastes {:.0}x the result bandwidth of k=10 at equal (high) recall.",
        loose.result_bytes / tight.result_bytes
    );
    save_json("ablation_landmarks", &rows_all);
}
