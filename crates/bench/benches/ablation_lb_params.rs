//! **Ablation: load-balancing parameters δ and P_l** (§3.4).
//!
//! "The average value of δ and P_l control the tradeoff between the
//! overhead and quality of the load balancing" and over-aggressive
//! balancing skews node ids, hurting query routing. This harness sweeps
//! both knobs and reports maximum load, migrations, and routing cost.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;
use simsearch::LoadBalanceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: load balancing delta / probe level sweep ===");
    println!(
        "{} nodes, {} objects, KMean-10, query range factor 5%",
        scale.n_nodes, scale.n_objects
    );
    let setup = synth_setup(&scale);
    let factors = [0.05];

    println!(
        "\n{:>8} {:>6} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "delta", "P_l", "max-load", "hops", "resp-ms", "max-lat", "recall"
    );
    let mut results = Vec::new();
    // Baseline: no balancing at all.
    {
        let run = SynthRun::new(SelectionMethod::KMeans, 10, None);
        let (rows, loads) = run_synth(&scale, &setup, &run, &factors);
        let r = &rows[0];
        println!(
            "{:>8} {:>6} {:>10} {:>8.2} {:>10.1} {:>10.1} {:>8.3}",
            "off", "-", loads[0], r.hops, r.response_ms, r.max_latency_ms, r.recall
        );
        results.push(("off".to_string(), 0u32, loads[0], r.clone()));
    }
    for delta in [0.0, 0.25, 0.5, 1.0] {
        for probe_level in [1u32, 2, 4] {
            let lb = LoadBalanceConfig {
                delta,
                probe_level,
                max_rounds: 8,
            };
            let run = SynthRun::new(SelectionMethod::KMeans, 10, Some(lb));
            let (rows, loads) = run_synth(&scale, &setup, &run, &factors);
            let r = &rows[0];
            println!(
                "{:>8.2} {:>6} {:>10} {:>8.2} {:>10.1} {:>10.1} {:>8.3}",
                delta, probe_level, loads[0], r.hops, r.response_ms, r.max_latency_ms, r.recall
            );
            results.push((format!("{delta}"), probe_level, loads[0], r.clone()));
        }
    }

    // Shape checks: balancing with delta=0, P_l=4 must reduce max load
    // versus no balancing.
    let baseline = results[0].2;
    let aggressive = results
        .iter()
        .find(|(d, p, _, _)| d == "0" && *p == 4)
        .expect("delta=0 P_l=4 present")
        .2;
    assert!(
        aggressive < baseline,
        "aggressive balancing must cut max load: {aggressive} !< {baseline}"
    );
    println!(
        "\nOK: delta=0/P_l=4 cuts the maximum load vs unbalanced ({baseline} -> {aggressive})."
    );
    save_json(
        "ablation_lb_params",
        &results
            .iter()
            .map(
                |(d, p, l, r)| serde_json::json!({"delta": d, "probe": p, "max_load": l, "row": r}),
            )
            .collect::<Vec<_>>(),
    );
}
