//! **Ablation: Chord vs Pastry substrate** — the paper's claim that its
//! techniques "are also applicable to other DHTs such as Pastry and
//! Tapestry", measured: the same index, workload and seed on both
//! overlays must give byte-identical answers, with Pastry's base-16
//! digit routing cutting hop counts.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;
use simsearch::OverlayKind;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: Chord vs Pastry overlay under the same index ===");
    println!(
        "{} nodes, {} objects, KMean-10",
        scale.n_nodes, scale.n_objects
    );
    let setup = synth_setup(&scale);
    let factors = [0.02, 0.05, 0.10];

    let mut table = Vec::new();
    for (name, overlay) in [
        ("chord", OverlayKind::Chord),
        ("pastry", OverlayKind::Pastry),
    ] {
        eprintln!("running {name} ...");
        let run = SynthRun {
            overlay,
            ..SynthRun::new(SelectionMethod::KMeans, 10, None)
        };
        let (rows, _) = run_synth(&scale, &setup, &run, &factors);
        table.push((name, rows));
    }

    println!(
        "\n{:>8} {:>8} {:>8} {:>10} {:>10} {:>8} {:>10}",
        "range%", "overlay", "hops", "resp-ms", "max-lat", "recall", "msgs"
    );
    for fi in 0..factors.len() {
        for (name, rows) in &table {
            let r = &rows[fi];
            println!(
                "{:>8.1} {:>8} {:>8.2} {:>10.1} {:>10.1} {:>8.3} {:>10.1}",
                r.range_factor * 100.0,
                name,
                r.hops,
                r.response_ms,
                r.max_latency_ms,
                r.recall,
                r.query_msgs
            );
        }
    }

    // Shape checks: identical answers; Pastry's digit routing shortens
    // paths on average.
    let mean_hops =
        |rows: &[bench::Row]| rows.iter().map(|r| r.hops).sum::<f64>() / rows.len() as f64;
    for fi in 0..factors.len() {
        assert!(
            (table[0].1[fi].recall - table[1].1[fi].recall).abs() < 1e-9,
            "substrate must not change answers"
        );
    }
    let (chord_h, pastry_h) = (mean_hops(&table[0].1), mean_hops(&table[1].1));
    assert!(
        pastry_h < chord_h,
        "digit routing should cut hops: pastry {pastry_h:.2} !< chord {chord_h:.2}"
    );
    println!(
        "\nOK: identical answers on both substrates; Pastry cuts mean hops {chord_h:.2} -> {pastry_h:.2}."
    );
    save_json(
        "ablation_overlay",
        &serde_json::json!({"chord_hops": chord_h, "pastry_hops": pastry_h}),
    );
}
