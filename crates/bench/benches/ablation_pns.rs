//! **Ablation: proximity neighbor selection** (§4.1's Chord-PNS).
//!
//! The paper runs on Chord-PNS, where finger entries are chosen by
//! latency among the valid candidates of each finger interval. This
//! harness compares query response time and maximum latency with PNS on
//! (16 candidates, the p2psim default) vs plain Chord fingers.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: PNS(16) vs plain Chord fingers ===");
    println!(
        "{} nodes, {} objects, KMean-10, mean RTT 180 ms",
        scale.n_nodes, scale.n_objects
    );
    let setup = synth_setup(&scale);
    let factors = [0.02, 0.05, 0.10];

    let mut table = Vec::new();
    for (name, pns) in [("plain", 0usize), ("pns-16", 16)] {
        eprintln!("running {name} ...");
        let run = SynthRun {
            pns,
            ..SynthRun::new(SelectionMethod::KMeans, 10, None)
        };
        let (rows, _) = run_synth(&scale, &setup, &run, &factors);
        table.push((name, rows));
    }

    println!(
        "\n{:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "range%", "fingers", "resp-ms", "max-lat", "hops", "recall"
    );
    for fi in 0..factors.len() {
        for (name, rows) in &table {
            let r = &rows[fi];
            println!(
                "{:>8.1} {:>8} {:>10.1} {:>10.1} {:>8.2} {:>8.3}",
                r.range_factor * 100.0,
                name,
                r.response_ms,
                r.max_latency_ms,
                r.hops,
                r.recall
            );
        }
    }

    // Shape checks: same answers; PNS should cut latency on average.
    let mean = |rows: &[bench::Row], f: fn(&bench::Row) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let plain_lat = mean(&table[0].1, |r| r.max_latency_ms);
    let pns_lat = mean(&table[1].1, |r| r.max_latency_ms);
    for fi in 0..factors.len() {
        assert!(
            (table[0].1[fi].recall - table[1].1[fi].recall).abs() < 1e-9,
            "PNS must not change answers"
        );
    }
    assert!(
        pns_lat < plain_lat,
        "PNS should reduce mean max-latency: {pns_lat:.1} !< {plain_lat:.1}"
    );
    println!("\nOK: PNS cuts mean max-latency {plain_lat:.1} ms -> {pns_lat:.1} ms with identical answers.");
    save_json(
        "ablation_pns",
        &serde_json::json!({"plain_ms": plain_lat, "pns_ms": pns_lat}),
    );
}
