//! **Ablation: space-mapping rotation** (§3.4, static load balancing).
//!
//! The paper's platform hosts many indexes at once; if their hot regions
//! fall in similar parts of their index spaces, the same ring arc
//! absorbs every index's hotspot. A per-index random rotation offset
//! φ = hash(index name) de-correlates the arcs. This harness co-hosts
//! several indexes with *identical* hotspot structure and compares the
//! busiest node's combined load with rotation off vs on.

use std::sync::Arc;

use bench::synth::{select_landmarks, synth_setup};
use bench::{save_json, Scale};
use landmark::{boundary_from_metric, Mapper, SelectionMethod};
use metric::{Metric, ObjectId, L2};
use simsearch::{IndexSpec, QueryDistance, QueryId, SearchSystem, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    const N_INDEXES: usize = 4;
    println!("=== Ablation: space-mapping rotation with {N_INDEXES} co-hosted indexes ===");
    println!(
        "{} nodes, {} objects per index",
        scale.n_nodes, scale.n_objects
    );

    let setup = synth_setup(&scale);
    let landmarks = select_landmarks(&setup, SelectionMethod::KMeans, 10, &scale);
    let metric = L2::bounded(100, 0.0, 100.0);
    let mapper = Mapper::new(metric, landmarks);
    let boundary = boundary_from_metric(&metric, 10).expect("bounded");
    let points = mapper.map_all::<[f32], _>(&setup.dataset.objects);

    let l2 = L2::new();
    let objects = Arc::new(setup.dataset.objects.clone());
    let queries = Arc::new(setup.qpoints.clone());
    let mk_oracle = || -> Arc<dyn QueryDistance> {
        let objects = Arc::clone(&objects);
        let queries = Arc::clone(&queries);
        Arc::new(move |qid: QueryId, obj: ObjectId| {
            l2.distance(
                queries[qid as usize % queries.len()].as_slice(),
                objects[obj.0 as usize].as_slice(),
            )
        })
    };

    let run = |rotate: bool| -> (usize, Vec<usize>) {
        let specs: Vec<IndexSpec> = (0..N_INDEXES)
            .map(|i| IndexSpec {
                name: format!("index-{i}"),
                boundary: boundary.dims.clone(),
                points: points.clone(),
                rotate,
                rotation: None,
            })
            .collect();
        let cfg = SystemConfig {
            n_nodes: scale.n_nodes,
            seed: scale.seed,
            ..SystemConfig::default()
        };
        let system = SearchSystem::build(cfg, &specs, mk_oracle());
        // Combined load per node across all indexes.
        let mut combined = vec![0usize; scale.n_nodes];
        for ix in 0..N_INDEXES {
            for (node, load) in system.load_per_node(ix).into_iter().enumerate() {
                combined[node] += load;
            }
        }
        combined.sort_unstable_by(|a, b| b.cmp(a));
        (combined[0], combined)
    };

    let (max_plain, dist_plain) = run(false);
    let (max_rot, dist_rot) = run(true);

    println!("\nbusiest node, combined over {N_INDEXES} indexes:");
    println!("  rotation OFF: {max_plain}");
    println!("  rotation ON : {max_rot}");
    println!(
        "\nhead of combined distribution (sorted desc):\n  off: {:?}\n  on : {:?}",
        &dist_plain[..12.min(dist_plain.len())],
        &dist_rot[..12.min(dist_rot.len())]
    );
    assert!(
        max_rot < max_plain,
        "rotation must spread correlated hotspots: {max_rot} !< {max_plain}"
    );
    println!("\nOK: rotation reduces the correlated-hotspot maximum load.");
    save_json(
        "ablation_rotation",
        &serde_json::json!({"max_plain": max_plain, "max_rotated": max_rot}),
    );
}
