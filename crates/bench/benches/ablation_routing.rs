//! **Ablation: embedded-tree routing vs the naive approach** (§3.3).
//!
//! The paper motivates Algorithms 3–5 by contrast with the naive scheme
//! — subdivide the range query into per-cuboid subqueries and route each
//! independently — which "is obviously inefficient ... especially when
//! the query selectivity is large". This harness measures that claim:
//! same workload, same answers, message/bandwidth cost of the embedded
//! tree vs naive decomposition at several levels.

use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;

fn main() {
    let scale = Scale::from_env();
    println!("=== Ablation: embedded-tree routing vs naive per-cuboid routing ===");
    println!(
        "{} nodes, {} objects, {} queries, KMean-10 landmarks",
        scale.n_nodes, scale.n_objects, scale.n_queries
    );
    let setup = synth_setup(&scale);
    let factors = [0.02, 0.05, 0.10, 0.20];
    let level = (scale.n_nodes as f64).log2().ceil() as u32 + 2;

    let mut table: Vec<(String, Vec<bench::Row>)> = Vec::new();
    for (name, naive) in [
        ("embedded-tree".to_string(), None),
        (format!("naive-L{}", level - 2), Some(level - 2)),
        (format!("naive-L{level}"), Some(level)),
    ] {
        eprintln!("running {name} ...");
        let run = SynthRun {
            naive,
            ..SynthRun::new(SelectionMethod::KMeans, 10, None)
        };
        let (rows, _) = run_synth(&scale, &setup, &run, &factors);
        table.push((name, rows));
    }

    println!(
        "\n{:>8} {:>16} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "range%", "router", "msgs", "hops", "query-bytes", "recall", "resp-ms"
    );
    for fi in 0..factors.len() {
        for (name, rows) in &table {
            let r = &rows[fi];
            println!(
                "{:>8.1} {:>16} {:>10.1} {:>10.2} {:>12.0} {:>8.3} {:>8.1}",
                r.range_factor * 100.0,
                name,
                r.query_msgs,
                r.hops,
                r.query_bytes,
                r.recall,
                r.response_ms
            );
        }
    }

    // Sanity: identical recall (same answers), fewer messages.
    for fi in 0..factors.len() {
        let tree = &table[0].1[fi];
        for (name, rows) in &table[1..] {
            let naive = &rows[fi];
            assert!(
                (tree.recall - naive.recall).abs() < 1e-9,
                "answers must not depend on the router ({name})"
            );
            assert!(
                tree.query_msgs <= naive.query_msgs,
                "embedded tree must not send more messages than {name}"
            );
        }
    }
    println!("\nOK: identical recall, embedded tree never costs more messages.");
    save_json(
        "ablation_routing",
        &table
            .iter()
            .map(|(n, r)| (n.clone(), r.clone()))
            .collect::<Vec<_>>(),
    );
}
