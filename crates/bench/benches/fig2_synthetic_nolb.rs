//! **Figure 2** — synthetic dataset, *without* load balancing.
//!
//! Reproduces: recall / hops / response time / maximum latency /
//! bandwidth versus the query range factor (0.1%–20%) for the four
//! landmark configurations {Greedy-5, Greedy-10, KMean-5, KMean-10}.
//!
//! Paper shape to check: all schemes reach high recall cheaply;
//! KMean-10 and Greedy-10 hit 100% recall by ≈5% range factor; the
//! 10-landmark schemes beat the 5-landmark ones (the data has 10
//! clusters); k-means beats greedy.

use bench::scale::RANGE_FACTORS;
use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{print_series, save_json, Row, Scale};
use landmark::SelectionMethod;

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 2: synthetic dataset, no load balancing ===");
    println!(
        "Table 1 params: 100 dims, range [0,100], 10 clusters, deviation 20, {} objects",
        scale.n_objects
    );
    println!(
        "{} nodes, {} queries per range factor, seed {}{}",
        scale.n_nodes,
        scale.n_queries,
        scale.seed,
        if scale.full {
            " (paper scale)"
        } else {
            " (quick scale; SIMSEARCH_FULL=1 for paper scale)"
        }
    );

    let setup = synth_setup(&scale);
    let configs = [
        (SelectionMethod::Greedy, 5),
        (SelectionMethod::Greedy, 10),
        (SelectionMethod::KMeans, 5),
        (SelectionMethod::KMeans, 10),
    ];
    let mut all: Vec<Row> = Vec::new();
    for (method, k) in configs {
        let run = SynthRun::new(method, k, None);
        eprintln!("running {} ...", run.label());
        let (rows, _loads) = run_synth(&scale, &setup, &run, RANGE_FACTORS);
        all.extend(rows);
    }

    print_series("Fig 2a: recall", &all, |r| r.recall);
    print_series("Fig 2b: hops (max path length)", &all, |r| r.hops);
    print_series("Fig 2c: response time [ms]", &all, |r| r.response_ms);
    print_series("Fig 2d: maximum latency [ms]", &all, |r| r.max_latency_ms);
    print_series("Fig 2e: query delivery bandwidth [bytes]", &all, |r| {
        r.query_bytes
    });
    print_series("Fig 2f: result delivery bandwidth [bytes]", &all, |r| {
        r.result_bytes
    });
    print_series("Fig 2g: query messages", &all, |r| r.query_msgs);
    save_json("fig2_synthetic_nolb", &all);
}
