//! **Figure 3** — synthetic dataset, *with* dynamic load migration
//! (δ = 0, probe level P_l = 4, the paper's maximum-effect setting).
//!
//! Paper shape to check: versus figure 2, recall can dip slightly and
//! routing cost rises (migration skews the node-id distribution, which
//! deepens the embedded search tree), but recall stays high; the
//! 5-landmark schemes are hurt less than the 10-landmark ones because
//! their entries were already spread more evenly.

use bench::scale::RANGE_FACTORS;
use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{print_series, save_json, Row, Scale};
use landmark::SelectionMethod;
use simsearch::LoadBalanceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 3: synthetic dataset, with load balancing (delta=0, P_l=4) ===");
    println!(
        "{} nodes, {} objects, {} queries per range factor, seed {}",
        scale.n_nodes, scale.n_objects, scale.n_queries, scale.seed
    );

    let setup = synth_setup(&scale);
    let lb = LoadBalanceConfig {
        delta: 0.0,
        probe_level: 4,
        max_rounds: 8,
    };
    let configs = [
        (SelectionMethod::Greedy, 5),
        (SelectionMethod::Greedy, 10),
        (SelectionMethod::KMeans, 5),
        (SelectionMethod::KMeans, 10),
    ];
    let mut all: Vec<Row> = Vec::new();
    for (method, k) in configs {
        let run = SynthRun::new(method, k, Some(lb));
        eprintln!("running {} ...", run.label());
        let (rows, loads) = run_synth(&scale, &setup, &run, RANGE_FACTORS);
        eprintln!(
            "  {}: max load after LB = {}",
            run.label(),
            loads.first().copied().unwrap_or(0)
        );
        all.extend(rows);
    }

    print_series("Fig 3a: recall", &all, |r| r.recall);
    print_series("Fig 3b: hops (max path length)", &all, |r| r.hops);
    print_series("Fig 3c: response time [ms]", &all, |r| r.response_ms);
    print_series("Fig 3d: maximum latency [ms]", &all, |r| r.max_latency_ms);
    print_series("Fig 3e: query delivery bandwidth [bytes]", &all, |r| {
        r.query_bytes
    });
    print_series("Fig 3f: result delivery bandwidth [bytes]", &all, |r| {
        r.result_bytes
    });
    print_series("Fig 3g: query messages", &all, |r| r.query_msgs);
    save_json("fig3_synthetic_lb", &all);
}
