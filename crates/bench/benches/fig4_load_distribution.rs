//! **Figure 4** — load distribution on nodes (synthetic dataset),
//! sorted in decreasing order of load, for every landmark configuration.
//!
//! Paper shape to check: without balancing the clustered data piles
//! index entries onto a few nodes; dynamic load migration flattens the
//! distribution (the paper's maximally loaded node holds only 97 entries
//! at 10^5 objects — ≈0.1% of the dataset — for all schemes).

use bench::report::print_load_distribution;
use bench::synth::{run_synth, synth_setup, SynthRun};
use bench::{save_json, Scale};
use landmark::SelectionMethod;
use simsearch::LoadBalanceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 4: load distribution on nodes (synthetic) ===");
    println!(
        "{} nodes, {} objects, seed {}",
        scale.n_nodes, scale.n_objects, scale.seed
    );

    let setup = synth_setup(&scale);
    let lb = LoadBalanceConfig {
        delta: 0.0,
        probe_level: 4,
        max_rounds: 8,
    };
    let configs = [
        (SelectionMethod::Greedy, 5),
        (SelectionMethod::Greedy, 10),
        (SelectionMethod::KMeans, 5),
        (SelectionMethod::KMeans, 10),
    ];
    // A single cheap sweep point: figure 4 is about placement, which
    // queries do not change.
    let factors = [0.01];
    let mut without: Vec<(String, Vec<usize>)> = Vec::new();
    let mut with_lb: Vec<(String, Vec<usize>)> = Vec::new();
    for (method, k) in configs {
        let plain = SynthRun::new(method, k, None);
        eprintln!("running {} (no LB) ...", plain.label());
        let (_, loads0) = run_synth(&scale, &setup, &plain, &factors);
        without.push((plain.label(), loads0));
        let balanced = SynthRun::new(method, k, Some(lb));
        eprintln!("running {} (LB) ...", balanced.label());
        let (_, loads1) = run_synth(&scale, &setup, &balanced, &factors);
        with_lb.push((balanced.label(), loads1));
    }

    print_load_distribution("Fig 4 (reference): WITHOUT load balancing", &without);
    print_load_distribution("Fig 4: WITH load balancing (delta=0, P_l=4)", &with_lb);

    // The paper's headline: the maximum load after balancing is small
    // for every scheme.
    println!("\nmax-load summary (entries on the busiest node):");
    for ((label, w), (_, b)) in without.iter().zip(&with_lb) {
        println!(
            "  {label:>10}: {:>7} -> {:>6} ({} entries total)",
            w.first().unwrap(),
            b.first().unwrap(),
            scale.n_objects
        );
    }
    save_json(
        "fig4_load_distribution",
        &serde_json::json!({ "without": without, "with_lb": with_lb }),
    );
}
