//! **Figure 5** — TREC-like corpus: recall and routing cost versus the
//! query range factor for Greedy-10 and KMean-10, with load balancing.
//!
//! Paper shape to check: below ≈1% range factor the greedy method gets
//! higher recall at lower routing cost (its sparse landmarks map queries
//! — and most documents — into a thin shell at the upper boundary, so
//! the *effective* search region is truncated and the entries sit on few
//! nodes); from 1% to 20% k-means wins on both recall and cost, because
//! its dense centroid landmarks actually discriminate documents while
//! greedy cannot retrieve the related documents it filtered badly.

use bench::scale::RANGE_FACTORS;
use bench::trec::{run_trec, trec_setup};
use bench::{print_series, save_json, Row, Scale};
use landmark::SelectionMethod;
use simsearch::LoadBalanceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 5: TREC-like corpus, Greedy-10 vs KMean-10, with LB ===");
    println!(
        "{} docs, vocab {}, {} nodes, {} queries per range factor, seed {}",
        scale.corpus_docs, scale.corpus_vocab, scale.n_nodes, scale.n_queries, scale.seed
    );

    let setup = trec_setup(&scale);
    let lb = LoadBalanceConfig {
        delta: 0.0,
        probe_level: 4,
        max_rounds: 8,
    };
    let mut all: Vec<Row> = Vec::new();
    for method in [SelectionMethod::Greedy, SelectionMethod::KMeans] {
        eprintln!("running {method}-10 ...");
        let (rows, _) = run_trec(&scale, &setup, method, 10, Some(lb), RANGE_FACTORS);
        all.extend(rows);
    }

    print_series("Fig 5a: recall", &all, |r| r.recall);
    print_series("Fig 5b: hops (max path length)", &all, |r| r.hops);
    print_series("Fig 5c: response time [ms]", &all, |r| r.response_ms);
    print_series("Fig 5d: maximum latency [ms]", &all, |r| r.max_latency_ms);
    print_series("Fig 5e: query delivery bandwidth [bytes]", &all, |r| {
        r.query_bytes
    });
    print_series("Fig 5f: query messages", &all, |r| r.query_msgs);
    save_json("fig5_trec", &all);
}
