//! **Figure 6** — TREC-like corpus: load distribution on nodes for
//! Greedy-10 and KMean-10, with load balancing.
//!
//! Paper shape to check: greedy's sparse landmarks map a large mass of
//! unrelated documents to the *same* point near the upper boundary of
//! the index space, hashing them to a single key — which load migration
//! cannot divide — so the greedy distribution stays badly skewed even
//! with balancing, while k-means spreads out.

use bench::report::print_load_distribution;
use bench::trec::{run_trec, trec_setup};
use bench::{save_json, Scale};
use landmark::SelectionMethod;
use simsearch::LoadBalanceConfig;

fn main() {
    let scale = Scale::from_env();
    println!("=== Figure 6: TREC-like corpus load distribution, with LB ===");
    println!(
        "{} docs, {} nodes, seed {}",
        scale.corpus_docs, scale.n_nodes, scale.seed
    );

    let setup = trec_setup(&scale);
    let lb = LoadBalanceConfig {
        delta: 0.0,
        probe_level: 4,
        max_rounds: 8,
    };
    let factors = [0.01];
    let mut series: Vec<(String, Vec<usize>)> = Vec::new();
    for method in [SelectionMethod::Greedy, SelectionMethod::KMeans] {
        eprintln!("running {method}-10 ...");
        let (_, loads) = run_trec(&scale, &setup, method, 10, Some(lb), &factors);
        series.push((format!("{method}-10"), loads));
    }
    print_load_distribution("Fig 6: WITH load balancing", &series);

    let g_max = series[0].1.first().copied().unwrap_or(0);
    let k_max = series[1].1.first().copied().unwrap_or(0);
    println!(
        "\nbusiest node holds {:.1}% of all entries under Greedy-10 vs {:.1}% under KMean-10",
        100.0 * g_max as f64 / scale.corpus_docs as f64,
        100.0 * k_max as f64 / scale.corpus_docs as f64,
    );
    save_json("fig6_trec_load", &series);
}
