//! The sustained-load capacity search behind `BENCH_load.json` and the
//! CI `load-smoke` gate.
//!
//! Default run: the full fixture's three scenarios (plain, loss_churn,
//! routing_opt) each get a doubling-then-bisection capacity search and
//! the artifact lands in `target/experiments/BENCH_load.json` (the
//! checked-in copy lives at the repo root). `SIMSEARCH_FULL=1` doubles
//! the per-probe admission window and adds refinement steps.
//! `LOAD_SMOKE=1` runs the quick fixture and fails the process when any
//! capacity threshold checked in below regresses:
//!
//! * every scenario finds a knee (`knee_qps > 0`) — the SLO must pass
//!   at the base rate;
//! * `plain.knee_qps >= MIN_PLAIN_KNEE_QPS` — the baseline capacity
//!   floor;
//! * `routing_opt.knee_qps > plain.knee_qps` and
//!   `>= MIN_ROUTING_OPT_KNEE_QPS` — the routing-plane cache must
//!   *raise* capacity, not just keep latency flat;
//! * at every knee: recall 1.0, and zero errors for the healthy
//!   scenarios — sustained rate means correct answers, not partial
//!   ones;
//! * the whole smoke sweep fits `MAX_SMOKE_WALL_MS` — the serve-slot
//!   reservation keeps saturated probes cheap.

use bench::load_report::{run_load_report, LoadFixture, LoadReport, Scenario};

const SEED: u64 = 0x10AD5EED;
const N_NODES: usize = 64;
const BASE_QPS: f64 = 5.0;
const MAX_DOUBLINGS: usize = 9;
/// Simulated admission window of every probe. Fixed duration — not a
/// fixed op count — so higher offered rates admit proportionally more
/// operations and sustained queueing can actually accumulate.
const DURATION_S: f64 = 12.0;

/// Checked-in smoke thresholds (quick fixture, 64 nodes, 12 s probe
/// windows). The sweep is fully deterministic — current knees are
/// plain 23.8 QPS, loss_churn 7.1 QPS, routing_opt 190.3 QPS — so the
/// margins only have to absorb intentional retuning, not noise.
const MIN_PLAIN_KNEE_QPS: f64 = 10.0;
const MIN_ROUTING_OPT_KNEE_QPS: f64 = 50.0;
/// Wall budget for the whole smoke sweep; measured ~26 s on one core
/// (the routing_opt ladder's saturated probes dominate).
const MAX_SMOKE_WALL_MS: f64 = 120_000.0;

fn check_report(report: &LoadReport) -> bool {
    let mut failed = false;
    let knee_of = |s: Scenario| {
        report
            .scenarios
            .iter()
            .find(|r| r.scenario == s)
            .expect("all scenarios present")
    };
    for sr in &report.scenarios {
        let name = sr.scenario.name();
        let Some(knee) = &sr.result.knee else {
            eprintln!(
                "load-smoke FAIL: {name} found no knee — the SLO fails even at {BASE_QPS} QPS"
            );
            failed = true;
            continue;
        };
        if knee.mean_recall < 1.0 {
            eprintln!(
                "load-smoke FAIL: {name} knee recall {} below 1.0 — \
                 the sustained rate returns partial answers",
                knee.mean_recall
            );
            failed = true;
        }
        if sr.scenario != Scenario::LossChurn && knee.error_rate > 0.0 {
            eprintln!(
                "load-smoke FAIL: {name} knee error rate {} nonzero on a healthy network",
                knee.error_rate
            );
            failed = true;
        }
        if knee.duplicate_completions > 0 {
            eprintln!(
                "load-smoke FAIL: {name} recorded {} duplicate completions — \
                 the exactly-once ledger leaked",
                knee.duplicate_completions
            );
            failed = true;
        }
    }
    let plain = knee_of(Scenario::Plain).result.knee_qps;
    let routing = knee_of(Scenario::RoutingOpt).result.knee_qps;
    if plain < MIN_PLAIN_KNEE_QPS {
        eprintln!(
            "load-smoke FAIL: plain knee {plain:.2} QPS below {MIN_PLAIN_KNEE_QPS} — \
             baseline capacity regressed"
        );
        failed = true;
    }
    if routing < MIN_ROUTING_OPT_KNEE_QPS || routing <= plain {
        eprintln!(
            "load-smoke FAIL: routing_opt knee {routing:.2} QPS (plain {plain:.2}, \
             floor {MIN_ROUTING_OPT_KNEE_QPS}) — the routing-plane cache stopped raising capacity"
        );
        failed = true;
    }
    failed
}

fn main() {
    let smoke = std::env::var_os("LOAD_SMOKE").is_some();
    let full = std::env::var("SIMSEARCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);

    // `--threads N` routes through the same `SIMSEARCH_THREADS` knob
    // every probe system reads via `SystemConfig::default()`; the knee
    // results are byte-identical at any setting, only wall clock moves.
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let v = match a.strip_prefix("--threads=") {
            Some(v) => Some(v.to_string()),
            None if a == "--threads" => args.get(i + 1).cloned(),
            None => None,
        };
        if let Some(v) = v {
            v.parse::<usize>()
                .unwrap_or_else(|e| panic!("bad --threads value {v:?}: {e}"));
            // Single-threaded at this point: workers only exist inside
            // `Sim::run`, well after every config read below.
            std::env::set_var("SIMSEARCH_THREADS", &v);
        }
    }

    let (fixture, duration_s, refine) = if smoke {
        (LoadFixture::quick(SEED), DURATION_S, 2)
    } else if full {
        (LoadFixture::full(SEED), 2.0 * DURATION_S, 4)
    } else {
        (LoadFixture::full(SEED), DURATION_S, 2)
    };

    let report = run_load_report(
        &fixture,
        N_NODES,
        duration_s,
        BASE_QPS,
        MAX_DOUBLINGS,
        refine,
        SEED,
    );
    for sr in &report.scenarios {
        let (p50, p95, p99) = sr
            .result
            .knee
            .as_ref()
            .map_or((0.0, 0.0, 0.0), |k| (k.p50_ms, k.p95_ms, k.p99_ms));
        println!(
            "load {:<12} knee {:>7.2} QPS  p50/p95/p99 {:>6.0}/{:>6.0}/{:>6.0} ms  ({} trials)",
            sr.scenario.name(),
            sr.result.knee_qps,
            p50,
            p95,
            p99,
            sr.result.trials.len(),
        );
    }

    if smoke {
        // Persist the sweep before any threshold exit so CI can attach
        // it to a failed run.
        bench::report::save_json("BENCH_load_smoke", &report);
        let mut failed = check_report(&report);
        if report.wall_ms > MAX_SMOKE_WALL_MS {
            eprintln!(
                "load-smoke FAIL: sweep took {:.0} ms, budget {MAX_SMOKE_WALL_MS:.0} ms \
                 — saturated-probe simulation regressed",
                report.wall_ms
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "load-smoke OK: plain/loss_churn/routing_opt knees at recall 1.0, {:.0} ms \
             <= {MAX_SMOKE_WALL_MS:.0} ms",
            report.wall_ms
        );
        return;
    }

    let path = bench::report::save_json("BENCH_load", &report);
    println!("wrote {}", path.display());
}
