//! Criterion microbenchmarks of the hot kernels: locality-preserving
//! hashing, query splitting, metric evaluations, landmark selection, and
//! local routing decisions.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use landmark::greedy;
use lph::{Grid, Prefix, Rect, Rotation};
use metric::{Angular, EditDistance, Metric, SparseVector, L2};
use simnet::SimRng;
use simsearch::{route_subquery, SubQueryMsg};

fn bench_lph(c: &mut Criterion) {
    let grid = Grid::uniform(10, 0.0, 1000.0);
    let mut rng = SimRng::new(1);
    let point: Vec<f64> = (0..10).map(|_| rng.f64() * 1000.0).collect();
    c.bench_function("lph/hash_10d_64bit", |b| {
        b.iter(|| grid.hash(black_box(&point)))
    });

    let rect = Rect::ball(&point, 25.0, grid.bounds());
    c.bench_function("lph/enclosing_prefix_10d", |b| {
        b.iter(|| grid.enclosing_prefix(black_box(&rect)))
    });

    let sq = lph::SubQuery {
        rect: rect.clone(),
        prefix: grid.enclosing_prefix(&rect),
    };
    c.bench_function("lph/split_10d", |b| b.iter(|| grid.split(black_box(&sq))));

    c.bench_function("lph/cell_decode_depth64", |b| {
        let key = grid.hash(&point);
        b.iter(|| grid.cell(Prefix::of_key(black_box(key), 64)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = SimRng::new(2);
    let a: Vec<f32> = (0..100).map(|_| rng.f64() as f32 * 100.0).collect();
    let b: Vec<f32> = (0..100).map(|_| rng.f64() as f32 * 100.0).collect();
    let l2 = L2::new();
    c.bench_function("metric/l2_100d", |bch| {
        bch.iter(|| l2.distance(black_box(&a[..]), black_box(&b[..])))
    });

    let s1 = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT";
    let s2 = "ACGTACGAACGTACGTACCTACGTACGTACGAACGTACGTACGTTCGTACGTACGTACGTACG";
    c.bench_function("metric/edit_64ch", |bch| {
        bch.iter(|| EditDistance::levenshtein(black_box(s1.as_bytes()), black_box(s2.as_bytes())))
    });

    let mk_sparse = |n: usize, seed: u64| {
        let mut r = SimRng::new(seed);
        SparseVector::new(
            (0..n)
                .map(|_| (r.below(40_000) as u32, r.f64() as f32 + 0.1))
                .collect(),
        )
    };
    let d1 = mk_sparse(150, 3);
    let d2 = mk_sparse(150, 4);
    let ang = Angular::new();
    c.bench_function("metric/angular_150nnz", |bch| {
        bch.iter(|| ang.distance(black_box(&d1), black_box(&d2)))
    });
}

fn bench_selection(c: &mut Criterion) {
    let mut rng = SimRng::new(5);
    let sample: Vec<Vec<f32>> = (0..500)
        .map(|_| (0..10).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    c.bench_function("landmark/greedy_500x10d_k10", |b| {
        b.iter(|| {
            let mut r = SimRng::new(7);
            greedy::<_, [f32], _>(&L2::new(), black_box(&sample), 10, &mut r)
        })
    });
}

fn bench_hilbert(c: &mut Criterion) {
    let g = lph::HilbertGrid::new(Rect::cube(4, 0.0, 1.0), 8);
    let cell = [13u32, 200, 77, 4];
    c.bench_function("hilbert/rank_4d_8bit", |b| {
        b.iter(|| g.rank_of_cell(black_box(&cell)))
    });
    c.bench_function("hilbert/inverse_4d_8bit", |b| {
        let r = g.rank_of_cell(&cell);
        b.iter(|| g.cell_of_rank(black_box(r)))
    });
    c.bench_function("hilbert/morton_rank_4d_8bit", |b| {
        b.iter(|| g.morton_rank_of_cell(black_box(&cell)))
    });
}

fn bench_pastry(c: &mut Criterion) {
    let mut rng = SimRng::new(8);
    let ring = chord::OracleRing::with_random_ids(256, &mut rng);
    let tables = pastry::build_all_tables(&ring, pastry::LEAF_HALF, None, 16);
    use rand::RngCore;
    let key = chord::ChordId(rng.next_u64());
    c.bench_function("pastry/route_256nodes", |b| {
        b.iter(|| tables[10].route(black_box(key)))
    });
    let chord_tables = ring.build_all_tables(16, None, 16);
    c.bench_function("chord/route_256nodes", |b| {
        b.iter(|| chord_tables[10].route(black_box(key)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SimRng::new(6);
    let ring = chord::OracleRing::with_random_ids(256, &mut rng);
    let tables = ring.build_all_tables(16, None, 16);
    let grid = Grid::uniform(10, 0.0, 1000.0);
    let center: Vec<f64> = (0..10).map(|_| rng.f64() * 1000.0).collect();
    let rect = Rect::ball(&center, 50.0, grid.bounds());
    let sq = SubQueryMsg {
        qid: 0,
        index: 0,
        rect: rect.clone(),
        prefix: grid.enclosing_prefix(&rect),
        hops: 0,
        origin: simnet::AgentId(0),
    };
    c.bench_function("routing/route_subquery_256nodes", |b| {
        b.iter(|| {
            route_subquery(
                black_box(&tables[10]),
                &grid,
                Rotation::IDENTITY,
                black_box(sq.clone()),
                true,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    targets = bench_lph, bench_metrics, bench_selection, bench_hilbert, bench_pastry, bench_routing
}
criterion_main!(benches);
