//! Criterion microbenchmarks of the hot kernels: locality-preserving
//! hashing, query splitting, metric evaluations, landmark selection,
//! local routing decisions, and the query-path performance kernels
//! (span-narrowed store scans, lower-bound pruning, parallel mapping).
//!
//! Besides the timing suite, this target emits the canonical
//! `BENCH_micro.json` (work counters of the 64-node scenario plus kernel
//! timings) under `target/experiments/`, and doubles as the CI
//! `bench-smoke` gate: with `BENCH_SMOKE=1` it runs the quick scenario
//! only and fails the process when the scanned/pruned counters regress
//! past the thresholds checked in below (`MAX_SCANNED_QUICK` etc.).

use std::time::{Duration, Instant};

use bench::micro_report::{run_cache_scenario, run_micro_scenario};
use criterion::{black_box, criterion_group, Criterion};
use landmark::{greedy, Mapper};
use lph::{Grid, Prefix, Rect, Rotation};
use metric::{Angular, EditDistance, Metric, ObjectId, SparseVector, L2};
use simnet::SimRng;
use simsearch::{route_subquery, Entry, QueryBall, Store, SubQueryMsg};

fn bench_lph(c: &mut Criterion) {
    let grid = Grid::uniform(10, 0.0, 1000.0);
    let mut rng = SimRng::new(1);
    let point: Vec<f64> = (0..10).map(|_| rng.f64() * 1000.0).collect();
    c.bench_function("lph/hash_10d_64bit", |b| {
        b.iter(|| grid.hash(black_box(&point)))
    });

    let rect = Rect::ball(&point, 25.0, grid.bounds());
    c.bench_function("lph/enclosing_prefix_10d", |b| {
        b.iter(|| grid.enclosing_prefix(black_box(&rect)))
    });

    let sq = lph::SubQuery {
        rect: rect.clone(),
        prefix: grid.enclosing_prefix(&rect),
    };
    c.bench_function("lph/split_10d", |b| b.iter(|| grid.split(black_box(&sq))));

    c.bench_function("lph/cell_decode_depth64", |b| {
        let key = grid.hash(&point);
        b.iter(|| grid.cell(Prefix::of_key(black_box(key), 64)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = SimRng::new(2);
    let a: Vec<f32> = (0..100).map(|_| rng.f64() as f32 * 100.0).collect();
    let b: Vec<f32> = (0..100).map(|_| rng.f64() as f32 * 100.0).collect();
    let l2 = L2::new();
    c.bench_function("metric/l2_100d", |bch| {
        bch.iter(|| l2.distance(black_box(&a[..]), black_box(&b[..])))
    });

    let s1 = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT";
    let s2 = "ACGTACGAACGTACGTACCTACGTACGTACGAACGTACGTACGTTCGTACGTACGTACGTACG";
    c.bench_function("metric/edit_64ch", |bch| {
        bch.iter(|| EditDistance::levenshtein(black_box(s1.as_bytes()), black_box(s2.as_bytes())))
    });

    let mk_sparse = |n: usize, seed: u64| {
        let mut r = SimRng::new(seed);
        SparseVector::new(
            (0..n)
                .map(|_| (r.below(40_000) as u32, r.f64() as f32 + 0.1))
                .collect(),
        )
    };
    let d1 = mk_sparse(150, 3);
    let d2 = mk_sparse(150, 4);
    let ang = Angular::new();
    c.bench_function("metric/angular_150nnz", |bch| {
        bch.iter(|| ang.distance(black_box(&d1), black_box(&d2)))
    });
}

fn bench_selection(c: &mut Criterion) {
    let mut rng = SimRng::new(5);
    let sample: Vec<Vec<f32>> = (0..500)
        .map(|_| (0..10).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    c.bench_function("landmark/greedy_500x10d_k10", |b| {
        b.iter(|| {
            let mut r = SimRng::new(7);
            greedy::<_, [f32], _>(&L2::new(), black_box(&sample), 10, &mut r)
        })
    });
}

fn bench_hilbert(c: &mut Criterion) {
    let g = lph::HilbertGrid::new(Rect::cube(4, 0.0, 1.0), 8);
    let cell = [13u32, 200, 77, 4];
    c.bench_function("hilbert/rank_4d_8bit", |b| {
        b.iter(|| g.rank_of_cell(black_box(&cell)))
    });
    c.bench_function("hilbert/inverse_4d_8bit", |b| {
        let r = g.rank_of_cell(&cell);
        b.iter(|| g.cell_of_rank(black_box(r)))
    });
    c.bench_function("hilbert/morton_rank_4d_8bit", |b| {
        b.iter(|| g.morton_rank_of_cell(black_box(&cell)))
    });
}

fn bench_pastry(c: &mut Criterion) {
    let mut rng = SimRng::new(8);
    let ring = chord::OracleRing::with_random_ids(256, &mut rng);
    let tables = pastry::build_all_tables(&ring, pastry::LEAF_HALF, None, 16);
    use rand::RngCore;
    let key = chord::ChordId(rng.next_u64());
    c.bench_function("pastry/route_256nodes", |b| {
        b.iter(|| tables[10].route(black_box(key)))
    });
    let chord_tables = ring.build_all_tables(16, None, 16);
    c.bench_function("chord/route_256nodes", |b| {
        b.iter(|| chord_tables[10].route(black_box(key)))
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SimRng::new(6);
    let ring = chord::OracleRing::with_random_ids(256, &mut rng);
    let tables = ring.build_all_tables(16, None, 16);
    let grid = Grid::uniform(10, 0.0, 1000.0);
    let center: Vec<f64> = (0..10).map(|_| rng.f64() * 1000.0).collect();
    let rect = Rect::ball(&center, 50.0, grid.bounds());
    let sq = SubQueryMsg {
        qid: 0,
        index: 0,
        rect: rect.clone(),
        prefix: grid.enclosing_prefix(&rect),
        hops: 0,
        origin: simnet::AgentId(0),
        ball: None,
        shortcut: false,
    };
    c.bench_function("routing/route_subquery_256nodes", |b| {
        b.iter(|| {
            route_subquery(
                black_box(&tables[10]),
                &grid,
                Rotation::IDENTITY,
                black_box(sq.clone()),
                true,
            )
        })
    });
}

/// A populated store plus a query rect and its key span, shaped like the
/// 64-node scenario's per-node state (clustered 5-d index points).
fn scan_fixture() -> (Store, Rect, (u64, u64)) {
    let mut rng = SimRng::new(0xA5);
    let grid = Grid::uniform(5, 0.0, 100.0);
    let mut store = Store::new();
    let point = |r: &mut SimRng| -> Vec<f64> {
        let c = (r.below(4) * 25) as f64;
        (0..5)
            .map(|_| (c + r.f64() * 12.0).clamp(0.0, 100.0))
            .collect()
    };
    store.extend((0..4_000u32).map(|i| {
        let p = point(&mut rng);
        Entry {
            ring_key: grid.hash(&p),
            obj: ObjectId(i),
            point: p.into_boxed_slice(),
        }
    }));
    let center = point(&mut rng);
    let rect = Rect::ball(&center, 6.0, grid.bounds());
    let span = grid.key_span(&rect);
    (store, rect, span)
}

fn bench_store_scan(c: &mut Criterion) {
    let (store, rect, span) = scan_fixture();
    c.bench_function("store/scan_full_4000", |b| {
        b.iter(|| store.scan(black_box(&rect)))
    });
    c.bench_function("store/scan_range_4000", |b| {
        b.iter(|| store.scan_range(black_box(&rect), black_box(span)))
    });
}

fn bench_prune(c: &mut Criterion) {
    let mut rng = SimRng::new(0xB7);
    let bounds = Rect::cube(5, 0.0, 100.0);
    let center: Vec<f64> = (0..5).map(|_| rng.f64() * 110.0 - 5.0).collect();
    let ball = QueryBall {
        center: center.into(),
        radius: 10.0,
    };
    let point: Vec<f64> = (0..5).map(|_| rng.f64() * 100.0).collect();
    c.bench_function("prune/lower_bound_5d", |b| {
        b.iter(|| ball.lower_bound(black_box(&point), black_box(&bounds)))
    });
}

fn bench_map_all(c: &mut Criterion) {
    let mut rng = SimRng::new(0xC9);
    let objs: Vec<Vec<f32>> = (0..4_000)
        .map(|_| (0..100).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    let landmarks: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..100).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    let mapper = Mapper::new(L2::new(), landmarks);
    c.bench_function("landmark/map_seq_4000x100d_k10", |b| {
        b.iter(|| -> Vec<Vec<f64>> {
            objs.iter()
                .map(|o| mapper.map(o.as_slice()).into_vec())
                .collect()
        })
    });
    c.bench_function("landmark/map_all_par_4000x100d_k10", |b| {
        b.iter(|| mapper.map_all::<[f32], _>(black_box(&objs)))
    });
}

fn bench_e2e(c: &mut Criterion) {
    c.bench_function("e2e/64node_query_batch_quick", |b| {
        b.iter(|| run_micro_scenario(true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    targets = bench_lph, bench_metrics, bench_selection, bench_hilbert, bench_pastry,
        bench_routing, bench_store_scan, bench_prune, bench_map_all, bench_e2e
}

/// Median-free, budget-bound mean ns/iter — same loop the criterion shim
/// uses, but returning the number so it can land in `BENCH_micro.json`.
fn time_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm = Instant::now();
    while warm.elapsed() < budget / 4 {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Kernel timings for the JSON report (counters carry the guarantees;
/// these numbers are indicative, machine-dependent wall clock).
fn kernel_timings(budget: Duration) -> serde_json::Value {
    let (store, rect, span) = scan_fixture();
    let scan_full = time_ns(budget, || {
        black_box(store.scan(black_box(&rect)));
    });
    let scan_range = time_ns(budget, || {
        black_box(store.scan_range(black_box(&rect), black_box(span)));
    });

    let mut rng = SimRng::new(0xD1);
    let bounds = Rect::cube(5, 0.0, 100.0);
    let ball = QueryBall {
        center: (0..5)
            .map(|_| rng.f64() * 110.0 - 5.0)
            .collect::<Vec<f64>>()
            .into(),
        radius: 10.0,
    };
    let pt: Vec<f64> = (0..5).map(|_| rng.f64() * 100.0).collect();
    let lower_bound = time_ns(budget, || {
        black_box(ball.lower_bound(black_box(&pt), black_box(&bounds)));
    });

    let objs: Vec<Vec<f32>> = (0..4_000)
        .map(|_| (0..100).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    let landmarks: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..100).map(|_| rng.f64() as f32 * 100.0).collect())
        .collect();
    let mapper = Mapper::new(L2::new(), landmarks);
    let map_seq = time_ns(budget, || {
        let v: Vec<Vec<f64>> = objs
            .iter()
            .map(|o| mapper.map(o.as_slice()).into_vec())
            .collect();
        black_box(v);
    });
    let map_par = time_ns(budget, || {
        black_box(mapper.map_all::<[f32], _>(&objs));
    });

    serde_json::json!({
        "scan_full_4000_ns": scan_full,
        "scan_range_4000_ns": scan_range,
        "lower_bound_5d_ns": lower_bound,
        "map_seq_4000x100d_k10_ns": map_seq,
        "map_all_par_4000x100d_k10_ns": map_par,
    })
}

fn main() {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let quick = smoke || std::env::var_os("MICRO_QUICK").is_some();

    if !smoke {
        benches();
    }

    let counters = run_micro_scenario(quick);
    let mode = if quick { "quick" } else { "full" };
    println!(
        "\ne2e/64node[{mode}]: scanned {} -> {} ({:.2}x), dist_calls {} -> {} \
         (pruned {}), recall {:.3}",
        counters.scanned_before(),
        counters.scanned,
        counters.scan_reduction(),
        counters.dist_calls_before(),
        counters.dist_calls,
        counters.pruned,
        counters.mean_recall,
    );

    let cache = run_cache_scenario(quick);
    println!(
        "cache/64node[{mode}]: messages {} -> {} ({:.2}x), hops/query {:.2} -> {:.2}, \
         cache hits {}, coalesced {}, recall {:.3}/{:.3}",
        cache.base.messages,
        cache.opt.messages,
        cache.message_reduction(),
        cache.base.hops_per_query,
        cache.opt.hops_per_query,
        cache.opt.cache_hits,
        cache.opt.coalesced,
        cache.base.mean_recall,
        cache.opt.mean_recall,
    );

    if smoke {
        // Persist the measured counters before any threshold exit so CI
        // can attach them to a failed run.
        bench::report::save_json(
            "BENCH_micro_smoke",
            &serde_json::json!({
                "e2e_64node": counters,
                "cache_64node": cache,
            }),
        );
        check_thresholds(&counters);
        check_cache_thresholds(&cache);
        return;
    }

    let budget = if quick {
        Duration::from_millis(100)
    } else {
        Duration::from_millis(500)
    };
    let report = serde_json::json!({
        "scenario": format!("64-node clustered-vector query batch ({mode})"),
        "e2e_64node": counters,
        "cache_64node": cache,
        "kernels": kernel_timings(budget),
    });
    bench::report::save_json("BENCH_micro", &report);
}

/// Checked-in smoke thresholds for the quick (`BENCH_SMOKE=1`) scenario.
/// The counters are fully deterministic — current values are scanned
/// 9230, pruned 18, recall 1.0 — so the margins below only have to
/// absorb intentional scenario retuning, not noise. Tighten or loosen
/// them in the same commit as the behavior change they reflect.
const MAX_SCANNED_QUICK: u64 = 12_000;
const MIN_PRUNED_QUICK: u64 = 10;
const MIN_RECALL: f64 = 1.0;

/// The CI gate: deterministic counters of the quick scenario against the
/// checked-in thresholds. Exits non-zero on regression.
fn check_thresholds(counters: &bench::micro_report::MicroCounters) {
    let max_scanned = MAX_SCANNED_QUICK;
    let min_pruned = MIN_PRUNED_QUICK;
    let min_recall = MIN_RECALL;
    let mut failed = false;
    if counters.scanned > max_scanned {
        eprintln!(
            "bench-smoke FAIL: scanned {} exceeds threshold {max_scanned} — \
             the sorted-range scan narrowing regressed",
            counters.scanned
        );
        failed = true;
    }
    if counters.pruned < min_pruned {
        eprintln!(
            "bench-smoke FAIL: search.refine.pruned {} below threshold {min_pruned} — \
             the landmark lower-bound prune regressed",
            counters.pruned
        );
        failed = true;
    }
    if counters.mean_recall < min_recall {
        eprintln!(
            "bench-smoke FAIL: recall {} below {min_recall} — pruning dropped answers",
            counters.mean_recall
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench-smoke OK: scanned {} <= {max_scanned}, pruned {} >= {min_pruned}, recall {}",
        counters.scanned, counters.pruned, counters.mean_recall
    );
}

/// Checked-in smoke thresholds for the quick cache A/B scenario. The
/// counters are deterministic — current quick values are messages
/// 532 -> 200, hops/query 4.25 -> 3.88, cache hits 9, coalesced 160 —
/// so the margins only absorb intentional scenario retuning, not noise.
const MAX_HOPS_PER_QUERY_OPT_QUICK: f64 = 4.0;
const MIN_CACHE_HITS_QUICK: u64 = 4;
const MIN_COALESCED_QUICK: u64 = 20;

/// The cache gate: the routing-plane optimization layer must beat the
/// baseline on total messages and per-query hops, actually exercise the
/// result cache and batch coalescing, and hold 100% recall on both
/// sides. Exits non-zero on regression.
fn check_cache_thresholds(cache: &bench::micro_report::CacheCounters) {
    let mut failed = false;
    if cache.opt.messages >= cache.base.messages {
        eprintln!(
            "bench-smoke FAIL: routing_opt messages {} not below baseline {} — \
             the optimization layer stopped saving traffic",
            cache.opt.messages, cache.base.messages
        );
        failed = true;
    }
    if cache.opt.hops_per_query >= cache.base.hops_per_query
        || cache.opt.hops_per_query > MAX_HOPS_PER_QUERY_OPT_QUICK
    {
        eprintln!(
            "bench-smoke FAIL: routing_opt hops/query {:.3} (baseline {:.3}, \
             ceiling {MAX_HOPS_PER_QUERY_OPT_QUICK}) — shortcuts or the result \
             cache regressed",
            cache.opt.hops_per_query, cache.base.hops_per_query
        );
        failed = true;
    }
    if cache.opt.cache_hits < MIN_CACHE_HITS_QUICK {
        eprintln!(
            "bench-smoke FAIL: cache.hits {} below floor {MIN_CACHE_HITS_QUICK} — \
             the hot-range result cache stopped firing",
            cache.opt.cache_hits
        );
        failed = true;
    }
    if cache.opt.coalesced < MIN_COALESCED_QUICK {
        eprintln!(
            "bench-smoke FAIL: batch.coalesced {} below floor {MIN_COALESCED_QUICK} — \
             sub-query batching stopped firing",
            cache.opt.coalesced
        );
        failed = true;
    }
    if cache.base.mean_recall < MIN_RECALL || cache.opt.mean_recall < MIN_RECALL {
        eprintln!(
            "bench-smoke FAIL: cache scenario recall {}/{} below {MIN_RECALL} — \
             the caches served wrong answers",
            cache.base.mean_recall, cache.opt.mean_recall
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench-smoke OK: cache messages {} < {}, hops/query {:.2} <= \
         {MAX_HOPS_PER_QUERY_OPT_QUICK}, hits {} >= {MIN_CACHE_HITS_QUICK}, \
         coalesced {} >= {MIN_COALESCED_QUICK}, recall {}/{}",
        cache.opt.messages,
        cache.base.messages,
        cache.opt.hops_per_query,
        cache.opt.cache_hits,
        cache.opt.coalesced,
        cache.base.mean_recall,
        cache.opt.mean_recall
    );
}
