//! The scaling-law sweep behind `BENCH_scale.json` and the CI
//! `scale-smoke` gate.
//!
//! Default run: overlays of 1k, 4k, and 16k nodes answer the
//! `scale_report` workloads and the sweep lands in
//! `target/experiments/BENCH_scale.json` (the checked-in copy lives at
//! the repo root). `SIMSEARCH_FULL=1` extends the sweep to 64k and
//! 100k nodes. `SCALE_SMOKE=1` runs the 1k and 4k points on the quick
//! fixture only and fails the process when any scaling-law threshold
//! checked in below regresses:
//!
//! * `hops_per_query <= MAX_HOPS_PER_LOG2N * log2(N)` — routing must
//!   stay logarithmic in the overlay size;
//! * plain recall = 1.0 and churn recall >= `MIN_RECALL_CHURN` — the
//!   prunes are exact and the resilience layer holds under faults;
//! * `cache.hits >= MIN_CACHE_HITS` — the hot-workload caches keep
//!   firing as N grows;
//! * the whole smoke sweep fits the `MAX_SMOKE_WALL_MS` budget — the
//!   calendar queue, coordinate topology, and instant-ring builder
//!   keep large overlays cheap.

use bench::scale_report::{peak_rss_kb, run_scale_point, ScaleFixture, ScalePoint};
use serde_json::ToJson;

const SEED: u64 = 0x5CA1E;

/// Checked-in smoke thresholds (quick fixture, N in {1024, 4096}).
/// The counters are fully deterministic — current values are
/// hops/query 10.08 @ 1k and 13.12 @ 4k (1.01 and 1.09 · log2 N; the
/// outcome's `hops` is the deepest chain in the sub-query tree, so the
/// constant sits above plain Chord's 0.5), churn recall 1.0, cache hits
/// 42 at both points — so the margins only have to absorb intentional
/// retuning, not noise.
const MAX_HOPS_PER_LOG2N: f64 = 1.40;
const MIN_RECALL_CHURN: f64 = 0.99;
const MIN_CACHE_HITS: u64 = 8;
/// Wall budget for the whole smoke sweep (fixture + both points);
/// measured ~1.3 s on one core, so this only catches order-of-magnitude
/// regressions in overlay construction or event processing.
const MAX_SMOKE_WALL_MS: f64 = 60_000.0;

fn check_point(p: &ScalePoint) -> bool {
    let mut failed = false;
    let ceiling = MAX_HOPS_PER_LOG2N * p.log2_n();
    if p.plain.hops_per_query > ceiling {
        eprintln!(
            "scale-smoke FAIL: n={} hops/query {:.3} exceeds {:.3} \
             ({MAX_HOPS_PER_LOG2N} * log2 N) — routing stopped scaling logarithmically",
            p.n_nodes, p.plain.hops_per_query, ceiling
        );
        failed = true;
    }
    if p.plain.mean_recall < 1.0 {
        eprintln!(
            "scale-smoke FAIL: n={} plain recall {} below 1.0 — \
             exact pruning dropped answers at scale",
            p.n_nodes, p.plain.mean_recall
        );
        failed = true;
    }
    if p.churn.mean_recall < MIN_RECALL_CHURN {
        eprintln!(
            "scale-smoke FAIL: n={} churn recall {} below {MIN_RECALL_CHURN} — \
             the resilience layer stopped holding recall under faults",
            p.n_nodes, p.churn.mean_recall
        );
        failed = true;
    }
    if p.churn.cache_hits < MIN_CACHE_HITS {
        eprintln!(
            "scale-smoke FAIL: n={} cache.hits {} below {MIN_CACHE_HITS} — \
             the hot-range result cache stopped firing",
            p.n_nodes, p.churn.cache_hits
        );
        failed = true;
    }
    failed
}

fn main() {
    let smoke = std::env::var_os("SCALE_SMOKE").is_some();
    let full = std::env::var("SIMSEARCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);

    let start = std::time::Instant::now();
    let (fixture, sizes): (ScaleFixture, Vec<usize>) = if smoke {
        (ScaleFixture::quick(SEED), vec![1 << 10, 1 << 12])
    } else if full {
        (
            ScaleFixture::full(SEED),
            vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 100_000],
        )
    } else {
        (ScaleFixture::full(SEED), vec![1 << 10, 1 << 12, 1 << 14])
    };

    let mut points: Vec<ScalePoint> = Vec::new();
    let mut failed = false;
    for &n in &sizes {
        let p = run_scale_point(&fixture, n, SEED);
        println!(
            "scale n={:>6}: hops/query {:.2} ({:.2} * log2 N), recall {:.3}/{:.3} \
             (plain/churn), cache hits {}, build {:.0} ms, run {:.0} ms, peak RSS {} MB",
            p.n_nodes,
            p.plain.hops_per_query,
            p.plain.hops_per_query / p.log2_n(),
            p.plain.mean_recall,
            p.churn.mean_recall,
            p.churn.cache_hits,
            p.build_ms,
            p.run_ms,
            p.peak_rss_kb / 1024,
        );
        if smoke {
            failed |= check_point(&p);
        }
        points.push(p);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if smoke {
        // Persist the measured points before any threshold exit so CI
        // can attach them to a failed run.
        bench::report::save_json(
            "BENCH_scale_smoke",
            &serde_json::json!({
                "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
                "wall_ms": wall_ms,
            }),
        );
        if wall_ms > MAX_SMOKE_WALL_MS {
            eprintln!(
                "scale-smoke FAIL: sweep took {wall_ms:.0} ms, budget {MAX_SMOKE_WALL_MS:.0} ms \
                 — large-overlay construction or simulation regressed"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "scale-smoke OK: {} points, hops <= {MAX_HOPS_PER_LOG2N} * log2 N, \
             recall >= {MIN_RECALL_CHURN} under churn, {wall_ms:.0} ms <= {MAX_SMOKE_WALL_MS:.0} ms",
            points.len()
        );
        return;
    }

    let report = serde_json::json!({
        "scenario": format!(
            "scaling-law sweep, {} objects, {} plain queries per point{}",
            fixture.n_objects,
            fixture.plain_queries.len(),
            if full { " (full)" } else { "" },
        ),
        "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        "wall_ms": wall_ms,
        "peak_rss_kb": peak_rss_kb(),
    });
    bench::report::save_json("BENCH_scale", &report);
}
