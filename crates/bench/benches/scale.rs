//! The scaling-law sweep behind `BENCH_scale.json` and the CI
//! `scale-smoke` gate.
//!
//! Default run: overlays of 1k, 4k, and 16k nodes answer the
//! `scale_report` workloads and the sweep lands in
//! `target/experiments/BENCH_scale.json` (the checked-in copy lives at
//! the repo root). `SIMSEARCH_FULL=1` extends the sweep to 64k and
//! 100k nodes. `SCALE_SMOKE=1` runs the 1k and 4k points on the quick
//! fixture only and fails the process when any scaling-law threshold
//! checked in below regresses:
//!
//! * `hops_per_query <= MAX_HOPS_PER_LOG2N * log2(N)` — routing must
//!   stay logarithmic in the overlay size;
//! * plain recall = 1.0 and churn recall >= `MIN_RECALL_CHURN` — the
//!   prunes are exact and the resilience layer holds under faults;
//! * `cache.hits >= MIN_CACHE_HITS` — the hot-workload caches keep
//!   firing as N grows;
//! * the whole smoke sweep fits the `MAX_SMOKE_WALL_MS` budget — the
//!   calendar queue, coordinate topology, and instant-ring builder
//!   keep large overlays cheap.
//!
//! `--threads 1,8` (or `SIMSEARCH_THREADS=8`) re-measures every point's
//! run phase at each listed simulator thread count; the deterministic
//! counters are asserted byte-identical across settings inside
//! `run_scale_point` and the wall-clock curve lands in each point's
//! `timing.threads` array. `PAR_SMOKE=1` is the CI parallel-speedup
//! gate: the 4k quick-fixture point at threads {1, 8} must clear
//! `MIN_PAR_SMOKE_SPEEDUP` (only enforced when the host actually has
//! >= `PAR_SMOKE_MIN_CORES` cores; the artifact is written either way).

use bench::scale_report::{peak_rss_kb, run_scale_point, ScaleFixture, ScalePoint};
use serde_json::ToJson;

const SEED: u64 = 0x5CA1E;

/// Checked-in smoke thresholds (quick fixture, N in {1024, 4096}).
/// The counters are fully deterministic — current values are
/// hops/query 10.08 @ 1k and 13.12 @ 4k (1.01 and 1.09 · log2 N; the
/// outcome's `hops` is the deepest chain in the sub-query tree, so the
/// constant sits above plain Chord's 0.5), churn recall 1.0, cache hits
/// 42 at both points — so the margins only have to absorb intentional
/// retuning, not noise.
const MAX_HOPS_PER_LOG2N: f64 = 1.40;
const MIN_RECALL_CHURN: f64 = 0.99;
const MIN_CACHE_HITS: u64 = 8;
/// Wall budget for the whole smoke sweep (fixture + both points);
/// measured ~1.3 s on one core, so this only catches order-of-magnitude
/// regressions in overlay construction or event processing.
const MAX_SMOKE_WALL_MS: f64 = 60_000.0;

/// `PAR_SMOKE` run-phase speedup floor at 4096 nodes, threads 1 -> 8.
/// Measured headroom is well above this; the floor is set to catch the
/// parallel path silently degenerating to sequential (speedup ~1.0),
/// not to benchmark the scheduler — CI runners are noisy and share
/// cores, so anything meaningfully above 1.0 proves the windows are
/// actually fanning out.
const MIN_PAR_SMOKE_SPEEDUP: f64 = 1.2;
/// Below this many available cores the speedup floor is advisory only:
/// a 2-core runner cannot demonstrate an 8-thread win.
const PAR_SMOKE_MIN_CORES: usize = 4;

fn check_point(p: &ScalePoint) -> bool {
    let mut failed = false;
    let ceiling = MAX_HOPS_PER_LOG2N * p.log2_n();
    if p.plain.hops_per_query > ceiling {
        eprintln!(
            "scale-smoke FAIL: n={} hops/query {:.3} exceeds {:.3} \
             ({MAX_HOPS_PER_LOG2N} * log2 N) — routing stopped scaling logarithmically",
            p.n_nodes, p.plain.hops_per_query, ceiling
        );
        failed = true;
    }
    if p.plain.mean_recall < 1.0 {
        eprintln!(
            "scale-smoke FAIL: n={} plain recall {} below 1.0 — \
             exact pruning dropped answers at scale",
            p.n_nodes, p.plain.mean_recall
        );
        failed = true;
    }
    if p.churn.mean_recall < MIN_RECALL_CHURN {
        eprintln!(
            "scale-smoke FAIL: n={} churn recall {} below {MIN_RECALL_CHURN} — \
             the resilience layer stopped holding recall under faults",
            p.n_nodes, p.churn.mean_recall
        );
        failed = true;
    }
    if p.churn.cache_hits < MIN_CACHE_HITS {
        eprintln!(
            "scale-smoke FAIL: n={} cache.hits {} below {MIN_CACHE_HITS} — \
             the hot-range result cache stopped firing",
            p.n_nodes, p.churn.cache_hits
        );
        failed = true;
    }
    failed
}

/// Thread settings for the sweep: `--threads 1,8` (also `--threads=`)
/// wins, then `SIMSEARCH_THREADS` as a single setting, default `[1]`.
fn thread_settings() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    let mut spec: Option<String> = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--threads=") {
            spec = Some(v.to_string());
        } else if a == "--threads" {
            spec = args.get(i + 1).cloned();
        }
    }
    let spec = spec.or_else(|| std::env::var("SIMSEARCH_THREADS").ok());
    let Some(spec) = spec else { return vec![1] };
    let parsed: Vec<usize> = spec
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("bad --threads list {spec:?}: {e}"));
    assert!(
        !parsed.is_empty() && parsed.iter().all(|&t| t >= 1),
        "--threads needs at least one setting >= 1, got {spec:?}"
    );
    parsed
}

/// `PAR_SMOKE=1`: one 4k quick-fixture point at threads {1, 8}, gating
/// the parallel engine's speedup floor. Exits the process.
fn par_smoke() -> ! {
    let start = std::time::Instant::now();
    let fixture = ScaleFixture::quick(SEED);
    let p = run_scale_point(&fixture, 1 << 12, SEED, &[1, 8]);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let par = p
        .thread_timings
        .last()
        .expect("two settings were requested");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "par-smoke n={}: run {:.0} ms @ 1 thread, {:.0} ms @ {} threads \
         (speedup {:.2}x, {cores} cores)",
        p.n_nodes, p.run_ms, par.run_ms, par.threads, par.speedup
    );
    // Persist before any threshold exit so CI can attach the artifact
    // to a failed run.
    bench::report::save_json(
        "BENCH_par_smoke",
        &serde_json::json!({
            "point": p.to_json(),
            "wall_ms": wall_ms,
            "cores": cores as u64,
        }),
    );
    if cores < PAR_SMOKE_MIN_CORES {
        println!(
            "par-smoke SKIP: only {cores} cores available (need {PAR_SMOKE_MIN_CORES}); \
             determinism was still verified across thread counts"
        );
        std::process::exit(0);
    }
    if par.speedup < MIN_PAR_SMOKE_SPEEDUP {
        eprintln!(
            "par-smoke FAIL: speedup {:.2}x below {MIN_PAR_SMOKE_SPEEDUP}x — \
             the window engine stopped fanning work out to shards",
            par.speedup
        );
        std::process::exit(1);
    }
    println!(
        "par-smoke OK: {:.2}x >= {MIN_PAR_SMOKE_SPEEDUP}x at {} threads",
        par.speedup, par.threads
    );
    std::process::exit(0);
}

fn main() {
    let smoke = std::env::var_os("SCALE_SMOKE").is_some();
    let full = std::env::var("SIMSEARCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    if std::env::var_os("PAR_SMOKE").is_some() {
        par_smoke();
    }
    let threads = thread_settings();

    let start = std::time::Instant::now();
    let (fixture, sizes): (ScaleFixture, Vec<usize>) = if smoke {
        (ScaleFixture::quick(SEED), vec![1 << 10, 1 << 12])
    } else if full {
        (
            ScaleFixture::full(SEED),
            vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 100_000],
        )
    } else {
        (ScaleFixture::full(SEED), vec![1 << 10, 1 << 12, 1 << 14])
    };

    let mut points: Vec<ScalePoint> = Vec::new();
    let mut failed = false;
    for &n in &sizes {
        let p = run_scale_point(&fixture, n, SEED, &threads);
        println!(
            "scale n={:>6}: hops/query {:.2} ({:.2} * log2 N), recall {:.3}/{:.3} \
             (plain/churn), cache hits {}, build {:.0} ms, run {:.0} ms, peak RSS {} MB",
            p.n_nodes,
            p.plain.hops_per_query,
            p.plain.hops_per_query / p.log2_n(),
            p.plain.mean_recall,
            p.churn.mean_recall,
            p.churn.cache_hits,
            p.build_ms,
            p.run_ms,
            p.peak_rss_kb / 1024,
        );
        for t in p.thread_timings.iter().skip(1) {
            println!(
                "               threads {:>2}: run {:.0} ms ({:.2}x)",
                t.threads, t.run_ms, t.speedup
            );
        }
        if smoke {
            failed |= check_point(&p);
        }
        points.push(p);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if smoke {
        // Persist the measured points before any threshold exit so CI
        // can attach them to a failed run.
        bench::report::save_json(
            "BENCH_scale_smoke",
            &serde_json::json!({
                "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
                "wall_ms": wall_ms,
            }),
        );
        if wall_ms > MAX_SMOKE_WALL_MS {
            eprintln!(
                "scale-smoke FAIL: sweep took {wall_ms:.0} ms, budget {MAX_SMOKE_WALL_MS:.0} ms \
                 — large-overlay construction or simulation regressed"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "scale-smoke OK: {} points, hops <= {MAX_HOPS_PER_LOG2N} * log2 N, \
             recall >= {MIN_RECALL_CHURN} under churn, {wall_ms:.0} ms <= {MAX_SMOKE_WALL_MS:.0} ms",
            points.len()
        );
        return;
    }

    let report = serde_json::json!({
        "scenario": format!(
            "scaling-law sweep, {} objects, {} plain queries per point{}",
            fixture.n_objects,
            fixture.plain_queries.len(),
            if full { " (full)" } else { "" },
        ),
        "points": points.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        "wall_ms": wall_ms,
        "peak_rss_kb": peak_rss_kb(),
    });
    bench::report::save_json("BENCH_scale", &report);
}
