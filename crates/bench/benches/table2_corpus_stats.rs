//! **Table 2** — distribution of document-vector sizes in the TREC-like
//! corpus. The paper reports, for TREC-1,2-AP after stopword removal:
//! min 1 / 5th 50 / 50th 146 / 95th 293 / max 676 / mean 155.4.
//!
//! This harness regenerates the table from our synthetic corpus so the
//! substitution's fidelity is measurable, and prints the query-topic
//! statistics (paper: 3.5 distinct terms on average) alongside.

use bench::trec::trec_setup;
use bench::{save_json, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("=== Table 2: document vector size distribution ===");
    println!(
        "{} documents, vocabulary {}, seed {}",
        scale.corpus_docs, scale.corpus_vocab, scale.seed
    );

    let setup = trec_setup(&scale);
    let s = setup.corpus.vector_size_stats();

    println!(
        "\n{:>10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}",
        "", "min", "5th", "50th", "95th", "max", "mean"
    );
    println!(
        "{:>10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8.1}",
        "ours", s.min, s.p5, s.p50, s.p95, s.max, s.mean
    );
    println!(
        "{:>10} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8.1}",
        "paper", 1, 50, 146, 293, 676, 155.4
    );

    let qmean = setup.corpus.topics.iter().map(|t| t.nnz()).sum::<usize>() as f64
        / setup.corpus.topics.len() as f64;
    println!(
        "\nquery topics: {} topics, mean {:.2} distinct terms (paper: 50 topics, 3.5 terms)",
        setup.corpus.topics.len(),
        qmean
    );
    let distinct_terms = setup.corpus.df.iter().filter(|&&d| d > 0).count();
    println!(
        "distinct terms used: {} of vocabulary {} (paper: 233,640 distinct terms)",
        distinct_terms, scale.corpus_vocab
    );

    save_json(
        "table2_corpus_stats",
        &serde_json::json!({
            "min": s.min, "p5": s.p5, "p50": s.p50, "p95": s.p95,
            "max": s.max, "mean": s.mean,
            "query_mean_terms": qmean,
            "distinct_terms": distinct_terms,
        }),
    );
}
