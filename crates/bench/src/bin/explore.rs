//! `explore` — run a custom experiment from the command line.
//!
//! ```text
//! cargo run --release -p bench --bin explore -- \
//!     --nodes 256 --objects 20000 --queries 100 \
//!     --method kmeans --k 10 --factors 0.02,0.05,0.1 --lb --pastry
//! ```
//!
//! Knobs (all optional):
//!   --nodes N        overlay size            (default 256)
//!   --objects N      dataset size            (default 20000)
//!   --queries N      queries per factor      (default 100)
//!   --method M       greedy|kmeans|kmedoids  (default kmeans)
//!   --k K            landmark count          (default 10)
//!   --factors F,..   query range factors     (default 0.02,0.05,0.10)
//!   --seed S         root seed               (default 42)
//!   --lb             enable dynamic load migration
//!   --load-aware     load-aware join placement
//!   --naive L        naive routing at decomposition level L
//!   --pastry         run on the Pastry substrate
//!   --rotate         apply the space-mapping rotation
//!   --no-pns         plain Chord fingers (no proximity selection)
//!   --replicate R    retry/failover + publish to R successor replicas
//!   --routing-opt    routing-plane caches & sub-query batching
//!   --loss P         drop each message with probability P (e.g. 0.1)
//!   --churn N        inject N crash/restart pairs across the workload
//!   --explain        print a step-by-step trace of one query's resolution
//!   --telemetry      after the sweep, print the run's telemetry summary,
//!                    the recorded plan of query 0, and save the full
//!                    snapshot under target/experiments/

use bench::report::print_telemetry_summary;
use bench::scale::Scale;
use bench::synth::{run_synth_system, synth_setup, SynthRun};
use bench::{print_series, Row};
use landmark::SelectionMethod;
use simsearch::{LoadBalanceConfig, OverlayKind};

fn parse_args() -> (Scale, SynthRun, Vec<f64>, bool, bool) {
    let mut scale = Scale::quick();
    scale.n_queries = 100;
    let mut run = SynthRun::new(SelectionMethod::KMeans, 10, None);
    let mut factors = vec![0.02, 0.05, 0.10];
    let mut explain = false;
    let mut telemetry = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => scale.n_nodes = value(&mut i).parse().expect("--nodes"),
            "--objects" => scale.n_objects = value(&mut i).parse().expect("--objects"),
            "--queries" => scale.n_queries = value(&mut i).parse().expect("--queries"),
            "--seed" => scale.seed = value(&mut i).parse().expect("--seed"),
            "--k" => run.k = value(&mut i).parse().expect("--k"),
            "--method" => {
                run.method = match value(&mut i).as_str() {
                    "greedy" => SelectionMethod::Greedy,
                    "kmeans" => SelectionMethod::KMeans,
                    "kmedoids" => SelectionMethod::KMedoids,
                    other => panic!("unknown method {other}"),
                }
            }
            "--factors" => {
                factors = value(&mut i)
                    .split(',')
                    .map(|f| f.parse().expect("--factors"))
                    .collect()
            }
            "--lb" => run.lb = Some(LoadBalanceConfig::default()),
            "--load-aware" => run.load_aware_join = true,
            "--naive" => run.naive = Some(value(&mut i).parse().expect("--naive")),
            "--pastry" => run.overlay = OverlayKind::Pastry,
            "--rotate" => run.rotate = true,
            "--no-pns" => run.pns = 0,
            "--replicate" => {
                run.resilience = Some(simsearch::ResilienceConfig {
                    replication: value(&mut i).parse().expect("--replicate"),
                    ..simsearch::ResilienceConfig::default()
                })
            }
            "--routing-opt" => run.routing_opt = Some(simsearch::RoutingOptConfig::default()),
            "--loss" => run.loss = value(&mut i).parse().expect("--loss"),
            "--churn" => run.churn = value(&mut i).parse().expect("--churn"),
            "--explain" => explain = true,
            "--telemetry" => telemetry = true,
            "--help" | "-h" => {
                println!("see the doc comment at the top of explore.rs for the knob list");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
        i += 1;
    }
    (scale, run, factors, explain, telemetry)
}

fn main() {
    let (scale, run, factors, explain, telemetry) = parse_args();
    println!(
        "explore: {} nodes, {} objects, {} queries/factor, {}-{} landmarks, overlay {:?}{}{}{}",
        scale.n_nodes,
        scale.n_objects,
        scale.n_queries,
        run.method,
        run.k,
        run.overlay,
        if run.lb.is_some() { ", LB on" } else { "" },
        run.naive
            .map(|l| format!(", naive L{l}"))
            .unwrap_or_default(),
        if run.rotate { ", rotated" } else { "" },
    );

    eprintln!("generating dataset + ground truth ...");
    let setup = synth_setup(&scale);

    if explain {
        // Build the same system and trace the first query at the first
        // range factor instead of running the whole sweep.
        use landmark::{boundary_from_metric, Mapper};
        use metric::L2;
        use simsearch::{IndexSpec, SearchSystem, SystemConfig};
        use std::sync::Arc;
        let landmarks = bench::synth::select_landmarks(&setup, run.method, run.k, &scale);
        let metric = L2::bounded(100, 0.0, 100.0);
        let mapper = Mapper::new(metric, landmarks);
        let points = mapper.map_all::<[f32], _>(&setup.dataset.objects);
        let oracle: Arc<dyn simsearch::QueryDistance> =
            Arc::new(|_q: simsearch::QueryId, _o: metric::ObjectId| 0.0);
        let system = SearchSystem::build(
            SystemConfig {
                n_nodes: scale.n_nodes,
                seed: scale.seed,
                overlay: run.overlay,
                lb: run.lb,
                ..SystemConfig::default()
            },
            &[IndexSpec {
                name: "explore".into(),
                boundary: boundary_from_metric(&metric, run.k).unwrap().dims,
                points,
                rotate: run.rotate,
                rotation: None,
            }],
            oracle,
        );
        let qm = mapper.map(setup.qpoints[0].as_slice());
        let radius = factors[0] * setup.dataset.max_distance();
        let report = system.explain(0, &qm, radius, 0);
        println!(
            "
query 0 at range factor {:.2}%:
{report}",
            factors[0] * 100.0
        );
        return;
    }

    eprintln!("running ...");
    let (rows, loads, system) = run_synth_system(&scale, &setup, &run, &factors);

    let all: Vec<Row> = rows;
    print_series("recall", &all, |r| r.recall);
    print_series("hops", &all, |r| r.hops);
    print_series("response time [ms]", &all, |r| r.response_ms);
    print_series("maximum latency [ms]", &all, |r| r.max_latency_ms);
    print_series("query bandwidth [bytes]", &all, |r| r.query_bytes);
    print_series("result bandwidth [bytes]", &all, |r| r.result_bytes);
    println!(
        "\nload: max={} median={} of {} entries over {} nodes",
        loads.first().unwrap_or(&0),
        loads.get(loads.len() / 2).unwrap_or(&0),
        scale.n_objects,
        scale.n_nodes
    );

    if telemetry {
        if let Some(plan) = system.query_plan(0) {
            println!("\n== recorded plan of query 0 ==\n{plan}");
        }
        let snapshot = system.telemetry_snapshot();
        print_telemetry_summary(&snapshot);
        bench::report::save_json("explore_telemetry", &snapshot);
    }
}
