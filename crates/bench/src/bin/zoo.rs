//! `zoo` — run the checked-in scenario zoo and print a report table.
//!
//! ```text
//! cargo run --release -p bench --bin zoo            # whole zoo
//! cargo run --release -p bench --bin zoo -- flash   # name substring filter
//! ```
//!
//! Each `scenarios/*.toml` file is executed through the deterministic
//! simulator and summarized on one row: recall, hop ceiling, migration
//! count, cache hits, and the combined hot-arc share that the rotation
//! ablation compares. Exit is non-zero if any scenario violates its
//! `[expect]` block — the same invariants the `zoo` CI smoke job gates,
//! minus the golden byte-compare (this bin is a report, not a gate).

use std::path::PathBuf;
use std::process::ExitCode;

use serde_json::Value;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn u(v: &Value) -> u64 {
    v.as_u64().unwrap_or(0)
}

fn main() -> ExitCode {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let dir = repo_root().join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .filter(|p| p.to_string_lossy().contains(&filter))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no scenario matches {filter:?} under {}", dir.display());
        return ExitCode::FAILURE;
    }

    println!(
        "{:<22} {:>3} {:>3} {:>7} {:>5} {:>5} {:>6} {:>9} {:>6}",
        "scenario", "idx", "ten", "recall", "hops", "migr", "cache", "hot-share", "status"
    );
    let mut failed = false;
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("read scenario");
        let sc = match scenarios::parse_scenario(&text) {
            Ok(sc) => sc,
            Err(e) => {
                println!(
                    "{:<22} parse error: {e}",
                    path.file_stem().unwrap().to_string_lossy()
                );
                failed = true;
                continue;
            }
        };
        let report = scenarios::run(&sc);
        let d = &report.digest;
        let (mut recall_min, mut hops_max) = (1_000_000u64, 0u64);
        if let Value::Object(tenants) = &d["tenants"] {
            for t in tenants.values() {
                recall_min = recall_min.min(u(&t["recall_min_micros"]));
                hops_max = hops_max.max(u(&t["hops_max"]));
            }
        }
        println!(
            "{:<22} {:>3} {:>3} {:>7} {:>5} {:>5} {:>6} {:>9} {:>6}",
            sc.name,
            u(&d["scenario"]["indexes"]),
            u(&d["scenario"]["tenants"]),
            format!("{:.4}", recall_min as f64 / 1e6),
            hops_max,
            u(&d["balance"]["runtime_migrations"]),
            u(&d["registry"]["counters"]["cache.hits"]),
            format!("{:.3}", u(&d["combined"]["max_share_micros"]) as f64 / 1e6),
            if report.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            },
        );
        for v in &report.violations {
            println!("    violation: {v}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
