//! Shared experiment machinery for the paper-reproduction benches.
//!
//! Every figure/table of the paper has a `benches/*.rs` target (custom
//! harness) that builds on the drivers here:
//!
//! * [`scale`] — experiment sizing: the quick default and the
//!   `SIMSEARCH_FULL=1` paper scale;
//! * [`synth`] — the §4.2 synthetic-dataset pipeline (Table 1 data →
//!   landmark selection → mapping → system → query sweep);
//! * [`trec`] — the §4.3 text pipeline over the synthetic TREC-like
//!   corpus (angular metric, sampled boundary);
//! * [`report`] — table printing and JSON persistence under
//!   `target/experiments/`;
//! * [`load_report`] — the sustained-load capacity-search scenario
//!   behind `BENCH_load.json` and the CI `load-smoke` gate.

pub mod load_report;
pub mod micro_report;
pub mod report;
pub mod scale;
pub mod scale_report;
pub mod synth;
pub mod trec;

pub use report::{print_series, save_json, Row};
pub use scale::Scale;
