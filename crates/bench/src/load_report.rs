//! The sustained-load scenario behind `BENCH_load.json` and the CI
//! `load-smoke` gate.
//!
//! Where `scale_report` asks how cost grows with overlay size,
//! this scenario asks **how much offered rate one overlay sustains**:
//! a Zipf-skewed open-loop mix of range queries, knn queries, and
//! runtime publishes is driven through `simsearch::loadgen` with the
//! finite per-node service model on, and a capacity search finds the
//! highest offered QPS whose p99 latency and error rate stay inside the
//! SLO. Three scenarios share one dataset:
//!
//! * **plain** — healthy network, optimization layer off. The baseline
//!   capacity knee.
//! * **loss_churn** — 1% message loss plus two crash/restart pairs,
//!   `r = 2` replication with retry/failover. The SLO allows a small
//!   error budget; completed queries must still have recall 1.0.
//! * **routing_opt** — healthy network with the routing-plane cache on.
//!   The Zipf head repeats, so shortcuts and the result cache raise the
//!   knee relative to plain.
//!
//! Everything but the `timing` block is deterministic in the seed: the
//! plan is drawn before the system is built (the distance oracle is
//! keyed by qid), each capacity probe builds a fresh system, and probed
//! rates follow a doubling-then-bisection ladder from a fixed base.

use std::sync::Arc;

use landmark::{boundary_from_sample, kmeans, Mapper};
use metric::{Dataset, Metric, ObjectId, L2};
use serde_json::{ToJson, Value};
use simnet::{AgentId, ArrivalProcess, SimDuration, SimRng};
use simsearch::loadgen::{self, LoadPools};
use simsearch::{
    CapacityResult, IndexSpec, LoadConfig, LoadOutcome, QueryDistance, QueryId, QueryMix,
    QuerySpec, ResilienceConfig, RoutingOptConfig, SearchSystem, SloSpec, SystemConfig,
};
use workloads::{ground_truth, ClusteredParams, ClusteredVectors};

use crate::scale_report::peak_rss_kb;

const K_LANDMARKS: usize = 5;
const KNN_K: usize = 10;
/// Per-message service time of the finite-capacity model: what turns
/// offered rate into queueing delay and gives the SLO a knee to find.
const SERVICE_MS: f64 = 2.0;
/// Per-query completion deadline; a query with no first result by then
/// is an error.
const DEADLINE_S: u64 = 10;
/// Uniform message loss rate of the `loss_churn` scenario.
const LOSS_RATE: f64 = 0.01;
/// Crash/restart pairs injected across the admission span.
const CHURN_PAIRS: usize = 2;
/// Node indices the fault scenario reserves as churn victims: excluded
/// from the plan's origin draw (a crashed origin loses its merge state
/// — a different failure mode than the owner/replica churn measured
/// here) and crashed in ring-non-adjacent pairs during the run.
const CHURN_CANDIDATES: [usize; 4] = [3, 11, 23, 37];
/// How long a churn victim stays down. Fixed, not span-relative: a
/// span-relative downtime would punish *low* offered rates with longer
/// outages and make latency anti-monotone in rate.
const CHURN_DOWNTIME_S: f64 = 5.0;

/// The dataset-side state shared by every scenario and probe: mapped
/// points, query pools with exact truth, the publish pool, and the raw
/// vectors behind the qid-keyed oracle.
pub struct LoadFixture {
    /// Landmark-space index boundary.
    pub boundary: Vec<(f64, f64)>,
    /// Landmark-mapped dataset published at build time.
    pub points: Vec<Vec<f64>>,
    /// Range-query pool (wide padded radius, top-k truth).
    pub range: Vec<QuerySpec>,
    /// knn-query pool (tight padded radius, top-k truth).
    pub knn: Vec<QuerySpec>,
    /// Runtime-publish pool: fresh object ids with landmark-space
    /// points, all far from every pool query so publishing them cannot
    /// perturb any query's truth.
    pub publish: Vec<(ObjectId, Vec<f64>)>,
    /// Raw vectors behind ObjectId space — build-time objects first,
    /// then the publish pool's objects.
    objects: Arc<Vec<Vec<f32>>>,
    /// Raw vectors of the range pool's query points, by pool index.
    range_raw: Vec<Vec<f32>>,
    /// Raw vectors of the knn pool's query points, by pool index.
    knn_raw: Vec<Vec<f32>>,
}

impl LoadFixture {
    /// Generate the dataset, select landmarks, map everything, compute
    /// exact pool truth, and carve out a far-from-everything publish
    /// pool.
    pub fn build(n_objects: usize, pool_size: usize, n_publish: usize, seed: u64) -> LoadFixture {
        let data = ClusteredVectors::generate(
            ClusteredParams {
                dims: 12,
                clusters: 5,
                deviation: 9.0,
                n_objects,
                ..ClusteredParams::default()
            },
            seed,
        );
        let metric = L2::bounded(12, 0.0, 100.0);
        let mut rng = SimRng::new(seed);
        let sample: Vec<Vec<f32>> = rng
            .sample_indices(data.objects.len(), 250)
            .into_iter()
            .map(|i| data.objects[i].clone())
            .collect();
        let landmarks = kmeans::<_, [f32], _>(&metric, &sample, K_LANDMARKS, 10, &mut rng);
        let mapper = Mapper::new(metric, landmarks);
        let points = mapper.map_all::<[f32], _>(&data.objects);
        let boundary = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.05).dims;

        // Pool truth is the exact top-k; radii are padded past the k-th
        // distance (wide for the range pool, tight for knn) so recall
        // 1.0 is achievable and refinement is exercised.
        let dataset = Dataset::new(data.objects.clone());
        let to_specs = |qpoints: &[Vec<f32>], pad: f64| -> Vec<QuerySpec> {
            let truth =
                ground_truth::knn_batch::<_, [f32], _>(&L2::new(), &dataset, qpoints, KNN_K);
            qpoints
                .iter()
                .zip(&truth)
                .map(|(q, t)| QuerySpec {
                    index: 0,
                    point: mapper.map(q.as_slice()).into_vec(),
                    radius: t[KNN_K - 1].1 * pad,
                    truth: t.iter().map(|&(id, _)| id).collect(),
                })
                .collect()
        };
        let range_raw = data.queries(pool_size, seed ^ 0x4A);
        let knn_raw = data.queries(pool_size, seed ^ 0x4B);
        let range = to_specs(&range_raw, 2.5);
        let knn = to_specs(&knn_raw, 1.5);

        // Publish candidates must not perturb any pool query's truth:
        // keep only candidates outside every pool query's ball (with a
        // 10% margin). An object farther than the radius can never
        // out-rank a truth object — answers are ranked by true distance
        // and every truth object sits within radius/pad — so recall
        // stays exactly 1.0 while the publishes still cost routing and
        // storage traffic. Cluster-drawn points can't clear the balls
        // (the query pool covers every cluster), so candidates live at
        // jittered corners of the domain, ~2x farther from any cluster
        // than the widest radius; the filter below still enforces it.
        let mut crng = SimRng::new(seed).fork(0x9B);
        let candidates: Vec<Vec<f32>> = (0..n_publish * 4)
            .map(|i| {
                (0..12)
                    .map(|d| {
                        let hi = (i >> (d % 12)) & 1 == 1;
                        let jitter = crng.f64() * 5.0;
                        (if hi { 100.0 - jitter } else { jitter }) as f32
                    })
                    .collect()
            })
            .collect();
        let l2 = L2::new();
        let far_enough = |c: &Vec<f32>| {
            range_raw
                .iter()
                .zip(&range)
                .chain(knn_raw.iter().zip(&knn))
                .all(|(q, spec)| l2.distance(c.as_slice(), q.as_slice()) > 1.1 * spec.radius)
        };
        let chosen: Vec<Vec<f32>> = candidates
            .into_iter()
            .filter(far_enough)
            .take(n_publish)
            .collect();
        assert!(
            chosen.len() == n_publish,
            "only {} of {} publish candidates clear the radius margin",
            chosen.len(),
            n_publish
        );
        let publish: Vec<(ObjectId, Vec<f64>)> = chosen
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    ObjectId((n_objects + i) as u32),
                    mapper.map(c.as_slice()).into_vec(),
                )
            })
            .collect();
        let mut objects = data.objects;
        objects.extend(chosen);

        LoadFixture {
            boundary,
            points,
            range,
            knn,
            publish,
            objects: Arc::new(objects),
            range_raw,
            knn_raw,
        }
    }

    /// The quick fixture behind the smoke gate and determinism test.
    pub fn quick(seed: u64) -> LoadFixture {
        LoadFixture::build(1_500, 16, 24, seed)
    }

    /// The full fixture behind the checked-in artifact.
    pub fn full(seed: u64) -> LoadFixture {
        LoadFixture::build(4_000, 32, 48, seed)
    }

    /// Pool handles for the driver.
    pub fn pools(&self) -> LoadPools<'_> {
        LoadPools {
            range: &self.range,
            knn: &self.knn,
            publish: &self.publish,
        }
    }

    /// The qid-keyed true-distance oracle for one plan: qid resolves to
    /// the planned pool query's raw point. Built per probe because the
    /// plan (hence the qid space) changes with the offered rate.
    pub fn oracle_for(&self, plan: &loadgen::LoadPlan) -> Arc<dyn QueryDistance> {
        let qpoints: Vec<Vec<f32>> = plan
            .query_pool_refs()
            .into_iter()
            .map(|(pool, idx)| match pool {
                loadgen::PoolKind::Range => self.range_raw[idx].clone(),
                loadgen::PoolKind::Knn => self.knn_raw[idx].clone(),
            })
            .collect();
        let objects = self.objects.clone();
        Arc::new(move |qid: QueryId, obj: ObjectId| {
            L2::new().distance(
                qpoints[qid as usize].as_slice(),
                objects[obj.0 as usize].as_slice(),
            )
        })
    }
}

/// The three sustained-load scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Healthy network, optimization layer off.
    Plain,
    /// 1% loss + crash/restart churn, `r = 2` replication.
    LossChurn,
    /// Healthy network with the routing-plane cache on.
    RoutingOpt,
}

impl Scenario {
    /// Scenario name as it appears in the artifact.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Plain => "plain",
            Scenario::LossChurn => "loss_churn",
            Scenario::RoutingOpt => "routing_opt",
        }
    }

    fn system_config(self, n_nodes: usize, seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig {
            n_nodes,
            seed,
            knn_k: KNN_K,
            ..SystemConfig::default()
        };
        match self {
            Scenario::Plain => {}
            Scenario::LossChurn => {
                // Tighter retransmits than the library default: the
                // default backoff chain (0.8/1.6/3.2/6.4 s) alone
                // pushes a lost answer's straggler past the deadline
                // even on an idle network, which would pin p99 at the
                // clamp at every rate and leave the SLO nothing to
                // discriminate.
                cfg.resilience = Some(ResilienceConfig {
                    replication: 2,
                    max_retries: 3,
                    base_timeout: SimDuration::from_millis(100),
                    backoff: 1.5,
                    ..ResilienceConfig::default()
                });
            }
            Scenario::RoutingOpt => {
                // No resilience layer: the network is healthy, and ack
                // timers under deliberate over-saturation only breed
                // spurious-retransmit storms that measure the timer
                // config, not the cache. Plain is equally bare, so the
                // knee gap is the cache's contribution alone.
                cfg.routing_opt = Some(RoutingOptConfig::default());
            }
        }
        cfg
    }

    /// The SLO this scenario's capacity search runs under. The two
    /// healthy scenarios share one latency bound so their knees are
    /// directly comparable (the gap *is* the routing-plane cache's
    /// headline number); the fault scenario gets a looser bound plus a
    /// small error budget (a crashed owner can strand a few in-flight
    /// queries). Every scenario must keep recall 1.0 to pass.
    pub fn slo(self) -> SloSpec {
        match self {
            Scenario::Plain | Scenario::RoutingOpt => SloSpec {
                p99_ms: 3_500.0,
                max_error_rate: 0.0,
                min_recall: 1.0,
            },
            Scenario::LossChurn => SloSpec {
                p99_ms: 9_000.0,
                max_error_rate: 0.02,
                min_recall: 1.0,
            },
        }
    }
}

/// Crash/restart pairs across the admission span, victims drawn from
/// `CHURN_CANDIDATES` — node indices the plan's origin draw excluded —
/// keeping chosen victims non-adjacent on the ring so one crash never
/// takes both the primary and the replica of an entry down.
fn schedule_churn(system: &mut SearchSystem, span_s: f64) {
    let ring: Vec<AgentId> = system.ring().nodes().iter().map(|n| n.addr).collect();
    let n = ring.len();
    let mut victims: Vec<usize> = Vec::new();
    for (pos, addr) in ring.iter().enumerate() {
        if victims.len() == CHURN_PAIRS {
            break;
        }
        let adjacent = victims
            .iter()
            .any(|&v| (pos + n - v) % n <= 1 || (v + n - pos) % n <= 1);
        if CHURN_CANDIDATES.contains(&addr.0) && !adjacent {
            victims.push(pos);
        }
    }
    assert_eq!(
        victims.len(),
        CHURN_PAIRS,
        "churn candidates landed ring-adjacent; widen CHURN_CANDIDATES"
    );
    let base = system.now();
    for (i, &pos) in victims.iter().enumerate() {
        let t0 = span_s * (i as f64 + 0.5) / (CHURN_PAIRS as f64 + 1.0);
        system.schedule_crash(base + SimDuration::from_secs_f64(t0), ring[pos]);
        system.schedule_restart(
            base + SimDuration::from_secs_f64(t0 + CHURN_DOWNTIME_S),
            ring[pos],
        );
    }
}

/// One open-loop run offering `qps` for `duration_s` seconds of
/// simulated time against a fresh system, with the finite-capacity
/// service model on. The *duration* is fixed — not the operation count
/// — so a higher offered rate admits proportionally more operations
/// and sustained queueing can actually accumulate; a fixed op count
/// would turn every high-rate probe into a short burst that drains
/// inside the deadline tail and never saturates anything.
pub fn run_load_at(
    fixture: &LoadFixture,
    scenario: Scenario,
    n_nodes: usize,
    duration_s: f64,
    qps: f64,
    seed: u64,
) -> LoadOutcome {
    let cfg = LoadConfig {
        arrival: ArrivalProcess::poisson_qps(qps),
        n_ops: ((qps * duration_s).round() as usize).max(1),
        mix: QueryMix::default(),
        deadline: SimDuration::from_secs(DEADLINE_S),
        excluded_origins: if scenario == Scenario::LossChurn {
            CHURN_CANDIDATES.to_vec()
        } else {
            Vec::new()
        },
        ..LoadConfig::default()
    };
    let pools = fixture.pools();
    let plan = loadgen::plan(&cfg, &pools, n_nodes, seed);
    let oracle = fixture.oracle_for(&plan);
    let spec = IndexSpec {
        name: format!("load-{}", scenario.name()),
        boundary: fixture.boundary.clone(),
        points: fixture.points.clone(),
        rotate: true,
        rotation: None,
    };
    let mut system = SearchSystem::build(scenario.system_config(n_nodes, seed), &[spec], oracle);
    system.set_service_time(Some(SimDuration::from_millis_f64(SERVICE_MS)));
    if scenario == Scenario::LossChurn {
        system.set_loss_rate(LOSS_RATE);
        schedule_churn(&mut system, duration_s);
    }
    loadgen::execute(&mut system, &plan, &pools)
}

/// Capacity search for one scenario: doubling ladder from `base_qps`,
/// then log-space bisection of the first passing/failing bracket.
#[allow(clippy::too_many_arguments)]
pub fn run_capacity(
    fixture: &LoadFixture,
    scenario: Scenario,
    n_nodes: usize,
    duration_s: f64,
    base_qps: f64,
    max_doublings: usize,
    refine_steps: usize,
    seed: u64,
) -> CapacityResult {
    loadgen::capacity_search(
        scenario.slo(),
        base_qps,
        max_doublings,
        refine_steps,
        |qps| run_load_at(fixture, scenario, n_nodes, duration_s, qps, seed),
    )
}

fn outcome_json(o: &LoadOutcome) -> Value {
    serde_json::json!({
        "issued": o.issued,
        "completions": o.completions,
        "timeouts": o.timeouts,
        "publishes": o.publishes,
        "duplicate_completions": o.duplicate_completions,
        "offered_qps": o.offered_qps,
        "sustained_qps": o.sustained_qps,
        "p50_ms": o.p50_ms,
        "p95_ms": o.p95_ms,
        "p99_ms": o.p99_ms,
        "mean_ms": o.mean_ms,
        "error_rate": o.error_rate,
        "mean_recall": o.mean_recall,
        "deferred": o.deferred,
    })
}

/// One scenario's capacity search, serialized.
pub struct ScenarioReport {
    /// Which scenario.
    pub scenario: Scenario,
    /// The capacity-search result.
    pub result: CapacityResult,
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> Value {
        let slo = self.scenario.slo();
        let slo_json = serde_json::json!({
            "p99_ms": slo.p99_ms,
            "max_error_rate": slo.max_error_rate,
            "min_recall": slo.min_recall,
        });
        let knee_json = self.result.knee.as_ref().map_or(Value::Null, outcome_json);
        let trials: Vec<Value> = self
            .result
            .trials
            .iter()
            .map(|t| {
                serde_json::json!({
                    "offered_qps": t.offered_qps,
                    "pass": t.pass,
                    "p99_ms": t.outcome.p99_ms,
                    "error_rate": t.outcome.error_rate,
                    "completions": t.outcome.completions,
                    "timeouts": t.outcome.timeouts,
                    "mean_recall": t.outcome.mean_recall,
                    "deferred": t.outcome.deferred,
                })
            })
            .collect();
        serde_json::json!({
            "scenario": self.scenario.name(),
            "slo": slo_json,
            "knee_qps": self.result.knee_qps,
            "knee": knee_json,
            "trials": trials,
        })
    }
}

/// The whole artifact: all three scenarios plus wall-clock timing.
pub struct LoadReport {
    /// Overlay size the search ran at.
    pub n_nodes: usize,
    /// Simulated admission window of each probe run, seconds.
    pub duration_s: f64,
    /// Base rate of the doubling ladder.
    pub base_qps: f64,
    /// Per-scenario capacity searches.
    pub scenarios: Vec<ScenarioReport>,
    /// Wall time of the whole sweep, ms.
    pub wall_ms: f64,
    /// Process peak RSS after the sweep, kB.
    pub peak_rss_kb: u64,
    /// Simulator threads every probe ran with (`SIMSEARCH_THREADS`,
    /// default 1). Recorded in the timing block only: thread count
    /// changes wall clock, never the deterministic capacity results.
    pub threads: usize,
}

impl LoadReport {
    /// The seed-deterministic subset: everything except `timing`. Two
    /// regenerations must serialize this to byte-identical strings.
    pub fn deterministic_json(&self) -> Value {
        serde_json::json!({
            "n_nodes": self.n_nodes as u64,
            "duration_s": self.duration_s,
            "base_qps": self.base_qps,
            "service_ms": SERVICE_MS,
            "deadline_s": DEADLINE_S,
            "scenarios": self.scenarios.iter().map(|s| s.to_json()).collect::<Vec<_>>(),
        })
    }
}

impl ToJson for LoadReport {
    fn to_json(&self) -> Value {
        let mut v = self.deterministic_json();
        if let Value::Object(map) = &mut v {
            map.insert(
                "timing".into(),
                serde_json::json!({
                    "wall_ms": self.wall_ms,
                    "peak_rss_kb": self.peak_rss_kb,
                    "threads": self.threads as u64,
                }),
            );
        }
        v
    }
}

/// Run the full three-scenario sweep at one size.
pub fn run_load_report(
    fixture: &LoadFixture,
    n_nodes: usize,
    duration_s: f64,
    base_qps: f64,
    max_doublings: usize,
    refine_steps: usize,
    seed: u64,
) -> LoadReport {
    let t0 = std::time::Instant::now();
    let scenarios = [Scenario::Plain, Scenario::LossChurn, Scenario::RoutingOpt]
        .into_iter()
        .map(|scenario| ScenarioReport {
            scenario,
            result: run_capacity(
                fixture,
                scenario,
                n_nodes,
                duration_s,
                base_qps,
                max_doublings,
                refine_steps,
                seed,
            ),
        })
        .collect();
    LoadReport {
        n_nodes,
        duration_s,
        base_qps,
        scenarios,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
        // `Scenario::system_config` builds on `SystemConfig::default()`,
        // so every probe system above already ran at this setting.
        threads: simsearch::threads_from_env(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_probe_completes_with_full_recall() {
        let fixture = LoadFixture::quick(0x10AD5EED);
        let out = run_load_at(&fixture, Scenario::Plain, 64, 4.0, 25.0, 0x10AD5EED);
        assert_eq!(out.issued, out.completions + out.timeouts);
        assert_eq!(out.duplicate_completions, 0);
        assert_eq!(out.timeouts, 0, "25 qps must be under the knee");
        assert!(out.publishes > 0);
        assert!(
            (out.mean_recall - 1.0).abs() < 1e-12,
            "publishes perturbed recall: {}",
            out.mean_recall
        );
        assert!(out.deferred > 0, "service model never queued anything");
    }

    #[test]
    fn loss_churn_probe_keeps_ledger_balanced() {
        let fixture = LoadFixture::quick(0x10AD5EED);
        let out = run_load_at(&fixture, Scenario::LossChurn, 64, 12.0, 10.0, 0x10AD5EED);
        assert_eq!(out.issued, out.completions + out.timeouts);
        assert_eq!(out.duplicate_completions, 0);
        assert!(out.completions > 0);
        assert!(
            (out.mean_recall - 1.0).abs() < 1e-12,
            "completed queries must keep full recall under r=2: {}",
            out.mean_recall
        );
    }
}
