//! The canonical query-path performance scenario behind
//! `BENCH_micro.json` and the CI `bench-smoke` gate.
//!
//! A fixed-seed 64-node system answers a range-query batch; the
//! telemetry counters then say exactly how much work the query path did:
//!
//! * `store.entries_scanned` / `store.entries_skipped` — entries
//!   rect-tested vs. entries excluded up front by the sorted-range
//!   binary search. "Before" the span-narrowed scan, every owned entry
//!   was rect-tested, so `scanned + skipped` *is* the pre-change cost.
//! * `search.refine.dist_calls` / `search.refine.pruned` — true-distance
//!   oracle calls made vs. skipped by the landmark lower bound. The
//!   pre-change cost is again the sum.
//!
//! Both prunes are exact, so recall against the brute-force oracle must
//! sit at 100% — the scenario asserts it rather than trusts it.

use std::sync::Arc;

use landmark::{boundary_from_sample, kmeans, Mapper};
use metric::{Dataset, Metric, ObjectId, L2};
use serde_json::{ToJson, Value};
use simnet::SimRng;
use simsearch::{
    IndexSpec, QueryDistance, QueryId, QuerySpec, RoutingOptConfig, SearchSystem, SystemConfig,
};
use workloads::{ground_truth, ClusteredParams, ClusteredVectors};

const SEED: u64 = 0x64_B3;
const N_NODES: usize = 64;
const K_LANDMARKS: usize = 5;
const KNN_K: usize = 10;

/// Deterministic work counters of one scenario run, with the pre-change
/// costs derived from the same counters (`before = kept + avoided`).
#[derive(Clone, Debug)]
pub struct MicroCounters {
    /// Queries answered.
    pub queries: usize,
    /// Entries rect-tested across all nodes and fragments.
    pub scanned: u64,
    /// Entries excluded by the ring-key span before any rect test.
    pub skipped: u64,
    /// True-distance oracle calls during refinement.
    pub dist_calls: u64,
    /// Refinement candidates skipped by the landmark lower bound.
    pub pruned: u64,
    /// Mean recall against the brute-force oracle's top-k.
    pub mean_recall: f64,
    /// Wall time of the query batch (build excluded), milliseconds.
    /// The only non-deterministic field; gates use the counters.
    pub elapsed_ms: f64,
}

impl MicroCounters {
    /// Entries a full scan would have rect-tested.
    pub fn scanned_before(&self) -> u64 {
        self.scanned + self.skipped
    }

    /// Oracle calls an unpruned refinement would have made.
    pub fn dist_calls_before(&self) -> u64 {
        self.dist_calls + self.pruned
    }

    /// Scan-work reduction factor of the sorted-range scan.
    pub fn scan_reduction(&self) -> f64 {
        self.scanned_before() as f64 / (self.scanned.max(1)) as f64
    }
}

impl ToJson for MicroCounters {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "queries": self.queries as u64,
            "scanned_before": self.scanned_before(),
            "scanned_after": self.scanned,
            "scan_reduction": self.scan_reduction(),
            "dist_calls_before": self.dist_calls_before(),
            "dist_calls_after": self.dist_calls,
            "pruned": self.pruned,
            "mean_recall": self.mean_recall,
            "elapsed_ms": self.elapsed_ms,
        })
    }
}

/// Run the canonical 64-node query batch and collect its counters.
///
/// `quick` shrinks the dataset and batch (the CI smoke size); the full
/// size is what `BENCH_micro.json` records. Both are deterministic in
/// everything but `elapsed_ms`.
pub fn run_micro_scenario(quick: bool) -> MicroCounters {
    let (n_objects, n_queries) = if quick { (1_000, 16) } else { (2_000, 32) };
    let data = ClusteredVectors::generate(
        ClusteredParams {
            dims: 12,
            clusters: 5,
            deviation: 9.0,
            n_objects,
            ..ClusteredParams::default()
        },
        SEED,
    );
    let metric = L2::bounded(12, 0.0, 100.0);
    let mut rng = SimRng::new(SEED);
    let sample: Vec<Vec<f32>> = rng
        .sample_indices(data.objects.len(), 250)
        .into_iter()
        .map(|i| data.objects[i].clone())
        .collect();
    let landmarks = kmeans::<_, [f32], _>(&metric, &sample, K_LANDMARKS, 10, &mut rng);
    let mapper = Mapper::new(metric, landmarks);
    let points = mapper.map_all::<[f32], _>(&data.objects);

    let qpoints = data.queries(n_queries, SEED ^ 0x51);
    // Truth: the brute-force oracle's top-k. The query radius is padded
    // past the k-th distance so every true neighbor is in range *and*
    // plenty of non-answers match locally — which is what exercises the
    // refinement prune (nodes rank more candidates than they return).
    let dataset = Dataset::new(data.objects.clone());
    let truth = ground_truth::knn_batch::<_, [f32], _>(&L2::new(), &dataset, &qpoints, KNN_K);
    let queries: Vec<QuerySpec> = qpoints
        .iter()
        .zip(&truth)
        .map(|(q, t)| QuerySpec {
            index: 0,
            point: mapper.map(q.as_slice()).into_vec(),
            radius: t[KNN_K - 1].1 * 1.5,
            truth: t.iter().map(|&(id, _)| id).collect(),
        })
        .collect();

    let objects = Arc::new(data.objects.clone());
    let qp = Arc::new(qpoints);
    let oracle: Arc<dyn QueryDistance> = Arc::new(move |qid: QueryId, obj: ObjectId| {
        L2::new().distance(
            qp[qid as usize].as_slice(),
            objects[obj.0 as usize].as_slice(),
        )
    });
    let mut system = SearchSystem::build(
        SystemConfig {
            n_nodes: N_NODES,
            seed: SEED,
            knn_k: KNN_K,
            ..SystemConfig::default()
        },
        &[IndexSpec {
            name: "micro".into(),
            // Sample-derived boundary (§3.1 route 2): tight around the
            // data, so the grid's key resolution is spent where entries
            // actually live — this is what lets the ring-key span carve
            // deep into each store.
            boundary: boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.05).dims,
            points,
            rotate: true,
            rotation: None,
        }],
        oracle,
    );

    let start = std::time::Instant::now();
    let outcomes = system.run_queries(&queries, 5.0);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let mean_recall = outcomes.iter().map(|o| o.recall).sum::<f64>() / outcomes.len().max(1) as f64;
    let tel = system.telemetry().lock();
    MicroCounters {
        queries: outcomes.len(),
        scanned: tel.registry.counter("store.entries_scanned"),
        skipped: tel.registry.counter("store.entries_skipped"),
        dist_calls: tel.registry.counter("search.refine.dist_calls"),
        pruned: tel.registry.counter("search.refine.pruned"),
        mean_recall,
        elapsed_ms,
    }
}

/// One side of the cache A/B comparison: aggregate network cost of the
/// hot query batch with the routing-plane optimization layer off or on.
#[derive(Clone, Copy, Debug)]
pub struct CacheSide {
    /// Wire messages delivered over the whole run.
    pub messages: u64,
    /// Wire bytes delivered over the whole run.
    pub bytes: u64,
    /// Mean routing hops per query.
    pub hops_per_query: f64,
    /// Mean recall against the brute-force range oracle.
    pub mean_recall: f64,
    /// Result-cache hits (zero on the base side by construction).
    pub cache_hits: u64,
    /// Coalesced sub-query batches (zero on the base side).
    pub coalesced: u64,
}

/// The cache A/B scenario's counters: the same deterministic hot
/// workload (four query points re-issued round-robin from four fixed
/// origins) run twice, `routing_opt` off vs. on. All counters are
/// deterministic, so the bench-smoke gate can hold the optimized side
/// to hard floors and ceilings.
#[derive(Clone, Copy, Debug)]
pub struct CacheCounters {
    /// Queries answered per side.
    pub queries: usize,
    /// The `routing_opt: None` run.
    pub base: CacheSide,
    /// The `routing_opt: Some(default)` run.
    pub opt: CacheSide,
}

impl CacheCounters {
    /// Total-message reduction factor of the optimization layer.
    pub fn message_reduction(&self) -> f64 {
        self.base.messages as f64 / self.opt.messages.max(1) as f64
    }
}

impl ToJson for CacheCounters {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "queries": self.queries as u64,
            "messages_base": self.base.messages,
            "messages_opt": self.opt.messages,
            "message_reduction": self.message_reduction(),
            "bytes_base": self.base.bytes,
            "bytes_opt": self.opt.bytes,
            "hops_per_query_base": self.base.hops_per_query,
            "hops_per_query_opt": self.opt.hops_per_query,
            "cache_hits": self.opt.cache_hits,
            "batch_coalesced": self.opt.coalesced,
            "mean_recall_base": self.base.mean_recall,
            "mean_recall_opt": self.opt.mean_recall,
        })
    }
}

/// Run the hot-workload cache A/B scenario and collect its counters.
///
/// `quick` shrinks the dataset and the number of repeat rounds (the CI
/// smoke size); the full size is what `BENCH_micro.json` records.
pub fn run_cache_scenario(quick: bool) -> CacheCounters {
    const N_BASE: usize = 4;
    const ORIGINS: [usize; N_BASE] = [5, 17, 29, 41];
    let (n_objects, rounds) = if quick { (1_000, 4) } else { (2_000, 6) };

    let data = ClusteredVectors::generate(
        ClusteredParams {
            dims: 12,
            clusters: 5,
            deviation: 9.0,
            n_objects,
            ..ClusteredParams::default()
        },
        SEED,
    );
    let metric = L2::bounded(12, 0.0, 100.0);
    let mut rng = SimRng::new(SEED);
    let sample: Vec<Vec<f32>> = rng
        .sample_indices(data.objects.len(), 250)
        .into_iter()
        .map(|i| data.objects[i].clone())
        .collect();
    let landmarks = kmeans::<_, [f32], _>(&metric, &sample, K_LANDMARKS, 10, &mut rng);
    let mapper = Mapper::new(metric, landmarks);
    let points = mapper.map_all::<[f32], _>(&data.objects);

    let base_q = data.queries(N_BASE, SEED ^ 0x7C);
    let radius = 0.05 * data.max_distance();
    let qpoints: Vec<Vec<f32>> = (0..N_BASE * rounds)
        .map(|i| base_q[i % N_BASE].clone())
        .collect();
    let queries: Vec<QuerySpec> = qpoints
        .iter()
        .map(|q| QuerySpec {
            index: 0,
            point: mapper.map(q.as_slice()).into_vec(),
            radius,
            truth: data
                .objects
                .iter()
                .enumerate()
                .filter(|(_, o)| L2::new().distance(q.as_slice(), o.as_slice()) <= radius)
                .map(|(i, _)| ObjectId(i as u32))
                .collect(),
        })
        .collect();

    let objects = Arc::new(data.objects.clone());
    let qp = Arc::new(qpoints);
    let oracle: Arc<dyn QueryDistance> = Arc::new(move |qid: QueryId, obj: ObjectId| {
        L2::new().distance(
            qp[qid as usize].as_slice(),
            objects[obj.0 as usize].as_slice(),
        )
    });
    let boundary = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.05).dims;

    let run = |opt: Option<RoutingOptConfig>| -> CacheSide {
        let mut system = SearchSystem::build(
            SystemConfig {
                n_nodes: N_NODES,
                seed: SEED,
                // Per-node answers must not truncate away range results.
                knn_k: 200,
                routing_opt: opt,
                ..SystemConfig::default()
            },
            &[IndexSpec {
                name: "cache".into(),
                boundary: boundary.clone(),
                points: points.clone(),
                rotate: true,
                rotation: None,
            }],
            oracle.clone(),
        );
        let outcomes = system.run_queries_from(&queries, &ORIGINS, 5.0);
        let n = outcomes.len().max(1) as f64;
        let net = system.net_stats();
        let tel = system.telemetry().lock();
        CacheSide {
            messages: net.messages,
            bytes: net.bytes,
            hops_per_query: outcomes.iter().map(|o| o.hops as f64).sum::<f64>() / n,
            mean_recall: outcomes.iter().map(|o| o.recall).sum::<f64>() / n,
            cache_hits: tel.registry.counter("cache.hits"),
            coalesced: tel.registry.counter("batch.coalesced"),
        }
    };

    CacheCounters {
        queries: N_BASE * rounds,
        base: run(None),
        opt: run(Some(RoutingOptConfig::default())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_counters_are_deterministic() {
        let a = run_micro_scenario(true);
        let b = run_micro_scenario(true);
        assert_eq!(
            (a.scanned, a.skipped, a.dist_calls, a.pruned),
            (b.scanned, b.skipped, b.dist_calls, b.pruned)
        );
        assert_eq!(a.mean_recall, b.mean_recall);
    }

    #[test]
    fn quick_cache_scenario_beats_baseline_at_full_recall() {
        let c = run_cache_scenario(true);
        assert_eq!(c.base.mean_recall, 1.0);
        assert_eq!(c.opt.mean_recall, 1.0);
        assert!(
            c.opt.messages < c.base.messages,
            "opt {} vs base {} messages",
            c.opt.messages,
            c.base.messages
        );
        assert!(c.opt.hops_per_query < c.base.hops_per_query);
        assert!(c.opt.cache_hits > 0);
    }
}
