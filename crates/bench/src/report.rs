//! Result tables and persistence.

use std::io::Write;
use std::path::PathBuf;

use serde_json::{ToJson, Value};

/// One aggregated sweep point of an experiment series — the mean of the
/// paper's §4.1 cost metrics over the queries at that point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Series label, e.g. `KMean-10`.
    pub label: String,
    /// Query range factor (fraction of the maximum distance).
    pub range_factor: f64,
    /// Mean recall.
    pub recall: f64,
    /// Mean maximum path length.
    pub hops: f64,
    /// Mean time-to-first-result, ms.
    pub response_ms: f64,
    /// Mean time-to-last-result, ms.
    pub max_latency_ms: f64,
    /// Mean query-delivery bytes.
    pub query_bytes: f64,
    /// Mean result-delivery bytes.
    pub result_bytes: f64,
    /// Mean query-delivery messages.
    pub query_msgs: f64,
}

impl Row {
    /// Aggregate query outcomes into a row.
    pub fn from_outcomes(label: &str, range_factor: f64, os: &[simsearch::QueryOutcome]) -> Row {
        let n = os.len().max(1) as f64;
        Row {
            label: label.to_string(),
            range_factor,
            recall: os.iter().map(|o| o.recall).sum::<f64>() / n,
            hops: os.iter().map(|o| o.hops as f64).sum::<f64>() / n,
            response_ms: os.iter().map(|o| o.response_ms).sum::<f64>() / n,
            max_latency_ms: os.iter().map(|o| o.max_latency_ms).sum::<f64>() / n,
            query_bytes: os.iter().map(|o| o.query_bytes as f64).sum::<f64>() / n,
            result_bytes: os.iter().map(|o| o.result_bytes as f64).sum::<f64>() / n,
            query_msgs: os.iter().map(|o| o.query_msgs as f64).sum::<f64>() / n,
        }
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "label": self.label,
            "range_factor": self.range_factor,
            "recall": self.recall,
            "hops": self.hops,
            "response_ms": self.response_ms,
            "max_latency_ms": self.max_latency_ms,
            "query_bytes": self.query_bytes,
            "result_bytes": self.result_bytes,
            "query_msgs": self.query_msgs,
        })
    }
}

/// Print one metric of a series as a range-factor × label table (the
/// shape of the paper's figure panels).
pub fn print_series(title: &str, rows: &[Row], metric: impl Fn(&Row) -> f64) {
    let mut labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    labels.dedup();
    let mut labels_unique: Vec<&str> = Vec::new();
    for l in labels {
        if !labels_unique.contains(&l) {
            labels_unique.push(l);
        }
    }
    let mut factors: Vec<f64> = rows.iter().map(|r| r.range_factor).collect();
    factors.sort_by(|a, b| a.total_cmp(b));
    factors.dedup();

    println!("\n== {title} ==");
    print!("{:>10}", "range%");
    for l in &labels_unique {
        print!("{l:>14}");
    }
    println!();
    for f in &factors {
        print!("{:>10.2}", f * 100.0);
        for l in &labels_unique {
            let v = rows
                .iter()
                .find(|r| r.label == *l && r.range_factor == *f)
                .map(&metric);
            match v {
                Some(v) => print!("{v:>14.3}"),
                None => print!("{:>14}", "-"),
            }
        }
        println!();
    }
}

/// Print a load-distribution series (paper figures 4 and 6): nodes
/// sorted by decreasing load, plus summary numbers.
pub fn print_load_distribution(title: &str, series: &[(String, Vec<usize>)]) {
    println!("\n== {title} (nodes sorted by decreasing load) ==");
    for (label, loads) in series {
        let total: usize = loads.iter().sum();
        let nonzero = loads.iter().filter(|&&l| l > 0).count();
        let max = loads.first().copied().unwrap_or(0);
        let head: Vec<usize> = loads.iter().copied().take(12).collect();
        println!(
            "{label:>12}: max={max:>6} gini={:>5.3} nodes-with-load={nonzero:>5}/{:>5} total={total:>8} head={head:?}",
            simsearch::stats::gini(loads),
            loads.len()
        );
    }
}

/// Print the headline numbers of a telemetry snapshot (see
/// [`simsearch::SearchSystem::telemetry_snapshot`]): network totals, the
/// busiest counters, and a per-query one-liner each.
pub fn print_telemetry_summary(snapshot: &Value) {
    println!("\n== telemetry ==");
    let net = &snapshot["net"];
    println!(
        "net: {} messages, {} bytes, {} events",
        net["messages"].as_u64().unwrap_or(0),
        net["bytes"].as_u64().unwrap_or(0),
        net["events"].as_u64().unwrap_or(0),
    );
    if let Value::Object(counters) = &snapshot["registry"]["counters"] {
        for (name, v) in counters {
            if let Some(n) = v.as_u64() {
                println!("  {name:<28} {n:>12}");
            }
        }
    }
    if let Value::Object(queries) = &snapshot["queries"] {
        for (i, (qid, q)) in queries.iter().enumerate() {
            if i == 10 {
                println!("  ... {} more queries in the snapshot", queries.len() - 10);
                break;
            }
            println!(
                "  query {}: {} hops, {} splits, {} answers, {}+{} bytes, \
                 scanned {} matched {}",
                qid.parse::<u64>().unwrap_or(0),
                q["hops"].as_u64().unwrap_or(0),
                q["splits"].as_u64().unwrap_or(0),
                q["answers"].as_u64().unwrap_or(0),
                q["query_bytes"].as_u64().unwrap_or(0),
                q["result_bytes"].as_u64().unwrap_or(0),
                q["scanned"].as_u64().unwrap_or(0),
                q["matched"].as_u64().unwrap_or(0),
            );
        }
    }
}

/// Persist rows as JSON under `target/experiments/<name>.json` so
/// EXPERIMENTS.md entries are regenerable.
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) -> PathBuf {
    // Anchor at the workspace target dir regardless of the bench's cwd.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
    let dir = PathBuf::from(target).join("experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create json");
    let body = serde_json::to_string_pretty(value).expect("serialize");
    f.write_all(body.as_bytes()).expect("write json");
    println!("\n[saved {}]", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_aggregates_means() {
        let mk = |recall: f64, hops: u32| simsearch::QueryOutcome {
            qid: 0,
            origin: simnet::AgentId(0),
            hops,
            response_ms: 100.0,
            max_latency_ms: 200.0,
            query_bytes: 50,
            result_bytes: 30,
            query_msgs: 4,
            responses: 2,
            results: vec![],
            recall,
            degraded: false,
            completed: true,
        };
        let row = Row::from_outcomes("X", 0.05, &[mk(1.0, 4), mk(0.5, 8)]);
        assert_eq!(row.recall, 0.75);
        assert_eq!(row.hops, 6.0);
        assert_eq!(row.response_ms, 100.0);
        assert_eq!(row.query_bytes, 50.0);
        assert_eq!(row.label, "X");
    }

    #[test]
    fn save_json_writes_file() {
        let p = save_json("unit_test_report", &vec![1, 2, 3]);
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains('1'));
    }
}
