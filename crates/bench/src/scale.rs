//! Experiment sizing.
//!
//! `cargo bench` must finish in minutes, so the default scale shrinks
//! the population while keeping every shape parameter (dimensionality,
//! cluster count, landmark counts, query-range sweep) at the paper's
//! values. `SIMSEARCH_FULL=1` switches to the paper's full scale
//! (10^5 objects, 157k documents, 2000 queries, >1000 nodes);
//! `SIMSEARCH_SEED=n` changes the root seed.

/// Population sizes for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Overlay size.
    pub n_nodes: usize,
    /// Synthetic dataset size (paper: 100_000).
    pub n_objects: usize,
    /// Queries per sweep point (paper: 2000 total).
    pub n_queries: usize,
    /// Documents in the TREC-like corpus (paper: 157_021).
    pub corpus_docs: usize,
    /// Vocabulary of the TREC-like corpus (paper: 233_640).
    pub corpus_vocab: usize,
    /// Landmark-selection sample size (paper: 2000 synthetic / 3000 TREC).
    pub sample: usize,
    /// Lloyd iterations for k-means selection.
    pub kmeans_iters: usize,
    /// Root seed.
    pub seed: u64,
    /// True when running at full paper scale.
    pub full: bool,
}

impl Scale {
    /// The quick default used by `cargo bench`.
    pub fn quick() -> Scale {
        Scale {
            n_nodes: 256,
            n_objects: 20_000,
            n_queries: 200,
            corpus_docs: 12_000,
            corpus_vocab: 30_000,
            sample: 1_000,
            kmeans_iters: 12,
            seed: 42,
            full: false,
        }
    }

    /// The paper's scale.
    pub fn paper() -> Scale {
        Scale {
            n_nodes: 1_024,
            n_objects: 100_000,
            n_queries: 2_000,
            corpus_docs: 157_021,
            corpus_vocab: 233_640,
            sample: 2_000,
            kmeans_iters: 25,
            seed: 42,
            full: true,
        }
    }

    /// Resolve from the environment: `SIMSEARCH_FULL=1` selects the
    /// paper scale, `SIMSEARCH_SEED` overrides the seed.
    pub fn from_env() -> Scale {
        let mut s = if std::env::var("SIMSEARCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale::paper()
        } else {
            Scale::quick()
        };
        if let Ok(seed) = std::env::var("SIMSEARCH_SEED") {
            s.seed = seed.parse().expect("SIMSEARCH_SEED must be an integer");
        }
        s
    }
}

/// The paper's query-range-factor sweep: 0.1% to 20% of the maximum
/// theoretical distance.
pub const RANGE_FACTORS: &[f64] = &[0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.n_objects < p.n_objects);
        assert!(q.n_nodes < p.n_nodes);
        assert!(!q.full && p.full);
    }

    #[test]
    fn sweep_covers_paper_range() {
        assert_eq!(*RANGE_FACTORS.first().unwrap(), 0.001);
        assert_eq!(*RANGE_FACTORS.last().unwrap(), 0.20);
        assert!(RANGE_FACTORS.windows(2).all(|w| w[0] < w[1]));
    }
}
