//! The scaling-law scenario behind `BENCH_scale.json` and the CI
//! `scale-smoke` gate.
//!
//! One fixed dataset (clustered 12-d vectors, landmark-mapped once) is
//! published into overlays of growing size — 1k, 4k, 16k, and at
//! `SIMSEARCH_FULL=1` 64k and 100k nodes — and each overlay answers the
//! same two workloads:
//!
//! * **plain** — a batch of distinct range queries on a healthy overlay
//!   with the optimization layer off. Its `hops_per_query` is the
//!   scaling-law curve: Chord routes in O(log N), so the per-query hop
//!   count must grow no faster than `c · log2 N`. Recall against the
//!   exact oracle must be 1.0 — pruning is exact at any scale.
//! * **churn** — a hot workload (four query points re-issued round-robin
//!   from four fixed origins) under 5% message loss and two
//!   crash/restart pairs, with replicated publication (`r = 2`),
//!   retry/failover, and the routing-plane cache on. Recall must hold
//!   ≥ 0.99, and the shortcut/result cache must keep firing as N grows.
//!
//! Everything but the `timing` block (wall clock, peak RSS) is
//! deterministic in the seed, which is what the byte-compare
//! determinism test and the smoke thresholds rely on.

use std::sync::Arc;

use landmark::{boundary_from_sample, kmeans, Mapper};
use metric::{Dataset, Metric, ObjectId, L2};
use serde_json::{ToJson, Value};
use simnet::{AgentId, SimRng, SimTime};
use simsearch::{
    IndexSpec, QueryDistance, QueryId, QuerySpec, ResilienceConfig, RoutingOptConfig, SearchSystem,
    SystemConfig,
};
use workloads::{ground_truth, ClusteredParams, ClusteredVectors};

const K_LANDMARKS: usize = 5;
const KNN_K: usize = 10;
/// Hot-workload shape: four base query points, re-issued from four
/// fixed origins for this many rounds (cache hits need repetition).
const N_HOT_BASE: usize = 4;
const HOT_ROUNDS: usize = 8;
const HOT_ORIGINS: [usize; 4] = [5, 17, 29, 41];
/// Crash/restart pairs injected across the churn run's query span.
const CHURN_PAIRS: usize = 2;
/// Query interarrival (seconds of simulated time) for the churn
/// workload. The churn side must keep this spacing: with message loss
/// on, every cross-host send draws from the shared fault RNG stream, so
/// overlapping queries would reorder the draws and change the counters.
const INTERARRIVAL_S: f64 = 5.0;
/// Query interarrival for the plain workload. Plain queries are
/// independent — no faults (so no per-send RNG draws), no caches, no
/// cross-query state, and `SideStats` carries no time-derived fields —
/// so packing them closer changes *no* deterministic counter. It does
/// change how many events share a lookahead window, which is what lets
/// the parallel engine (`simnet::par`) fan the run out: at 5 s spacing
/// one query is in flight at a time and every window is near-empty.
const PLAIN_INTERARRIVAL_S: f64 = 0.08;

/// The dataset-side state shared by every sweep point: mapped points,
/// index boundary, both query workloads, and their distance oracles.
/// Building it once keeps the sweep's per-point cost purely overlay.
pub struct ScaleFixture {
    /// Objects published into every overlay.
    pub n_objects: usize,
    /// Landmark-space index boundary.
    pub boundary: Vec<(f64, f64)>,
    /// Landmark-mapped dataset (`ObjectId(i)` = row `i`).
    pub points: Vec<Vec<f64>>,
    /// The plain workload: distinct queries with exact top-k truth.
    pub plain_queries: Vec<QuerySpec>,
    /// The hot workload: `N_HOT_BASE` points × `HOT_ROUNDS` repeats.
    pub hot_queries: Vec<QuerySpec>,
    /// True-distance oracle for the plain workload's qid space.
    pub plain_oracle: Arc<dyn QueryDistance>,
    /// True-distance oracle for the hot workload's qid space.
    pub hot_oracle: Arc<dyn QueryDistance>,
}

impl ScaleFixture {
    /// Generate the dataset, select landmarks, map everything, and
    /// compute exact ground truth. `n_queries` sizes the plain batch.
    pub fn build(n_objects: usize, n_queries: usize, seed: u64) -> ScaleFixture {
        let data = ClusteredVectors::generate(
            ClusteredParams {
                dims: 12,
                clusters: 5,
                deviation: 9.0,
                n_objects,
                ..ClusteredParams::default()
            },
            seed,
        );
        let metric = L2::bounded(12, 0.0, 100.0);
        let mut rng = SimRng::new(seed);
        let sample: Vec<Vec<f32>> = rng
            .sample_indices(data.objects.len(), 250)
            .into_iter()
            .map(|i| data.objects[i].clone())
            .collect();
        let landmarks = kmeans::<_, [f32], _>(&metric, &sample, K_LANDMARKS, 10, &mut rng);
        let mapper = Mapper::new(metric, landmarks);
        let points = mapper.map_all::<[f32], _>(&data.objects);
        let boundary = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.05).dims;

        let dataset = Dataset::new(data.objects.clone());
        // Truth is the exact top-k; the radius is padded past the k-th
        // distance so recall 1.0 is achievable and non-answers exercise
        // refinement, exactly as in the micro scenario.
        let to_specs = |qpoints: &[Vec<f32>]| -> Vec<QuerySpec> {
            let truth =
                ground_truth::knn_batch::<_, [f32], _>(&L2::new(), &dataset, qpoints, KNN_K);
            qpoints
                .iter()
                .zip(&truth)
                .map(|(q, t)| QuerySpec {
                    index: 0,
                    point: mapper.map(q.as_slice()).into_vec(),
                    radius: t[KNN_K - 1].1 * 1.5,
                    truth: t.iter().map(|&(id, _)| id).collect(),
                })
                .collect()
        };

        let plain_points = data.queries(n_queries, seed ^ 0x51);
        let plain_queries = to_specs(&plain_points);

        // The hot workload is a *range* workload (micro cache-scenario
        // shape): a real radius — 5% of the theoretical maximum — whose
        // truth is every object in range. Range arcs are wide enough
        // for the result-cache fill to complete and for the learned
        // shortcuts to keep paying off at every overlay size; this is
        // also the "range recall under churn" curve.
        let hot_base = data.queries(N_HOT_BASE, seed ^ 0x7C);
        let hot_radius = 0.05 * data.max_distance();
        let hot_points: Vec<Vec<f32>> = (0..N_HOT_BASE * HOT_ROUNDS)
            .map(|i| hot_base[i % N_HOT_BASE].clone())
            .collect();
        let hot_queries: Vec<QuerySpec> = hot_points
            .iter()
            .map(|q| QuerySpec {
                index: 0,
                point: mapper.map(q.as_slice()).into_vec(),
                radius: hot_radius,
                truth: data
                    .objects
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| L2::new().distance(q.as_slice(), o.as_slice()) <= hot_radius)
                    .map(|(i, _)| ObjectId(i as u32))
                    .collect(),
            })
            .collect();

        let objects = Arc::new(data.objects);
        let mk_oracle = |qp: Vec<Vec<f32>>| -> Arc<dyn QueryDistance> {
            let objects = objects.clone();
            let qp = Arc::new(qp);
            Arc::new(move |qid: QueryId, obj: ObjectId| {
                L2::new().distance(
                    qp[qid as usize].as_slice(),
                    objects[obj.0 as usize].as_slice(),
                )
            })
        };
        let plain_oracle = mk_oracle(plain_points);
        let hot_oracle = mk_oracle(hot_points);

        ScaleFixture {
            n_objects,
            boundary,
            points,
            plain_queries,
            hot_queries,
            plain_oracle,
            hot_oracle,
        }
    }

    /// The quick fixture used by the smoke gate and the determinism
    /// test; the full fixture is what `BENCH_scale.json` records.
    pub fn quick(seed: u64) -> ScaleFixture {
        ScaleFixture::build(4_000, 24, seed)
    }

    /// The full fixture behind the checked-in artifact.
    pub fn full(seed: u64) -> ScaleFixture {
        ScaleFixture::build(20_000, 48, seed)
    }
}

/// Deterministic counters of one workload run at one overlay size.
#[derive(Clone, Copy, Debug)]
pub struct SideStats {
    /// Queries answered.
    pub queries: usize,
    /// Mean routing hops per query.
    pub hops_per_query: f64,
    /// Mean recall against the exact oracle.
    pub mean_recall: f64,
    /// Wire messages delivered over the run.
    pub messages: u64,
    /// Wire bytes delivered over the run.
    pub bytes: u64,
    /// Result-cache hits (zero on the plain side by construction).
    pub cache_hits: u64,
}

impl SideStats {
    /// Cache hits per issued query.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / self.queries.max(1) as f64
    }
}

impl ToJson for SideStats {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "queries": self.queries as u64,
            "hops_per_query": self.hops_per_query,
            "mean_recall": self.mean_recall,
            "messages": self.messages,
            "bytes": self.bytes,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate(),
        })
    }
}

/// One thread-count setting's wall-clock measurement of a sweep point.
#[derive(Clone, Copy, Debug)]
pub struct ThreadTiming {
    /// Simulator worker threads (`simnet::Sim::set_threads`).
    pub threads: usize,
    /// Wall time of the run phase at this setting (second build + both
    /// query runs), ms.
    pub run_ms: f64,
    /// `run_ms` of the first (baseline) setting divided by this one.
    pub speedup: f64,
}

impl ToJson for ThreadTiming {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "threads": self.threads as u64,
            "run_ms": self.run_ms,
            "speedup": self.speedup,
        })
    }
}

/// One sweep point: both workloads at one overlay size, plus the
/// (non-deterministic) wall-clock and memory measurements.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Overlay size.
    pub n_nodes: usize,
    /// The healthy, optimization-off scaling-law run.
    pub plain: SideStats,
    /// The loss + crash/restart + cache run.
    pub churn: SideStats,
    /// Wall time to build the plain system (instant ring, publication).
    pub build_ms: f64,
    /// Wall time of everything else (second build + both query runs) at
    /// the first requested thread setting.
    pub run_ms: f64,
    /// Per-thread-setting run timings; one entry per requested setting,
    /// first entry the baseline (`speedup` = 1.0). The deterministic
    /// counters are asserted byte-identical across settings as the
    /// point is measured, so this is a pure wall-clock curve.
    pub thread_timings: Vec<ThreadTiming>,
    /// Process peak RSS after this point, kB (`VmHWM`; monotone).
    pub peak_rss_kb: u64,
}

impl ScalePoint {
    /// `log2` of the overlay size — the x-axis of every scaling curve.
    pub fn log2_n(&self) -> f64 {
        (self.n_nodes as f64).log2()
    }

    /// The seed-deterministic subset: everything except `timing`.
    /// Two regenerations of the same sweep point must serialize to
    /// byte-identical strings of this value.
    pub fn deterministic_json(&self) -> Value {
        serde_json::json!({
            "n_nodes": self.n_nodes as u64,
            "log2_n": self.log2_n(),
            "plain": self.plain,
            "churn": self.churn,
        })
    }
}

impl ToJson for ScalePoint {
    fn to_json(&self) -> Value {
        let mut v = self.deterministic_json();
        if let Value::Object(map) = &mut v {
            map.insert(
                "timing".into(),
                serde_json::json!({
                    "build_ms": self.build_ms,
                    "run_ms": self.run_ms,
                    "peak_rss_kb": self.peak_rss_kb,
                    "threads": self
                        .thread_timings
                        .iter()
                        .map(|t| t.to_json())
                        .collect::<Vec<_>>(),
                }),
            );
        }
        v
    }
}

/// Process peak resident set (`VmHWM`) in kB; 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Inject `CHURN_PAIRS` crash/restart pairs across the hot workload's
/// span. Victims are deterministic ring positions that are neither a
/// query origin (it holds merge state) nor ring-adjacent to another
/// victim (adjacent victims could take an owner and its `r = 2` replica
/// holder down together).
fn schedule_hot_churn(system: &mut SearchSystem, origins: &[usize], span_s: f64) {
    let origin_addrs: Vec<AgentId> = origins.iter().map(|&o| AgentId(o)).collect();
    let ring: Vec<AgentId> = system.ring().nodes().iter().map(|n| n.addr).collect();
    let n = ring.len();
    let mut victims: Vec<usize> = Vec::new();
    for (pos, addr) in ring.iter().enumerate() {
        if victims.len() == CHURN_PAIRS {
            break;
        }
        let adjacent = victims
            .iter()
            .any(|&v| (pos + n - v) % n <= 1 || (v + n - pos) % n <= 1);
        if !origin_addrs.contains(addr) && !adjacent {
            victims.push(pos);
        }
    }
    assert_eq!(
        victims.len(),
        CHURN_PAIRS,
        "ring too small for churn victims"
    );
    for (i, &pos) in victims.iter().enumerate() {
        let t0 = span_s * (i as f64 + 0.5) / (CHURN_PAIRS as f64 + 1.0);
        system.schedule_crash(SimTime::from_secs_f64(t0), ring[pos]);
        system.schedule_restart(SimTime::from_secs_f64(t0 + 0.25 * span_s), ring[pos]);
    }
}

fn side_stats(
    system: &mut SearchSystem,
    queries: &[QuerySpec],
    origins: Option<&[usize]>,
    interarrival_s: f64,
) -> SideStats {
    let outcomes = match origins {
        Some(o) => system.run_queries_from(queries, o, interarrival_s),
        None => system.run_queries(queries, interarrival_s),
    };
    let n = outcomes.len().max(1) as f64;
    let net = system.net_stats();
    let tel = system.telemetry().lock();
    SideStats {
        queries: outcomes.len(),
        hops_per_query: outcomes.iter().map(|o| o.hops as f64).sum::<f64>() / n,
        mean_recall: outcomes.iter().map(|o| o.recall).sum::<f64>() / n,
        messages: net.messages,
        bytes: net.bytes,
        cache_hits: tel.registry.counter("cache.hits"),
    }
}

/// Run both workloads at one overlay size and collect the sweep point.
///
/// The plain system exercises the instant-ring builder and (above the
/// dense threshold) the coordinate topology; at 16k+ nodes this is the
/// path that must build and answer in seconds, not minutes.
///
/// `threads` lists the simulator thread settings to measure, first
/// entry the baseline (the report's `plain`/`churn` counters and
/// `run_ms`). Every further setting re-runs both workloads and must
/// reproduce the baseline's deterministic counters **byte-identically**
/// — the parallel engine's contract — or this panics; only wall clock
/// may differ, and the per-setting timings land in `thread_timings`.
/// Multi-setting runs start with one untimed warm-up pass so process
/// warm-up cost does not masquerade as a thread-count effect.
pub fn run_scale_point(
    fixture: &ScaleFixture,
    n_nodes: usize,
    seed: u64,
    threads: &[usize],
) -> ScalePoint {
    assert!(!threads.is_empty(), "need at least one thread setting");
    let spec = |name: &str| IndexSpec {
        name: name.into(),
        boundary: fixture.boundary.clone(),
        points: fixture.points.clone(),
        rotate: true,
        rotation: None,
    };

    let mut build_ms = 0.0;
    let mut baseline: Option<(SideStats, SideStats, String)> = None;
    let mut thread_timings: Vec<ThreadTiming> = Vec::new();
    // Comparative runs (more than one setting) prepend an untimed
    // warm-up pass at the baseline setting: the first workload a
    // process runs pays one-time costs — allocator arena growth, page
    // faults on a working set that reaches hundreds of MB at 100k
    // nodes — that every later setting skips, and that asymmetry can
    // dwarf the thread-count effect being measured.
    let mut settings: Vec<usize> = Vec::with_capacity(threads.len() + 1);
    if threads.len() > 1 {
        settings.push(threads[0]);
    }
    let n_warmup = settings.len();
    settings.extend_from_slice(threads);
    for (i, &n_threads) in settings.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let mut plain_sys = SearchSystem::build(
            SystemConfig {
                n_nodes,
                seed,
                knn_k: KNN_K,
                threads: n_threads,
                ..SystemConfig::default()
            },
            &[spec("scale-plain")],
            fixture.plain_oracle.clone(),
        );
        if i == n_warmup {
            build_ms = t0.elapsed().as_secs_f64() * 1e3;
        }

        let t1 = std::time::Instant::now();
        let plain = side_stats(
            &mut plain_sys,
            &fixture.plain_queries,
            None,
            PLAIN_INTERARRIVAL_S,
        );
        drop(plain_sys);

        let mut churn_sys = SearchSystem::build(
            SystemConfig {
                n_nodes,
                seed,
                // Per-node answers must not truncate away range results
                // before the origin-side merge (hot radii are small, but
                // crashes reroute to replica holders mid-query).
                knn_k: 200,
                resilience: Some(ResilienceConfig::default()),
                routing_opt: Some(RoutingOptConfig::default()),
                threads: n_threads,
                ..SystemConfig::default()
            },
            &[spec("scale-churn")],
            fixture.hot_oracle.clone(),
        );
        churn_sys.set_loss_rate(0.05);
        let span_s = INTERARRIVAL_S * fixture.hot_queries.len() as f64;
        schedule_hot_churn(&mut churn_sys, &HOT_ORIGINS, span_s);
        let churn = side_stats(
            &mut churn_sys,
            &fixture.hot_queries,
            Some(&HOT_ORIGINS),
            INTERARRIVAL_S,
        );
        let run_ms = t1.elapsed().as_secs_f64() * 1e3;
        if i < n_warmup {
            continue;
        }

        let det = serde_json::json!({"plain": plain, "churn": churn}).to_string();
        match &baseline {
            None => baseline = Some((plain, churn, det)),
            Some((_, _, base_det)) => assert!(
                *base_det == det,
                "deterministic counters diverged at {n_threads} threads \
                 (n={n_nodes}):\n{base_det}\nvs\n{det}"
            ),
        }
        let speedup = thread_timings.first().map_or(1.0, |b| b.run_ms / run_ms);
        thread_timings.push(ThreadTiming {
            threads: n_threads,
            run_ms,
            speedup,
        });
    }
    let (plain, churn, _) = baseline.expect("baseline recorded on first setting");
    ScalePoint {
        n_nodes,
        plain,
        churn,
        build_ms,
        run_ms: thread_timings[0].run_ms,
        thread_timings,
        peak_rss_kb: peak_rss_kb(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_point_holds_recall_at_small_n() {
        let fixture = ScaleFixture::build(1_500, 8, 0x5CA1E);
        // Two settings so the in-measurement cross-thread determinism
        // assertion is exercised on every `cargo test` run.
        let point = run_scale_point(&fixture, 64, 0x5CA1E, &[1, 2]);
        assert_eq!(point.plain.mean_recall, 1.0);
        assert!(
            point.churn.mean_recall >= 0.99,
            "churn recall {}",
            point.churn.mean_recall
        );
        assert!(point.plain.hops_per_query > 0.0);
        assert!(
            point.churn.cache_hits > 0,
            "hot workload never hit the cache"
        );
        assert!(point.peak_rss_kb > 0);
    }
}
