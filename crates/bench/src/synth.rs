//! The §4.2 synthetic-dataset experiment pipeline.
//!
//! One [`SynthSetup`] (dataset, query points, exact ground truth) is
//! shared by every configuration of a figure; [`run_synth`] then runs a
//! full query-range sweep for one landmark-selection configuration and
//! returns the aggregated series plus the final load distribution.

use std::sync::Arc;

use landmark::{boundary_from_metric, greedy, kmeans, Mapper, SelectionMethod};
use metric::{Metric, ObjectId, L2};
use rayon::prelude::*;
use simnet::SimRng;
use simsearch::{
    IndexSpec, LoadBalanceConfig, OverlayKind, QueryDistance, QueryId, QueryOutcome, QuerySpec,
    SearchSystem, SystemConfig,
};
use workloads::{ClusteredParams, ClusteredVectors};

use crate::report::Row;
use crate::scale::Scale;

/// Dataset, query points, and radius-independent exact top-10 ids.
pub struct SynthSetup {
    /// The Table 1 dataset (scaled population).
    pub dataset: ClusteredVectors,
    /// Query points, drawn from the same mixture.
    pub qpoints: Vec<Vec<f32>>,
    /// Exact 10-NN ids per query point.
    pub truth: Vec<Vec<ObjectId>>,
}

/// Generate dataset + queries + ground truth (the expensive shared part).
pub fn synth_setup(scale: &Scale) -> SynthSetup {
    let params = ClusteredParams {
        n_objects: scale.n_objects,
        ..ClusteredParams::default()
    };
    let dataset = ClusteredVectors::generate(params, scale.seed);
    let qpoints = dataset.queries(scale.n_queries, scale.seed ^ 0x0A11);
    let metric = L2::new();
    let objects = &dataset.objects;
    let truth: Vec<Vec<ObjectId>> = qpoints
        .par_iter()
        .map(|q| {
            let mut best: Vec<(ObjectId, f64)> = Vec::with_capacity(11);
            for (i, o) in objects.iter().enumerate() {
                let d = metric.distance(q.as_slice(), o.as_slice());
                let id = ObjectId(i as u32);
                let pos = best.partition_point(|&(bid, bd)| bd < d || (bd == d && bid < id));
                if pos < 10 {
                    best.insert(pos, (id, d));
                    best.truncate(10);
                }
            }
            best.into_iter().map(|(id, _)| id).collect()
        })
        .collect();
    SynthSetup {
        dataset,
        qpoints,
        truth,
    }
}

/// One configuration of the synthetic experiment.
#[derive(Clone, Debug)]
pub struct SynthRun {
    /// Landmark-selection method.
    pub method: SelectionMethod,
    /// Number of landmarks.
    pub k: usize,
    /// Dynamic load migration (figures 3/4) or none (figure 2).
    pub lb: Option<LoadBalanceConfig>,
    /// Naive routing baseline level (ablation).
    pub naive: Option<u32>,
    /// PNS candidates (16 = paper; 0 = plain Chord, ablation).
    pub pns: usize,
    /// Static rotation (multi-index ablation; single-index experiments
    /// leave it off as it only permutes placement).
    pub rotate: bool,
    /// DHT substrate (overlay ablation; default Chord).
    pub overlay: OverlayKind,
    /// Join-time balancing (node ids split the heaviest range).
    pub load_aware_join: bool,
    /// Retry/failover + replicated publication (churn scenarios).
    pub resilience: Option<simsearch::ResilienceConfig>,
    /// Routing-plane caching & sub-query batching (hot-workload runs).
    pub routing_opt: Option<simsearch::RoutingOptConfig>,
    /// Uniform message-drop probability applied to the query phase.
    pub loss: f64,
    /// Crash/restart pairs injected across the query phase.
    pub churn: usize,
}

impl SynthRun {
    /// The paper's plot label, e.g. `KMean-10`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.method, self.k)
    }

    /// Figure 2/3 configuration.
    pub fn new(method: SelectionMethod, k: usize, lb: Option<LoadBalanceConfig>) -> SynthRun {
        SynthRun {
            method,
            k,
            lb,
            naive: None,
            pns: 16,
            rotate: false,
            overlay: OverlayKind::Chord,
            load_aware_join: false,
            resilience: None,
            routing_opt: None,
            loss: 0.0,
            churn: 0,
        }
    }
}

/// Inject `pairs` crash/restart pairs, spread across the expected span of
/// an `n_queries`-query workload. Victims are picked deterministically:
/// never a query origin (it holds the query's merge state) and never
/// ring-adjacent to another victim (with `r = 2`, two adjacent nodes
/// down together would take an owner and its replica holder at once).
pub fn schedule_churn(
    system: &mut SearchSystem,
    n_queries: usize,
    mean_interarrival_s: f64,
    pairs: usize,
) {
    let origins: Vec<simnet::AgentId> = system
        .query_schedule(n_queries, mean_interarrival_s)
        .into_iter()
        .map(|(_, o)| o)
        .collect();
    let ring: Vec<simnet::AgentId> = system.ring().nodes().iter().map(|n| n.addr).collect();
    let n = ring.len();
    let mut victims: Vec<usize> = Vec::new();
    for (pos, addr) in ring.iter().enumerate() {
        if victims.len() == pairs {
            break;
        }
        let adjacent = victims
            .iter()
            .any(|&v| (pos + n - v) % n <= 1 || (v + n - pos) % n <= 1);
        if !origins.contains(addr) && !adjacent {
            victims.push(pos);
        }
    }
    assert_eq!(
        victims.len(),
        pairs,
        "ring too small for {pairs} non-adjacent churn victims"
    );
    let span = mean_interarrival_s * n_queries as f64;
    for (i, &pos) in victims.iter().enumerate() {
        let t0 = span * (i as f64 + 0.5) / (pairs as f64 + 1.0);
        system.schedule_crash(simnet::SimTime::from_secs_f64(t0), ring[pos]);
        system.schedule_restart(simnet::SimTime::from_secs_f64(t0 + 0.25 * span), ring[pos]);
    }
}

/// Select landmarks per the run's method from a sample of the dataset.
pub fn select_landmarks(
    setup: &SynthSetup,
    method: SelectionMethod,
    k: usize,
    scale: &Scale,
) -> Vec<Vec<f32>> {
    let mut rng = SimRng::new(scale.seed).fork(0x5E1E ^ k as u64);
    let sample_idx = rng.sample_indices(setup.dataset.objects.len(), scale.sample);
    let sample: Vec<Vec<f32>> = sample_idx
        .iter()
        .map(|&i| setup.dataset.objects[i].clone())
        .collect();
    let metric = L2::new();
    match method {
        SelectionMethod::Greedy => greedy::<_, [f32], _>(&metric, &sample, k, &mut rng),
        SelectionMethod::KMeans => {
            kmeans::<_, [f32], _>(&metric, &sample, k, scale.kmeans_iters, &mut rng)
        }
        SelectionMethod::KMedoids => {
            landmark::kmedoids::<_, [f32], _>(&metric, &sample, k, scale.kmeans_iters, &mut rng)
        }
    }
}

/// Build the system for one configuration and run the query-range sweep.
/// Returns `(series rows, load distribution)`.
pub fn run_synth(
    scale: &Scale,
    setup: &SynthSetup,
    run: &SynthRun,
    factors: &[f64],
) -> (Vec<Row>, Vec<usize>) {
    let (rows, loads, _system) = run_synth_system(scale, setup, run, factors);
    (rows, loads)
}

/// [`run_synth`], additionally returning the finished system so callers
/// can inspect run telemetry (snapshot, per-query plans).
pub fn run_synth_system(
    scale: &Scale,
    setup: &SynthSetup,
    run: &SynthRun,
    factors: &[f64],
) -> (Vec<Row>, Vec<usize>, SearchSystem) {
    let landmarks = select_landmarks(setup, run.method, run.k, scale);
    let metric = L2::bounded(100, 0.0, 100.0);
    let mapper = Mapper::new(metric, landmarks);
    let boundary = boundary_from_metric(&metric, run.k).expect("bounded metric");

    let points = mapper.map_all::<[f32], _>(&setup.dataset.objects);
    let qmapped = mapper.map_all::<[f32], _>(&setup.qpoints);

    let spec = IndexSpec {
        name: format!("synthetic-{}", run.label()),
        boundary: boundary.dims.clone(),
        points,
        rotate: run.rotate,
        rotation: None,
    };

    // One flat workload: qid = factor_index * n_queries + query_index.
    let nq = setup.qpoints.len();
    let max_d = setup.dataset.max_distance();
    let mut queries = Vec::with_capacity(nq * factors.len());
    for &f in factors {
        for (qi, qm) in qmapped.iter().enumerate() {
            queries.push(QuerySpec {
                index: 0,
                point: qm.clone(),
                radius: f * max_d,
                truth: setup.truth[qi].clone(),
            });
        }
    }

    let oracle_objects: Arc<Vec<Vec<f32>>> = Arc::new(setup.dataset.objects.clone());
    let oracle_queries: Arc<Vec<Vec<f32>>> = Arc::new(setup.qpoints.clone());
    let l2 = L2::new();
    let oracle: Arc<dyn QueryDistance> = Arc::new(move |qid: QueryId, obj: ObjectId| {
        let q = &oracle_queries[(qid as usize) % nq];
        l2.distance(q.as_slice(), oracle_objects[obj.0 as usize].as_slice())
    });

    let cfg = SystemConfig {
        n_nodes: scale.n_nodes,
        seed: scale.seed,
        naive_level: run.naive,
        pns_candidates: run.pns,
        lb: run.lb,
        overlay: run.overlay,
        load_aware_join: run.load_aware_join,
        resilience: run.resilience.clone(),
        routing_opt: run.routing_opt.clone(),
        ..SystemConfig::default()
    };
    let mut system = SearchSystem::build(cfg, &[spec], oracle);
    if run.loss > 0.0 {
        system.set_loss_rate(run.loss);
    }
    if run.churn > 0 {
        schedule_churn(&mut system, queries.len(), 150.0, run.churn);
    }
    let outcomes = system.run_queries(&queries, 150.0);

    let rows = group_rows(&run.label(), factors, nq, &outcomes);
    let loads = system.load_distribution(0);
    (rows, loads, system)
}

/// Aggregate flat outcomes back into per-factor rows.
pub fn group_rows(label: &str, factors: &[f64], nq: usize, outcomes: &[QueryOutcome]) -> Vec<Row> {
    factors
        .iter()
        .enumerate()
        .map(|(fi, &f)| {
            let slice = &outcomes[fi * nq..(fi + 1) * nq];
            Row::from_outcomes(label, f, slice)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RANGE_FACTORS;

    fn tiny_scale() -> Scale {
        Scale {
            n_nodes: 32,
            n_objects: 1_500,
            n_queries: 20,
            sample: 200,
            kmeans_iters: 6,
            ..Scale::quick()
        }
    }

    #[test]
    fn pipeline_runs_and_recall_increases_with_range() {
        let scale = tiny_scale();
        let setup = synth_setup(&scale);
        assert_eq!(setup.truth.len(), 20);
        assert!(setup.truth.iter().all(|t| t.len() == 10));
        let run = SynthRun::new(SelectionMethod::KMeans, 5, None);
        let (rows, loads) = run_synth(&scale, &setup, &run, RANGE_FACTORS);
        assert_eq!(rows.len(), RANGE_FACTORS.len());
        // Recall is monotone non-decreasing in the range factor (same
        // queries, larger search region) and reaches (near) 1 at 20%.
        for w in rows.windows(2) {
            assert!(
                w[1].recall >= w[0].recall - 0.05,
                "recall dropped: {} -> {}",
                w[0].recall,
                w[1].recall
            );
        }
        let last = rows.last().unwrap();
        assert!(last.recall > 0.9, "recall at 20%: {}", last.recall);
        // Entries conserved.
        assert_eq!(loads.iter().sum::<usize>(), 1_500);
        // Costs are positive once the range is non-trivial.
        assert!(last.query_bytes > 0.0);
        assert!(last.max_latency_ms >= last.response_ms);
    }

    #[test]
    fn greedy_and_kmeans_labels() {
        assert_eq!(
            SynthRun::new(SelectionMethod::Greedy, 10, None).label(),
            "Greedy-10"
        );
        assert_eq!(
            SynthRun::new(SelectionMethod::KMeans, 5, None).label(),
            "KMean-5"
        );
    }
}
