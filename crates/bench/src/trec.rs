//! The §4.3 text-retrieval experiment pipeline over the synthetic
//! TREC-like corpus: angular (cosine) metric, greedy vs k-means document
//! landmarks, boundary from the selection sample.

use std::sync::Arc;

use landmark::{boundary_from_sample, greedy, kmeans, Mapper, SelectionMethod};
use metric::{Angular, Metric, ObjectId, SparseVector};
use rayon::prelude::*;
use simnet::SimRng;
use simsearch::{
    IndexSpec, LoadBalanceConfig, QueryDistance, QueryId, QuerySpec, SearchSystem, SystemConfig,
};
use workloads::{Corpus, CorpusParams};

use crate::report::Row;
use crate::scale::Scale;
use crate::synth::group_rows;

/// Corpus plus per-topic exact ground truth.
pub struct TrecSetup {
    /// The generated corpus (documents + query topics).
    pub corpus: Corpus,
    /// Exact 10-NN document ids per query topic.
    pub truth: Vec<Vec<ObjectId>>,
}

/// Generate the corpus and its ground truth.
pub fn trec_setup(scale: &Scale) -> TrecSetup {
    let params = CorpusParams {
        n_docs: scale.corpus_docs,
        vocab: scale.corpus_vocab,
        ..if scale.full {
            CorpusParams::paper_scale()
        } else {
            CorpusParams::default()
        }
    };
    let corpus = Corpus::generate(params, scale.seed ^ 0x7EC);
    let metric = Angular::new();
    let docs = &corpus.docs;
    let truth: Vec<Vec<ObjectId>> = corpus
        .topics
        .par_iter()
        .map(|t| {
            let mut best: Vec<(ObjectId, f64)> = Vec::with_capacity(11);
            for (i, d) in docs.iter().enumerate() {
                let dist = metric.distance(t, d);
                let id = ObjectId(i as u32);
                let pos = best.partition_point(|&(bid, bd)| bd < dist || (bd == dist && bid < id));
                if pos < 10 {
                    best.insert(pos, (id, dist));
                    best.truncate(10);
                }
            }
            best.into_iter().map(|(id, _)| id).collect()
        })
        .collect();
    TrecSetup { corpus, truth }
}

/// Select document landmarks from a corpus sample.
pub fn select_doc_landmarks(
    setup: &TrecSetup,
    method: SelectionMethod,
    k: usize,
    scale: &Scale,
) -> Vec<SparseVector> {
    let mut rng = SimRng::new(scale.seed).fork(0x7EC5E1 ^ k as u64);
    let idx = rng.sample_indices(
        setup.corpus.docs.len(),
        scale.sample.min(setup.corpus.docs.len()),
    );
    let sample: Vec<SparseVector> = idx.iter().map(|&i| setup.corpus.docs[i].clone()).collect();
    let metric = Angular::new();
    match method {
        SelectionMethod::Greedy => greedy::<_, SparseVector, _>(&metric, &sample, k, &mut rng),
        SelectionMethod::KMeans => {
            kmeans::<_, SparseVector, _>(&metric, &sample, k, scale.kmeans_iters, &mut rng)
        }
        SelectionMethod::KMedoids => landmark::kmedoids::<_, SparseVector, _>(
            &metric,
            &sample,
            k,
            scale.kmeans_iters,
            &mut rng,
        ),
    }
}

/// Densified landmark for O(nnz(doc)) angle evaluation.
struct DenseLandmark {
    weights: Vec<f32>,
    norm: f64,
}

impl DenseLandmark {
    fn new(lm: &SparseVector, vocab: usize) -> DenseLandmark {
        let mut weights = vec![0.0f32; vocab];
        for &(t, w) in lm.terms() {
            weights[t as usize] = w;
        }
        DenseLandmark {
            weights,
            norm: lm.norm(),
        }
    }

    /// Angle to a sparse vector; must agree with [`Angular`]'s
    /// convention (zero vectors are orthogonal to everything).
    fn angle(&self, v: &SparseVector) -> f64 {
        if self.norm == 0.0 || v.norm() == 0.0 {
            if self.norm == 0.0 && v.norm() == 0.0 {
                return 0.0;
            }
            return std::f64::consts::FRAC_PI_2;
        }
        let mut dot = 0.0f64;
        for &(t, w) in v.terms() {
            dot += w as f64 * self.weights[t as usize] as f64;
        }
        (dot / (self.norm * v.norm())).clamp(-1.0, 1.0).acos()
    }
}

/// Map every document to its landmark-distance point (parallel; dense
/// landmark arrays make one mapping O(nnz(doc) · k)).
pub fn map_docs(docs: &[SparseVector], landmarks: &[SparseVector], vocab: usize) -> Vec<Vec<f64>> {
    let dense: Vec<DenseLandmark> = landmarks
        .iter()
        .map(|l| DenseLandmark::new(l, vocab))
        .collect();
    docs.par_iter()
        .map(|d| dense.iter().map(|l| l.angle(d)).collect())
        .collect()
}

/// Run the §4.3 sweep for one landmark method. Returns the series rows
/// and the load distribution (figure 6).
pub fn run_trec(
    scale: &Scale,
    setup: &TrecSetup,
    method: SelectionMethod,
    k: usize,
    lb: Option<LoadBalanceConfig>,
    factors: &[f64],
) -> (Vec<Row>, Vec<usize>) {
    let label = format!("{method}-{k}");
    let landmarks = select_doc_landmarks(setup, method, k, scale);
    let vocab = setup.corpus.params.vocab;
    let points = map_docs(&setup.corpus.docs, &landmarks, vocab);
    let qmapped = map_docs(&setup.corpus.topics, &landmarks, vocab);

    // Boundary from the landmark-selection procedure (paper §3.1 route
    // 2): min/max mapped coordinates of the selection sample, with a
    // small margin; out-of-range points clamp onto the boundary.
    let mut rng = SimRng::new(scale.seed).fork(0xB0);
    let idx = rng.sample_indices(
        setup.corpus.docs.len(),
        scale.sample.min(setup.corpus.docs.len()),
    );
    let sample: Vec<SparseVector> = idx.iter().map(|&i| setup.corpus.docs[i].clone()).collect();
    let mapper = Mapper::new(Angular::new(), landmarks.clone());
    let boundary = boundary_from_sample::<_, SparseVector, _>(&mapper, &sample, 0.01);

    let spec = IndexSpec {
        name: format!("trec-{label}"),
        boundary: boundary.dims.clone(),
        points,
        rotate: false,
        rotation: None,
    };

    // Workload: topics repeated round-robin (paper: 50 topics × 40 =
    // 2000 queries), swept over range factors; radius = factor × π/2
    // (the maximum angular distance).
    let nq = scale.n_queries;
    let n_topics = setup.corpus.topics.len();
    let max_d = std::f64::consts::FRAC_PI_2;
    let mut queries = Vec::with_capacity(nq * factors.len());
    for &f in factors {
        for qi in 0..nq {
            let topic = qi % n_topics;
            queries.push(QuerySpec {
                index: 0,
                point: qmapped[topic].clone(),
                radius: f * max_d,
                truth: setup.truth[topic].clone(),
            });
        }
    }

    let oracle_docs: Arc<Vec<SparseVector>> = Arc::new(setup.corpus.docs.clone());
    let oracle_topics: Arc<Vec<SparseVector>> = Arc::new(setup.corpus.topics.clone());
    let metric = Angular::new();
    let oracle: Arc<dyn QueryDistance> = Arc::new(move |qid: QueryId, obj: ObjectId| {
        let topic = &oracle_topics[(qid as usize % nq) % n_topics];
        metric.distance(topic, &oracle_docs[obj.0 as usize])
    });

    let cfg = SystemConfig {
        n_nodes: scale.n_nodes,
        seed: scale.seed,
        lb,
        ..SystemConfig::default()
    };
    let mut system = SearchSystem::build(cfg, &[spec], oracle);
    let outcomes = system.run_queries(&queries, 150.0);
    let rows = group_rows(&label, factors, nq, &outcomes);
    (rows, system.load_distribution(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            n_nodes: 24,
            n_queries: 20,
            corpus_docs: 1_200,
            corpus_vocab: 8_000,
            sample: 200,
            kmeans_iters: 5,
            ..Scale::quick()
        }
    }

    #[test]
    fn dense_landmark_matches_sparse_metric() {
        let scale = tiny_scale();
        let setup = trec_setup(&scale);
        let lms = select_doc_landmarks(&setup, SelectionMethod::KMeans, 4, &scale);
        let m = Angular::new();
        for lm in &lms {
            let dense = DenseLandmark::new(lm, scale.corpus_vocab);
            for d in setup.corpus.docs.iter().step_by(211) {
                let a = dense.angle(d);
                let b = m.distance(lm, d);
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn trec_pipeline_runs() {
        let scale = tiny_scale();
        let setup = trec_setup(&scale);
        assert_eq!(setup.truth.len(), 50);
        let (rows, loads) = run_trec(
            &scale,
            &setup,
            SelectionMethod::KMeans,
            6,
            None,
            &[0.02, 0.10, 0.20],
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(loads.iter().sum::<usize>(), 1_200);
        // Recall grows with range.
        assert!(rows[2].recall >= rows[0].recall - 0.05);
    }

    #[test]
    fn greedy_landmarks_pile_docs_near_boundary() {
        // The paper's central TREC observation: with greedy (sparse
        // document) landmarks, a large share of documents sit at or near
        // the maximum distance to *every* landmark, mapping to a thin
        // shell near the index-space upper boundary.
        let scale = tiny_scale();
        let setup = trec_setup(&scale);
        let greedy_lms = select_doc_landmarks(&setup, SelectionMethod::Greedy, 6, &scale);
        let kmean_lms = select_doc_landmarks(&setup, SelectionMethod::KMeans, 6, &scale);
        let vocab = scale.corpus_vocab;
        let near_max_frac = |lms: &[SparseVector]| {
            let pts = map_docs(&setup.corpus.docs, lms, vocab);
            let max = std::f64::consts::FRAC_PI_2;
            let near = pts
                .iter()
                .filter(|p| p.iter().all(|&x| x > max * 0.97))
                .count();
            near as f64 / pts.len() as f64
        };
        let g = near_max_frac(&greedy_lms);
        let k = near_max_frac(&kmean_lms);
        assert!(
            g > k,
            "greedy should pile more docs near the boundary: greedy {g:.3} vs kmeans {k:.3}"
        );
        assert!(g > 0.2, "greedy boundary shell too thin: {g:.3}");
    }
}
