//! Two independent regenerations of a capacity sweep must serialize
//! byte-identically.
//!
//! This pins the whole sustained-load stack at once: the pre-drawn
//! operation plan (arrival gaps, Zipf pool picks, origins), the
//! finite-capacity serve-slot order, the retransmit/failover timers of
//! the fault scenario, the latency ledger's exactly-once accounting,
//! and the capacity ladder's probe sequence — everything except the
//! wall-clock/RSS `timing` block, which is excluded from
//! `deterministic_json` by construction. A short ladder (one doubling,
//! one refinement) keeps the double regeneration cheap while still
//! serializing every field the checked-in `BENCH_load.json` carries.

use bench::load_report::{run_load_report, LoadFixture};

#[test]
fn capacity_sweep_regenerates_byte_identically() {
    let regenerate = || {
        let fixture = LoadFixture::quick(0x10AD5EED);
        let report = run_load_report(&fixture, 64, 6.0, 10.0, 1, 1, 0x10AD5EED);
        serde_json::to_string_pretty(&report.deterministic_json()).expect("serialize")
    };
    let a = regenerate();
    let b = regenerate();
    assert!(
        a == b,
        "two capacity-sweep regenerations diverged:\n{a}\nvs\n{b}"
    );
}
