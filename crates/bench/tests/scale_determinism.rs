//! Two independent regenerations of a 4k-node sweep point must
//! serialize byte-identically.
//!
//! The 4096-node overlay sits above the dense-topology threshold, so
//! this pins the whole large-N stack at once: the coordinate topology's
//! on-demand RTTs, the parallel instant-ring builder (whose rayon
//! chunking must not leak into results), the calendar event queue's pop
//! order, and both workloads' full counter sets — everything except the
//! wall-clock/RSS `timing` block, which is excluded from
//! `deterministic_json` by construction.

use bench::scale_report::{run_scale_point, ScaleFixture};

#[test]
fn sweep_point_at_4k_regenerates_byte_identically() {
    let regenerate = || {
        let fixture = ScaleFixture::quick(0x5CA1E);
        let point = run_scale_point(&fixture, 4096, 0x5CA1E, &[1]);
        serde_json::to_string_pretty(&point.deterministic_json()).expect("serialize")
    };
    let a = regenerate();
    let b = regenerate();
    assert!(
        a == b,
        "two 4k-node sweep regenerations diverged:\n{a}\nvs\n{b}"
    );
}
