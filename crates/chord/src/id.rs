//! Identifier-circle arithmetic.
//!
//! Chord identifiers live on a circle of `2^64` points; all interval
//! tests wrap. The conventions below follow the Chord paper: a node owns
//! the keys in `(predecessor, me]`, and `successor(k)` is the first node
//! whose identifier equals or follows `k` clockwise.

use simnet::AgentId;

/// A 64-bit Chord identifier (node id or key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChordId(pub u64);

impl ChordId {
    /// Clockwise distance from `self` to `to` (0 when equal).
    #[inline]
    pub fn cw_dist(self, to: ChordId) -> u64 {
        to.0.wrapping_sub(self.0)
    }

    /// `self ∈ (a, b)` on the circle. When `a == b` the open interval is
    /// the whole circle minus `a` (the Chord convention).
    #[inline]
    pub fn in_open(self, a: ChordId, b: ChordId) -> bool {
        if a == b {
            self != a
        } else {
            a.cw_dist(self) > 0 && a.cw_dist(self) < a.cw_dist(b)
        }
    }

    /// `self ∈ (a, b]` on the circle. When `a == b` this is the whole
    /// circle (every key is in `(n, n]` — a lone node owns everything).
    #[inline]
    pub fn in_half_open(self, a: ChordId, b: ChordId) -> bool {
        if a == b {
            true
        } else {
            a.cw_dist(self) > 0 && a.cw_dist(self) <= a.cw_dist(b)
        }
    }

    /// The identifier `2^i` past this one (finger `i`'s interval start).
    #[inline]
    pub fn finger_start(self, i: u32) -> ChordId {
        debug_assert!(i < 64);
        ChordId(self.0.wrapping_add(1u64 << i))
    }
}

impl std::fmt::Debug for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Display for ChordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A node as seen by other nodes: its ring identifier plus its network
/// address (the simulation agent id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeRef {
    /// Position on the identifier circle.
    pub id: ChordId,
    /// Network address.
    pub addr: AgentId,
}

impl NodeRef {
    /// Convenience constructor.
    pub fn new(id: u64, addr: usize) -> NodeRef {
        NodeRef {
            id: ChordId(id),
            addr: AgentId(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ChordId = ChordId(100);
    const B: ChordId = ChordId(200);

    #[test]
    fn cw_dist_wraps() {
        assert_eq!(A.cw_dist(B), 100);
        assert_eq!(B.cw_dist(A), u64::MAX - 100 + 1);
        assert_eq!(A.cw_dist(A), 0);
    }

    #[test]
    fn open_interval() {
        assert!(ChordId(150).in_open(A, B));
        assert!(!ChordId(100).in_open(A, B));
        assert!(!ChordId(200).in_open(A, B));
        assert!(!ChordId(250).in_open(A, B));
        // Wrapping interval (200, 100).
        assert!(ChordId(50).in_open(B, A));
        assert!(ChordId(u64::MAX).in_open(B, A));
        assert!(!ChordId(150).in_open(B, A));
        // Degenerate (a, a): everything but a.
        assert!(ChordId(5).in_open(A, A));
        assert!(!A.in_open(A, A));
    }

    #[test]
    fn half_open_interval() {
        assert!(ChordId(200).in_half_open(A, B));
        assert!(!ChordId(100).in_half_open(A, B));
        assert!(ChordId(150).in_half_open(A, B));
        assert!(!ChordId(201).in_half_open(A, B));
        // Degenerate (a, a]: the whole circle.
        assert!(ChordId(5).in_half_open(A, A));
        assert!(A.in_half_open(A, A));
    }

    #[test]
    fn finger_starts() {
        let n = ChordId(0);
        assert_eq!(n.finger_start(0), ChordId(1));
        assert_eq!(n.finger_start(3), ChordId(8));
        assert_eq!(n.finger_start(63), ChordId(1 << 63));
        // Wrapping.
        let n = ChordId(u64::MAX);
        assert_eq!(n.finger_start(0), ChordId(0));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", ChordId(0xAB)), "00000000000000ab");
    }
}
