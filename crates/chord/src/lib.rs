//! # chord — the Chord DHT substrate
//!
//! The paper builds its index architecture on **Chord with proximity
//! neighbor selection** (Chord-PNS, base 2, 16 successors, 64-bit
//! identifiers) as simulated by p2psim. This crate reimplements that
//! substrate:
//!
//! * [`id`] — identifier-circle arithmetic (wrapping intervals, clockwise
//!   distance);
//! * [`table`] — per-node routing state: finger table, successor list,
//!   predecessor, and the *next hop* rule the index layer routes with
//!   (the table entry closest-preceding a key, per the paper's
//!   footnote 4);
//! * [`ring`] — the [`ring::OracleRing`]: global knowledge of the
//!   membership, used to (a) verify protocol convergence in tests and
//!   (b) build already-stabilized routing tables (with PNS against a
//!   latency topology) so experiments start from the steady state the
//!   paper measures after "system stabilization";
//! * [`protocol`] — the live join / stabilize / fix-fingers / lookup
//!   protocol over [`simnet`], for protocol-level tests and the PNS
//!   ablation.

pub mod id;
pub mod protocol;
pub mod ring;
pub mod table;

pub use id::{ChordId, NodeRef};
pub use ring::OracleRing;
pub use table::{RouteDecision, RoutingTable};
