//! The live Chord protocol as a sans-io [`sansio::Protocol`]: recursive
//! lookups, joins, stabilization, finger repair, and proximity neighbor
//! selection. A thin [`simnet::Agent`] adapter at the bottom drives the
//! same state machine under the deterministic simulator.
//!
//! The index experiments start from pre-stabilized tables (see
//! [`crate::ring`]); this module exists to *justify* that shortcut — the
//! protocol tests drive real joins and assert convergence to exactly the
//! oracle invariants — and to power the PNS/lookup ablations.

use std::collections::HashMap;

use sansio::{Input, ProtoCtx, Protocol};
use simnet::telemetry::SharedRegistry;
use simnet::{AgentId, SimDuration, SimTime, TimerTag};

use crate::id::{ChordId, NodeRef};
use crate::table::{RouteDecision, RoutingTable, FINGER_ROWS};

/// Protocol parameters (defaults follow the paper's p2psim setup).
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length (paper: 16).
    pub n_successors: usize,
    /// Stabilization period.
    pub stabilize_every: SimDuration,
    /// Finger-repair period; each tick repairs [`Self::fingers_per_tick`] rows.
    pub fix_fingers_every: SimDuration,
    /// Finger rows refreshed per repair tick.
    pub fingers_per_tick: usize,
    /// PNS candidate-set size; 0 disables PNS (plain Chord).
    pub pns_candidates: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            n_successors: 16,
            stabilize_every: SimDuration::from_secs(1),
            fix_fingers_every: SimDuration::from_secs(1),
            fingers_per_tick: 8,
            pns_candidates: 16,
        }
    }
}

/// Chord wire messages. Byte sizes are modelled per message in
/// [`msg_bytes`].
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// Recursive owner lookup, forwarded hop by hop.
    FindSuccessor {
        key: ChordId,
        origin: NodeRef,
        req: u64,
        hops: u32,
    },
    /// Lookup answer, sent directly to the origin. Carries the owner's
    /// successor list as PNS candidates.
    FoundSuccessor {
        owner: NodeRef,
        candidates: Vec<NodeRef>,
        req: u64,
        hops: u32,
    },
    /// Stabilization probe.
    GetPredecessor,
    /// Stabilization answer. `node` is the responder's *current*
    /// identity: after a leave/rejoin migration the same host answers
    /// under a new identifier, and the prober must notice and scrub its
    /// stale table entry.
    PredecessorReply {
        node: NodeRef,
        pred: Option<NodeRef>,
        successors: Vec<NodeRef>,
    },
    /// "I might be your predecessor."
    Notify { node: NodeRef },
    /// Control: injected to make this node join via `bootstrap`.
    StartJoin { bootstrap: NodeRef },
    /// Control: injected to make this node look up `key`.
    StartLookup { key: ChordId },
    /// Liveness probe.
    Ping { nonce: u64 },
    /// Liveness answer, carrying the responder's current identity (see
    /// [`ChordMsg::PredecessorReply`] for why the id must be echoed).
    Pong { nonce: u64, node: NodeRef },
    /// Control: injected to crash this node (it stops responding to
    /// everything; the rest of the ring must detect and route around it).
    Fail,
    /// Control: gracefully leave the ring — notify the predecessor and
    /// successor of each other, then go silent. The primitive behind the
    /// paper's "ask it to leave and then rejoin" load migration.
    Leave,
    /// A departing node telling its neighbors to link up: `pred` and
    /// `succ` are the leaver's neighbors (each receiver adopts the one
    /// it is missing).
    Departing {
        /// The leaver's predecessor.
        pred: Option<NodeRef>,
        /// The leaver's successor.
        succ: Option<NodeRef>,
    },
    /// Control: re-join the ring under a new identifier via `bootstrap`
    /// (leave must have completed first). Implements the re-join half of
    /// the migration primitive.
    Rejoin {
        /// The identifier to adopt.
        new_id: ChordId,
        /// A live node to route the join through.
        bootstrap: NodeRef,
    },
}

impl ChordMsg {
    /// Stable short name, used as the telemetry counter suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            ChordMsg::FindSuccessor { .. } => "find_successor",
            ChordMsg::FoundSuccessor { .. } => "found_successor",
            ChordMsg::GetPredecessor => "get_predecessor",
            ChordMsg::PredecessorReply { .. } => "predecessor_reply",
            ChordMsg::Notify { .. } => "notify",
            ChordMsg::StartJoin { .. } => "start_join",
            ChordMsg::StartLookup { .. } => "start_lookup",
            ChordMsg::Ping { .. } => "ping",
            ChordMsg::Pong { .. } => "pong",
            ChordMsg::Fail => "fail",
            ChordMsg::Leave => "leave",
            ChordMsg::Departing { .. } => "departing",
            ChordMsg::Rejoin { .. } => "rejoin",
        }
    }
}

/// Modelled wire size of a message: 20-byte header plus payload (ids are
/// 8 bytes, node references 12).
pub fn msg_bytes(msg: &ChordMsg) -> u32 {
    const HDR: u32 = 20;
    const REF: u32 = 12;
    match msg {
        ChordMsg::FindSuccessor { .. } => HDR + 8 + REF + 8 + 4,
        ChordMsg::FoundSuccessor { candidates, .. } => {
            HDR + REF + 8 + 4 + REF * candidates.len() as u32
        }
        ChordMsg::GetPredecessor => HDR,
        ChordMsg::PredecessorReply { successors, .. } => {
            HDR + 2 * REF + REF * successors.len() as u32
        }
        ChordMsg::Notify { .. } => HDR + REF,
        ChordMsg::Ping { .. } => HDR + 8,
        ChordMsg::Pong { .. } => HDR + 8 + REF,
        ChordMsg::Departing { .. } => HDR + 2 * REF,
        ChordMsg::StartJoin { .. }
        | ChordMsg::StartLookup { .. }
        | ChordMsg::Fail
        | ChordMsg::Leave
        | ChordMsg::Rejoin { .. } => 0, // control
    }
}

const STABILIZE: TimerTag = TimerTag(1);
const FIX_FINGERS: TimerTag = TimerTag(2);
const FAILCHECK: TimerTag = TimerTag(3);

/// User-lookup retry attempts before giving up.
const LOOKUP_RETRIES: u32 = 4;

/// Forwarding cap: a `FindSuccessor` that exceeds this many hops is
/// dropped. A healthy ring resolves any key in O(log n) hops; a request
/// this old is circling through inconsistent tables (e.g. mid-migration)
/// and must not live forever — the origin's retry machinery re-issues it
/// once the ring has healed.
const MAX_LOOKUP_HOPS: u32 = 2 * FINGER_ROWS as u32;

/// A completed lookup, recorded at the origin (test/ablation output).
#[derive(Clone, Copy, Debug)]
pub struct LookupResult {
    /// The key that was looked up.
    pub key: ChordId,
    /// The node found to own it.
    pub owner: NodeRef,
    /// Overlay hops the request took.
    pub hops: u32,
    /// Wall-clock (simulated) time from issue to answer.
    pub latency: SimDuration,
}

enum Pending {
    Join,
    FingerRow(usize),
    UserLookup {
        key: ChordId,
        started: SimTime,
        issued: SimTime,
        attempt: u32,
    },
}

/// One Chord node as a sans-io [`sansio::Protocol`] (driven under the
/// simulator via the [`simnet::Agent`] adapter below).
pub struct ChordAgent {
    /// Routing state (public for test inspection).
    pub table: RoutingTable,
    cfg: ChordConfig,
    joined: bool,
    /// False after a crash: the node ignores everything.
    pub alive: bool,
    next_req: u64,
    pending: HashMap<u64, Pending>,
    next_finger_row: usize,
    /// Completed lookups issued from this node.
    pub lookups: Vec<LookupResult>,
    /// Lookups abandoned after every retry failed.
    pub failed_lookups: Vec<ChordId>,
    /// (probed node, nonce, sent-at) of the outstanding liveness probe.
    /// The probe must stay unanswered for [`ChordAgent::reply_timeout`]
    /// before the target is declared dead — a WAN round trip can
    /// legitimately exceed one maintenance period.
    outstanding_ping: Option<(NodeRef, u64, SimTime)>,
    /// (successor, first-probe-at) awaiting a PredecessorReply.
    awaiting_stab: Option<(NodeRef, SimTime)>,
    /// Round-robin cursor over ping targets.
    ping_cursor: usize,
    /// Shared metrics registry: per-kind message/byte counters and the
    /// lookup hop histogram. `None` disables instrumentation.
    telemetry: Option<SharedRegistry>,
}

impl ChordAgent {
    /// A node that knows its own identity but has not joined.
    pub fn new(me: NodeRef, cfg: ChordConfig) -> ChordAgent {
        ChordAgent {
            table: RoutingTable::new(me, cfg.n_successors),
            cfg,
            joined: false,
            alive: true,
            next_req: 0,
            pending: HashMap::new(),
            next_finger_row: 0,
            lookups: Vec::new(),
            failed_lookups: Vec::new(),
            outstanding_ping: None,
            awaiting_stab: None,
            ping_cursor: 0,
            telemetry: None,
        }
    }

    /// Whether the node has completed its join.
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Attach a shared metrics registry. Every message this node sends is
    /// counted per kind (`chord.msgs.<kind>`, `chord.bytes`) and every
    /// completed user lookup feeds the `chord.lookup_hops` histogram.
    pub fn attach_telemetry(&mut self, registry: SharedRegistry) {
        self.telemetry = Some(registry);
    }

    fn me(&self) -> NodeRef {
        self.table.me()
    }

    fn count_msg(&self, msg: &ChordMsg, bytes: u32) {
        if let Some(reg) = &self.telemetry {
            let mut reg = reg.lock().expect("telemetry lock");
            reg.incr(&format!("chord.msgs.{}", msg.kind()), 1);
            reg.incr("chord.bytes", bytes as u64);
        }
    }

    fn send(&self, ctx: &mut ProtoCtx<'_, ChordMsg>, to: NodeRef, msg: ChordMsg) {
        let bytes = msg_bytes(&msg);
        self.count_msg(&msg, bytes);
        ctx.send(to.addr, msg, bytes);
    }

    fn issue_lookup(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>, key: ChordId, purpose: Pending) {
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(req, purpose);
        let me = self.me();
        // Start the recursive search at ourselves (zero-cost self-send
        // keeps a single code path for hop counting).
        self.send(
            ctx,
            me,
            ChordMsg::FindSuccessor {
                key,
                origin: me,
                req,
                hops: 0,
            },
        );
    }

    fn become_joined(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>) {
        if self.joined {
            return;
        }
        self.joined = true;
        ctx.schedule(self.cfg.stabilize_every, STABILIZE);
        ctx.schedule(self.cfg.fix_fingers_every, FIX_FINGERS);
        ctx.schedule(self.cfg.stabilize_every, FAILCHECK);
    }

    fn handle_find_successor(
        &mut self,
        ctx: &mut ProtoCtx<'_, ChordMsg>,
        key: ChordId,
        origin: NodeRef,
        req: u64,
        hops: u32,
    ) {
        if !self.joined {
            return; // mid-join node: drop, the origin's next try re-routes
        }
        if hops > MAX_LOOKUP_HOPS {
            return; // circling through inconsistent tables: drop
        }
        // A freshly-joined node that has not yet learnt its predecessor
        // must not claim ownership of anything (RoutingTable::owns treats
        // an unknown predecessor as "owns all", which is only correct for
        // a lone node): route via its successor instead.
        let decision = if self.table.predecessor().is_none() && self.table.successor().is_some() {
            let cp = self.table.closest_preceding(key);
            if cp.id == self.me().id {
                RouteDecision::Surrogate(self.table.successor().expect("checked"))
            } else {
                RouteDecision::Forward(cp)
            }
        } else {
            self.table.route(key)
        };
        match decision {
            RouteDecision::Local => {
                let candidates = self.table.successors().to_vec();
                let me = self.me();
                self.send(
                    ctx,
                    origin,
                    ChordMsg::FoundSuccessor {
                        owner: me,
                        candidates,
                        req,
                        hops,
                    },
                );
            }
            RouteDecision::Surrogate(next) | RouteDecision::Forward(next) => {
                self.send(
                    ctx,
                    next,
                    ChordMsg::FindSuccessor {
                        key,
                        origin,
                        req,
                        hops: hops + 1,
                    },
                );
            }
        }
    }

    fn handle_found(
        &mut self,
        ctx: &mut ProtoCtx<'_, ChordMsg>,
        owner: NodeRef,
        candidates: Vec<NodeRef>,
        req: u64,
        hops: u32,
    ) {
        let Some(purpose) = self.pending.remove(&req) else {
            return; // stale/duplicate answer
        };
        match purpose {
            Pending::Join => {
                self.table.add_successor(owner);
                self.become_joined(ctx);
                let me = self.me();
                self.send(ctx, owner, ChordMsg::Notify { node: me });
            }
            Pending::FingerRow(row) => {
                let start = self.me().id.finger_start(row as u32);
                let interval = 1u64 << row;
                let mut chosen = owner;
                if self.cfg.pns_candidates > 0 {
                    // PNS: the owner's successor list members that still
                    // fall inside this finger's interval are equally
                    // valid entries; pick the closest by RTT.
                    let mut best_rtt = ctx.rtt_to(owner.addr);
                    for c in candidates.into_iter().take(self.cfg.pns_candidates) {
                        if c.id != self.me().id && start.cw_dist(c.id) < interval {
                            let rtt = ctx.rtt_to(c.addr);
                            if rtt < best_rtt {
                                best_rtt = rtt;
                                chosen = c;
                            }
                        }
                    }
                }
                self.table.set_finger(row, Some(chosen));
            }
            Pending::UserLookup { key, started, .. } => {
                if let Some(reg) = &self.telemetry {
                    let mut reg = reg.lock().expect("telemetry lock");
                    reg.incr("chord.lookups", 1);
                    reg.observe("chord.lookup_hops", hops as u64);
                }
                self.lookups.push(LookupResult {
                    key,
                    owner,
                    hops,
                    latency: ctx.now().since(started),
                });
            }
        }
    }

    /// How long an unanswered probe is tolerated before its target is
    /// declared dead. Several periods, not one: a single slow round trip
    /// must not kill a healthy neighbor (heavy-tailed WAN latencies can
    /// exceed the maintenance period outright).
    fn reply_timeout(&self) -> SimDuration {
        SimDuration(self.cfg.stabilize_every.0 * 4)
    }

    fn stabilize(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>) {
        let now = ctx.now();
        // A probe from an earlier tick is still unanswered: once it has
        // aged past the reply timeout the successor is dead — scrub it
        // and fail over to the next list entry.
        if let Some((suspect, since)) = self.awaiting_stab {
            if self.table.successor() != Some(suspect) {
                self.awaiting_stab = None; // failed over some other way
            } else if now.since(since) >= self.reply_timeout() {
                self.table.remove(suspect);
                self.awaiting_stab = None;
            }
        }
        if let Some(succ) = self.table.successor() {
            self.send(ctx, succ, ChordMsg::GetPredecessor);
            if self.awaiting_stab.is_none() {
                self.awaiting_stab = Some((succ, now));
            }
        }
    }

    /// Liveness maintenance: ping one known node per tick (round-robin
    /// over the table, predecessor included); a probe unanswered for
    /// [`Self::reply_timeout`] removes the node from every table slot.
    /// Also garbage-collects and retries stale pending lookups.
    fn failure_check(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>) {
        let now = ctx.now();
        if let Some((suspect, _, sent)) = self.outstanding_ping {
            if now.since(sent) >= self.reply_timeout() {
                self.table.remove(suspect);
                self.outstanding_ping = None;
            }
        }
        // One probe in flight at a time: the next target is pinged once
        // the current probe is answered or times out.
        if self.outstanding_ping.is_none() {
            let known = self.table.known_nodes();
            if !known.is_empty() {
                let target = known[self.ping_cursor % known.len()];
                self.ping_cursor = self.ping_cursor.wrapping_add(1);
                let nonce = self.next_req;
                self.next_req += 1;
                self.outstanding_ping = Some((target, nonce, now));
                self.send(ctx, target, ChordMsg::Ping { nonce });
            }
        }
        // Retry or abandon user lookups that never completed (their path
        // crossed a dead node); drop stale finger repairs (the cycle
        // re-issues them anyway).
        let timeout = SimDuration(self.cfg.stabilize_every.0 * 4);
        let now = ctx.now();
        let stale: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| match p {
                Pending::UserLookup { issued, .. } => now.since(*issued) > timeout,
                Pending::FingerRow(_) => false,
                Pending::Join => false,
            })
            .map(|(&req, _)| req)
            .collect();
        for req in stale {
            let Some(Pending::UserLookup {
                key,
                started,
                attempt,
                ..
            }) = self.pending.remove(&req)
            else {
                continue;
            };
            if attempt + 1 >= LOOKUP_RETRIES {
                if let Some(reg) = &self.telemetry {
                    reg.lock()
                        .expect("telemetry lock")
                        .incr("chord.failed_lookups", 1);
                }
                self.failed_lookups.push(key);
            } else {
                self.issue_lookup(
                    ctx,
                    key,
                    Pending::UserLookup {
                        key,
                        started,
                        issued: now,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    fn on_predecessor_reply(
        &mut self,
        ctx: &mut ProtoCtx<'_, ChordMsg>,
        from: AgentId,
        node: NodeRef,
        pred: Option<NodeRef>,
        successors: Vec<NodeRef>,
    ) {
        if self.awaiting_stab.map(|(n, _)| n.addr) == Some(from) {
            self.awaiting_stab = None;
        }
        let Some(succ) = self.table.successor() else {
            return;
        };
        if succ.addr != from {
            return; // stale reply from a node no longer our successor
        }
        if succ.id != node.id {
            // The host we probed now carries a different identifier
            // (leave/rejoin migration): our successor entry is a ghost.
            // Scrub it everywhere and adopt the live identity; the next
            // stabilize round sorts out the ordering.
            self.table.remove(succ);
            self.table.add_successor(node);
            return;
        }
        if let Some(p) = pred {
            if p.id.in_open(self.me().id, succ.id) {
                // A closer successor exists.
                self.table.add_successor(p);
            }
        }
        // Adopt the successor's list (shifted through add_successor's
        // ordering and capping).
        for s in successors {
            self.table.add_successor(s);
        }
        if let Some(new_succ) = self.table.successor() {
            let me = self.me();
            self.send(ctx, new_succ, ChordMsg::Notify { node: me });
        }
    }

    fn fix_fingers(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>) {
        for _ in 0..self.cfg.fingers_per_tick {
            let row = self.next_finger_row;
            self.next_finger_row = (self.next_finger_row + 1) % FINGER_ROWS;
            let key = self.me().id.finger_start(row as u32);
            self.issue_lookup(ctx, key, Pending::FingerRow(row));
        }
    }
}

impl Protocol for ChordAgent {
    type Msg = ChordMsg;

    fn on_message(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>, from: AgentId, msg: ChordMsg) {
        if !self.alive {
            return; // crashed: silent to the whole world
        }
        match msg {
            ChordMsg::FindSuccessor {
                key,
                origin,
                req,
                hops,
            } => self.handle_find_successor(ctx, key, origin, req, hops),
            ChordMsg::FoundSuccessor {
                owner,
                candidates,
                req,
                hops,
            } => self.handle_found(ctx, owner, candidates, req, hops),
            ChordMsg::GetPredecessor if !self.joined => {
                // Departed (between Leave and Rejoin): silent.
            }
            ChordMsg::GetPredecessor => {
                let reply = ChordMsg::PredecessorReply {
                    node: self.me(),
                    pred: self.table.predecessor(),
                    successors: self.table.successors().to_vec(),
                };
                let bytes = msg_bytes(&reply);
                self.count_msg(&reply, bytes);
                ctx.send(from, reply, bytes);
            }
            ChordMsg::PredecessorReply {
                node,
                pred,
                successors,
            } => {
                self.on_predecessor_reply(ctx, from, node, pred, successors);
            }
            ChordMsg::Notify { node } => {
                let adopt = match self.table.predecessor() {
                    None => true,
                    Some(p) => node.id.in_open(p.id, self.me().id),
                };
                if adopt && node.id != self.me().id {
                    self.table.set_predecessor(Some(node));
                }
                // Bootstrap case: a ring-of-one has no successor until the
                // first joiner announces itself.
                if self.table.successor().is_none() && node.id != self.me().id {
                    self.table.add_successor(node);
                }
            }
            ChordMsg::StartJoin { bootstrap } => {
                if bootstrap.addr == ctx.me() {
                    // First node: a ring of one.
                    self.become_joined(ctx);
                } else {
                    // Ask the bootstrap node to find our successor; our
                    // own table is empty so the search must start there.
                    let req = self.next_req;
                    self.next_req += 1;
                    self.pending.insert(req, Pending::Join);
                    let me = self.me();
                    self.send(
                        ctx,
                        bootstrap,
                        ChordMsg::FindSuccessor {
                            key: me.id,
                            origin: me,
                            req,
                            hops: 0,
                        },
                    );
                }
            }
            ChordMsg::StartLookup { key } => {
                let started = ctx.now();
                self.issue_lookup(
                    ctx,
                    key,
                    Pending::UserLookup {
                        key,
                        started,
                        issued: started,
                        attempt: 0,
                    },
                );
            }
            ChordMsg::Ping { .. } if !self.joined => {
                // Departed (or still joining): stay silent so peers'
                // failure detection scrubs whatever identity this host
                // used to carry. Answering here would keep a stale
                // reference alive across a leave/rejoin migration.
            }
            ChordMsg::Ping { nonce } => {
                let pong = ChordMsg::Pong {
                    nonce,
                    node: self.me(),
                };
                let bytes = msg_bytes(&pong);
                self.count_msg(&pong, bytes);
                ctx.send(from, pong, bytes);
            }
            ChordMsg::Pong { nonce, node } => {
                if let Some((target, n, _)) = self.outstanding_ping {
                    if n == nonce {
                        self.outstanding_ping = None;
                        if node.id != target.id {
                            // The host is alive but answers under a new
                            // identifier (leave/rejoin migration): the
                            // probed reference is a ghost — scrub it.
                            self.table.remove(target);
                        }
                    }
                }
            }
            ChordMsg::Fail => {
                self.alive = false;
            }
            ChordMsg::Leave => {
                let pred = self.table.predecessor();
                let succ = self.table.successor();
                if let Some(p) = pred {
                    self.send(ctx, p, ChordMsg::Departing { pred, succ });
                }
                if let Some(s) = succ {
                    self.send(ctx, s, ChordMsg::Departing { pred, succ });
                }
                // Departed: silent until a Rejoin control arrives.
                self.joined = false;
                self.table = RoutingTable::new(self.me(), self.cfg.n_successors);
                self.pending.clear();
                self.outstanding_ping = None;
                self.awaiting_stab = None;
            }
            ChordMsg::Departing { pred, succ } => {
                let me = self.me();
                // The leaver's predecessor adopts the leaver's successor
                // and vice versa; everyone scrubs the leaver lazily via
                // failure detection (the leaver stopped responding).
                if let Some(p) = pred {
                    if p.id == me.id {
                        if let Some(s) = succ {
                            self.table.add_successor(s);
                        }
                    }
                }
                if let Some(s) = succ {
                    if s.id == me.id {
                        // The leaver sat directly before us: its
                        // predecessor becomes ours.
                        if let Some(p) = pred {
                            self.table.set_predecessor(Some(p));
                        }
                    }
                }
            }
            ChordMsg::Rejoin { new_id, bootstrap } => {
                assert!(!self.joined, "must Leave before Rejoin");
                self.alive = true;
                self.table = RoutingTable::new(
                    NodeRef {
                        id: new_id,
                        addr: ctx.me(),
                    },
                    self.cfg.n_successors,
                );
                let req = self.next_req;
                self.next_req += 1;
                self.pending.insert(req, Pending::Join);
                let me = self.me();
                self.send(
                    ctx,
                    bootstrap,
                    ChordMsg::FindSuccessor {
                        key: me.id,
                        origin: me,
                        req,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_, ChordMsg>, tag: TimerTag) {
        if !self.alive {
            return; // crashed: timers fizzle, nothing is rescheduled
        }
        match tag {
            STABILIZE => {
                self.stabilize(ctx);
                ctx.schedule(self.cfg.stabilize_every, STABILIZE);
            }
            FIX_FINGERS => {
                self.fix_fingers(ctx);
                ctx.schedule(self.cfg.fix_fingers_every, FIX_FINGERS);
            }
            FAILCHECK => {
                self.failure_check(ctx);
                ctx.schedule(self.cfg.stabilize_every, FAILCHECK);
            }
            other => unreachable!("unknown timer {other:?}"),
        }
    }
}

/// The simulator driver: each simnet callback runs the sans-io core via
/// [`sansio::drive`], which buffers the core's outputs and replays them
/// through the simulator in exact emission order — byte-identical event
/// sequences to the pre-refactor direct-call code.
impl simnet::Agent for ChordAgent {
    type Msg = ChordMsg;

    fn on_message(&mut self, ctx: &mut simnet::Ctx<'_, ChordMsg>, from: AgentId, msg: ChordMsg) {
        sansio::drive(self, ctx, Input::Message { from, msg });
    }

    fn on_timer(&mut self, ctx: &mut simnet::Ctx<'_, ChordMsg>, tag: TimerTag) {
        sansio::drive(self, ctx, Input::Timer(tag));
    }
}
