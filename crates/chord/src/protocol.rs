//! The live Chord protocol over [`simnet`]: recursive lookups, joins,
//! stabilization, finger repair, and proximity neighbor selection.
//!
//! The index experiments start from pre-stabilized tables (see
//! [`crate::ring`]); this module exists to *justify* that shortcut — the
//! protocol tests drive real joins and assert convergence to exactly the
//! oracle invariants — and to power the PNS/lookup ablations.

use std::collections::HashMap;

use simnet::{Agent, AgentId, Ctx, SimDuration, SimTime, TimerTag};

use crate::id::{ChordId, NodeRef};
use crate::table::{RouteDecision, RoutingTable, FINGER_ROWS};

/// Protocol parameters (defaults follow the paper's p2psim setup).
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length (paper: 16).
    pub n_successors: usize,
    /// Stabilization period.
    pub stabilize_every: SimDuration,
    /// Finger-repair period; each tick repairs [`Self::fingers_per_tick`] rows.
    pub fix_fingers_every: SimDuration,
    /// Finger rows refreshed per repair tick.
    pub fingers_per_tick: usize,
    /// PNS candidate-set size; 0 disables PNS (plain Chord).
    pub pns_candidates: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            n_successors: 16,
            stabilize_every: SimDuration::from_secs(1),
            fix_fingers_every: SimDuration::from_secs(1),
            fingers_per_tick: 8,
            pns_candidates: 16,
        }
    }
}

/// Chord wire messages. Byte sizes are modelled per message in
/// [`msg_bytes`].
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// Recursive owner lookup, forwarded hop by hop.
    FindSuccessor {
        key: ChordId,
        origin: NodeRef,
        req: u64,
        hops: u32,
    },
    /// Lookup answer, sent directly to the origin. Carries the owner's
    /// successor list as PNS candidates.
    FoundSuccessor {
        owner: NodeRef,
        candidates: Vec<NodeRef>,
        req: u64,
        hops: u32,
    },
    /// Stabilization probe.
    GetPredecessor,
    /// Stabilization answer.
    PredecessorReply {
        pred: Option<NodeRef>,
        successors: Vec<NodeRef>,
    },
    /// "I might be your predecessor."
    Notify { node: NodeRef },
    /// Control: injected to make this node join via `bootstrap`.
    StartJoin { bootstrap: NodeRef },
    /// Control: injected to make this node look up `key`.
    StartLookup { key: ChordId },
    /// Liveness probe.
    Ping { nonce: u64 },
    /// Liveness answer.
    Pong { nonce: u64 },
    /// Control: injected to crash this node (it stops responding to
    /// everything; the rest of the ring must detect and route around it).
    Fail,
    /// Control: gracefully leave the ring — notify the predecessor and
    /// successor of each other, then go silent. The primitive behind the
    /// paper's "ask it to leave and then rejoin" load migration.
    Leave,
    /// A departing node telling its neighbors to link up: `pred` and
    /// `succ` are the leaver's neighbors (each receiver adopts the one
    /// it is missing).
    Departing {
        /// The leaver's predecessor.
        pred: Option<NodeRef>,
        /// The leaver's successor.
        succ: Option<NodeRef>,
    },
    /// Control: re-join the ring under a new identifier via `bootstrap`
    /// (leave must have completed first). Implements the re-join half of
    /// the migration primitive.
    Rejoin {
        /// The identifier to adopt.
        new_id: ChordId,
        /// A live node to route the join through.
        bootstrap: NodeRef,
    },
}

/// Modelled wire size of a message: 20-byte header plus payload (ids are
/// 8 bytes, node references 12).
pub fn msg_bytes(msg: &ChordMsg) -> u32 {
    const HDR: u32 = 20;
    const REF: u32 = 12;
    match msg {
        ChordMsg::FindSuccessor { .. } => HDR + 8 + REF + 8 + 4,
        ChordMsg::FoundSuccessor { candidates, .. } => {
            HDR + REF + 8 + 4 + REF * candidates.len() as u32
        }
        ChordMsg::GetPredecessor => HDR,
        ChordMsg::PredecessorReply { successors, .. } => HDR + REF + REF * successors.len() as u32,
        ChordMsg::Notify { .. } => HDR + REF,
        ChordMsg::Ping { .. } | ChordMsg::Pong { .. } => HDR + 8,
        ChordMsg::Departing { .. } => HDR + 2 * REF,
        ChordMsg::StartJoin { .. }
        | ChordMsg::StartLookup { .. }
        | ChordMsg::Fail
        | ChordMsg::Leave
        | ChordMsg::Rejoin { .. } => 0, // control
    }
}

const STABILIZE: TimerTag = TimerTag(1);
const FIX_FINGERS: TimerTag = TimerTag(2);
const FAILCHECK: TimerTag = TimerTag(3);

/// User-lookup retry attempts before giving up.
const LOOKUP_RETRIES: u32 = 4;

/// A completed lookup, recorded at the origin (test/ablation output).
#[derive(Clone, Copy, Debug)]
pub struct LookupResult {
    /// The key that was looked up.
    pub key: ChordId,
    /// The node found to own it.
    pub owner: NodeRef,
    /// Overlay hops the request took.
    pub hops: u32,
    /// Wall-clock (simulated) time from issue to answer.
    pub latency: SimDuration,
}

enum Pending {
    Join,
    FingerRow(usize),
    UserLookup {
        key: ChordId,
        started: SimTime,
        issued: SimTime,
        attempt: u32,
    },
}

/// One Chord node as a [`simnet::Agent`].
pub struct ChordAgent {
    /// Routing state (public for test inspection).
    pub table: RoutingTable,
    cfg: ChordConfig,
    joined: bool,
    /// False after a crash: the node ignores everything.
    pub alive: bool,
    next_req: u64,
    pending: HashMap<u64, Pending>,
    next_finger_row: usize,
    /// Completed lookups issued from this node.
    pub lookups: Vec<LookupResult>,
    /// Lookups abandoned after every retry failed.
    pub failed_lookups: Vec<ChordId>,
    /// (probed node, nonce) of the outstanding liveness probe.
    outstanding_ping: Option<(NodeRef, u64)>,
    /// Successor awaiting a PredecessorReply since the last stabilize.
    awaiting_stab: Option<NodeRef>,
    /// Round-robin cursor over ping targets.
    ping_cursor: usize,
}

impl ChordAgent {
    /// A node that knows its own identity but has not joined.
    pub fn new(me: NodeRef, cfg: ChordConfig) -> ChordAgent {
        ChordAgent {
            table: RoutingTable::new(me, cfg.n_successors),
            cfg,
            joined: false,
            alive: true,
            next_req: 0,
            pending: HashMap::new(),
            next_finger_row: 0,
            lookups: Vec::new(),
            failed_lookups: Vec::new(),
            outstanding_ping: None,
            awaiting_stab: None,
            ping_cursor: 0,
        }
    }

    /// Whether the node has completed its join.
    pub fn joined(&self) -> bool {
        self.joined
    }

    fn me(&self) -> NodeRef {
        self.table.me()
    }

    fn send(&self, ctx: &mut Ctx<'_, ChordMsg>, to: NodeRef, msg: ChordMsg) {
        let bytes = msg_bytes(&msg);
        ctx.send(to.addr, msg, bytes);
    }

    fn issue_lookup(&mut self, ctx: &mut Ctx<'_, ChordMsg>, key: ChordId, purpose: Pending) {
        let req = self.next_req;
        self.next_req += 1;
        self.pending.insert(req, purpose);
        let me = self.me();
        // Start the recursive search at ourselves (zero-cost self-send
        // keeps a single code path for hop counting).
        self.send(
            ctx,
            me,
            ChordMsg::FindSuccessor {
                key,
                origin: me,
                req,
                hops: 0,
            },
        );
    }

    fn become_joined(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        if self.joined {
            return;
        }
        self.joined = true;
        ctx.schedule(self.cfg.stabilize_every, STABILIZE);
        ctx.schedule(self.cfg.fix_fingers_every, FIX_FINGERS);
        ctx.schedule(self.cfg.stabilize_every, FAILCHECK);
    }

    fn handle_find_successor(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        key: ChordId,
        origin: NodeRef,
        req: u64,
        hops: u32,
    ) {
        if !self.joined {
            return; // mid-join node: drop, the origin's next try re-routes
        }
        // A freshly-joined node that has not yet learnt its predecessor
        // must not claim ownership of anything (RoutingTable::owns treats
        // an unknown predecessor as "owns all", which is only correct for
        // a lone node): route via its successor instead.
        let decision = if self.table.predecessor().is_none() && self.table.successor().is_some() {
            let cp = self.table.closest_preceding(key);
            if cp.id == self.me().id {
                RouteDecision::Surrogate(self.table.successor().expect("checked"))
            } else {
                RouteDecision::Forward(cp)
            }
        } else {
            self.table.route(key)
        };
        match decision {
            RouteDecision::Local => {
                let candidates = self.table.successors().to_vec();
                let me = self.me();
                self.send(
                    ctx,
                    origin,
                    ChordMsg::FoundSuccessor {
                        owner: me,
                        candidates,
                        req,
                        hops,
                    },
                );
            }
            RouteDecision::Surrogate(next) | RouteDecision::Forward(next) => {
                self.send(
                    ctx,
                    next,
                    ChordMsg::FindSuccessor {
                        key,
                        origin,
                        req,
                        hops: hops + 1,
                    },
                );
            }
        }
    }

    fn handle_found(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        owner: NodeRef,
        candidates: Vec<NodeRef>,
        req: u64,
        hops: u32,
    ) {
        let Some(purpose) = self.pending.remove(&req) else {
            return; // stale/duplicate answer
        };
        match purpose {
            Pending::Join => {
                self.table.add_successor(owner);
                self.become_joined(ctx);
                let me = self.me();
                self.send(ctx, owner, ChordMsg::Notify { node: me });
            }
            Pending::FingerRow(row) => {
                let start = self.me().id.finger_start(row as u32);
                let interval = 1u64 << row;
                let mut chosen = owner;
                if self.cfg.pns_candidates > 0 {
                    // PNS: the owner's successor list members that still
                    // fall inside this finger's interval are equally
                    // valid entries; pick the closest by RTT.
                    let mut best_rtt = ctx.rtt_to(owner.addr);
                    for c in candidates.into_iter().take(self.cfg.pns_candidates) {
                        if c.id != self.me().id && start.cw_dist(c.id) < interval {
                            let rtt = ctx.rtt_to(c.addr);
                            if rtt < best_rtt {
                                best_rtt = rtt;
                                chosen = c;
                            }
                        }
                    }
                }
                self.table.set_finger(row, Some(chosen));
            }
            Pending::UserLookup { key, started, .. } => {
                self.lookups.push(LookupResult {
                    key,
                    owner,
                    hops,
                    latency: ctx.now().since(started),
                });
            }
        }
    }

    fn stabilize(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        // The probe sent last tick went unanswered: the successor is
        // dead — scrub it and fail over to the next list entry.
        if let Some(dead) = self.awaiting_stab.take() {
            if self.table.successor() == Some(dead) {
                self.table.remove(dead);
            }
        }
        if let Some(succ) = self.table.successor() {
            self.send(ctx, succ, ChordMsg::GetPredecessor);
            self.awaiting_stab = Some(succ);
        }
    }

    /// Liveness maintenance: ping one known node per tick (round-robin
    /// over the table, predecessor included); a probe unanswered by the
    /// next tick removes the node from every table slot. Also garbage-
    /// collects and retries stale pending lookups.
    fn failure_check(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        if let Some((suspect, _)) = self.outstanding_ping.take() {
            self.table.remove(suspect);
        }
        let known = self.table.known_nodes();
        if !known.is_empty() {
            let target = known[self.ping_cursor % known.len()];
            self.ping_cursor = self.ping_cursor.wrapping_add(1);
            let nonce = self.next_req;
            self.next_req += 1;
            self.outstanding_ping = Some((target, nonce));
            self.send(ctx, target, ChordMsg::Ping { nonce });
        }
        // Retry or abandon user lookups that never completed (their path
        // crossed a dead node); drop stale finger repairs (the cycle
        // re-issues them anyway).
        let timeout = SimDuration(self.cfg.stabilize_every.0 * 4);
        let now = ctx.now();
        let stale: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| match p {
                Pending::UserLookup { issued, .. } => now.since(*issued) > timeout,
                Pending::FingerRow(_) => false,
                Pending::Join => false,
            })
            .map(|(&req, _)| req)
            .collect();
        for req in stale {
            let Some(Pending::UserLookup {
                key,
                started,
                attempt,
                ..
            }) = self.pending.remove(&req)
            else {
                continue;
            };
            if attempt + 1 >= LOOKUP_RETRIES {
                self.failed_lookups.push(key);
            } else {
                self.issue_lookup(
                    ctx,
                    key,
                    Pending::UserLookup {
                        key,
                        started,
                        issued: now,
                        attempt: attempt + 1,
                    },
                );
            }
        }
    }

    fn on_predecessor_reply(
        &mut self,
        ctx: &mut Ctx<'_, ChordMsg>,
        from: AgentId,
        pred: Option<NodeRef>,
        successors: Vec<NodeRef>,
    ) {
        if self.awaiting_stab.map(|n| n.addr) == Some(from) {
            self.awaiting_stab = None;
        }
        let Some(succ) = self.table.successor() else {
            return;
        };
        if succ.addr != from {
            return; // stale reply from a node no longer our successor
        }
        if let Some(p) = pred {
            if p.id.in_open(self.me().id, succ.id) {
                // A closer successor exists.
                self.table.add_successor(p);
            }
        }
        // Adopt the successor's list (shifted through add_successor's
        // ordering and capping).
        for s in successors {
            self.table.add_successor(s);
        }
        if let Some(new_succ) = self.table.successor() {
            let me = self.me();
            self.send(ctx, new_succ, ChordMsg::Notify { node: me });
        }
    }

    fn fix_fingers(&mut self, ctx: &mut Ctx<'_, ChordMsg>) {
        for _ in 0..self.cfg.fingers_per_tick {
            let row = self.next_finger_row;
            self.next_finger_row = (self.next_finger_row + 1) % FINGER_ROWS;
            let key = self.me().id.finger_start(row as u32);
            self.issue_lookup(ctx, key, Pending::FingerRow(row));
        }
    }
}

impl Agent for ChordAgent {
    type Msg = ChordMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, ChordMsg>, from: AgentId, msg: ChordMsg) {
        if !self.alive {
            return; // crashed: silent to the whole world
        }
        match msg {
            ChordMsg::FindSuccessor {
                key,
                origin,
                req,
                hops,
            } => self.handle_find_successor(ctx, key, origin, req, hops),
            ChordMsg::FoundSuccessor {
                owner,
                candidates,
                req,
                hops,
            } => self.handle_found(ctx, owner, candidates, req, hops),
            ChordMsg::GetPredecessor if !self.joined => {
                // Departed (between Leave and Rejoin): silent.
            }
            ChordMsg::GetPredecessor => {
                let reply = ChordMsg::PredecessorReply {
                    pred: self.table.predecessor(),
                    successors: self.table.successors().to_vec(),
                };
                let bytes = msg_bytes(&reply);
                ctx.send(from, reply, bytes);
            }
            ChordMsg::PredecessorReply { pred, successors } => {
                self.on_predecessor_reply(ctx, from, pred, successors);
            }
            ChordMsg::Notify { node } => {
                let adopt = match self.table.predecessor() {
                    None => true,
                    Some(p) => node.id.in_open(p.id, self.me().id),
                };
                if adopt && node.id != self.me().id {
                    self.table.set_predecessor(Some(node));
                }
                // Bootstrap case: a ring-of-one has no successor until the
                // first joiner announces itself.
                if self.table.successor().is_none() && node.id != self.me().id {
                    self.table.add_successor(node);
                }
            }
            ChordMsg::StartJoin { bootstrap } => {
                if bootstrap.addr == ctx.me() {
                    // First node: a ring of one.
                    self.become_joined(ctx);
                } else {
                    // Ask the bootstrap node to find our successor; our
                    // own table is empty so the search must start there.
                    let req = self.next_req;
                    self.next_req += 1;
                    self.pending.insert(req, Pending::Join);
                    let me = self.me();
                    self.send(
                        ctx,
                        bootstrap,
                        ChordMsg::FindSuccessor {
                            key: me.id,
                            origin: me,
                            req,
                            hops: 0,
                        },
                    );
                }
            }
            ChordMsg::StartLookup { key } => {
                let started = ctx.now();
                self.issue_lookup(
                    ctx,
                    key,
                    Pending::UserLookup {
                        key,
                        started,
                        issued: started,
                        attempt: 0,
                    },
                );
            }
            ChordMsg::Ping { nonce } => {
                let pong = ChordMsg::Pong { nonce };
                let bytes = msg_bytes(&pong);
                ctx.send(from, pong, bytes);
            }
            ChordMsg::Pong { nonce } => {
                if self.outstanding_ping.map(|(_, n)| n) == Some(nonce) {
                    self.outstanding_ping = None;
                }
            }
            ChordMsg::Fail => {
                self.alive = false;
            }
            ChordMsg::Leave => {
                let pred = self.table.predecessor();
                let succ = self.table.successor();
                if let Some(p) = pred {
                    self.send(ctx, p, ChordMsg::Departing { pred, succ });
                }
                if let Some(s) = succ {
                    self.send(ctx, s, ChordMsg::Departing { pred, succ });
                }
                // Departed: silent until a Rejoin control arrives.
                self.joined = false;
                self.table = RoutingTable::new(self.me(), self.cfg.n_successors);
                self.pending.clear();
                self.outstanding_ping = None;
                self.awaiting_stab = None;
            }
            ChordMsg::Departing { pred, succ } => {
                let me = self.me();
                // The leaver's predecessor adopts the leaver's successor
                // and vice versa; everyone scrubs the leaver lazily via
                // failure detection (the leaver stopped responding).
                if let Some(p) = pred {
                    if p.id == me.id {
                        if let Some(s) = succ {
                            self.table.add_successor(s);
                        }
                    }
                }
                if let Some(s) = succ {
                    if s.id == me.id {
                        // The leaver sat directly before us: its
                        // predecessor becomes ours.
                        if let Some(p) = pred {
                            self.table.set_predecessor(Some(p));
                        }
                    }
                }
            }
            ChordMsg::Rejoin { new_id, bootstrap } => {
                assert!(!self.joined, "must Leave before Rejoin");
                self.alive = true;
                self.table = RoutingTable::new(
                    NodeRef {
                        id: new_id,
                        addr: ctx.me(),
                    },
                    self.cfg.n_successors,
                );
                let req = self.next_req;
                self.next_req += 1;
                self.pending.insert(req, Pending::Join);
                let me = self.me();
                self.send(
                    ctx,
                    bootstrap,
                    ChordMsg::FindSuccessor {
                        key: me.id,
                        origin: me,
                        req,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ChordMsg>, tag: TimerTag) {
        if !self.alive {
            return; // crashed: timers fizzle, nothing is rescheduled
        }
        match tag {
            STABILIZE => {
                self.stabilize(ctx);
                ctx.schedule(self.cfg.stabilize_every, STABILIZE);
            }
            FIX_FINGERS => {
                self.fix_fingers(ctx);
                ctx.schedule(self.cfg.fix_fingers_every, FIX_FINGERS);
            }
            FAILCHECK => {
                self.failure_check(ctx);
                ctx.schedule(self.cfg.stabilize_every, FAILCHECK);
            }
            other => unreachable!("unknown timer {other:?}"),
        }
    }
}
