//! Global ring knowledge: ground truth for tests and the stabilized-state
//! builder experiments start from.
//!
//! The paper's experiments run "after system stabilization". Rather than
//! burning simulated hours of stabilization traffic before every
//! experiment, [`OracleRing::build_table`] constructs the exact routing
//! state a converged Chord-PNS ring has: perfect successor lists and
//! predecessors, and fingers chosen by **proximity neighbor selection** —
//! for finger row `i`, any node in `[me + 2^i, me + 2^{i+1})` is a valid
//! entry, and PNS picks the one with the lowest RTT to `me` among the
//! first `pns_candidates` of the interval (p2psim's Chord-PNS samples 16
//! candidates). The live protocol in [`crate::protocol`] converges to the
//! same invariants, which the protocol tests assert.

use simnet::{AgentId, SimRng, Topology};

use crate::id::{ChordId, NodeRef};
use crate::table::{RoutingTable, FINGER_ROWS};

/// A sorted view of the full ring membership.
#[derive(Clone, Debug)]
pub struct OracleRing {
    /// Nodes sorted by identifier (all distinct).
    nodes: Vec<NodeRef>,
}

impl OracleRing {
    /// Build from node references. Panics on duplicate identifiers.
    pub fn new(mut nodes: Vec<NodeRef>) -> OracleRing {
        assert!(!nodes.is_empty(), "a ring needs at least one node");
        nodes.sort_unstable_by_key(|n| n.id);
        for w in nodes.windows(2) {
            assert!(w[0].id != w[1].id, "duplicate chord id {:?}", w[0].id);
        }
        OracleRing { nodes }
    }

    /// Assign `n` distinct pseudo-random identifiers to agents `0..n`
    /// (Chord hashes node addresses with SHA-1; we draw uniform ids from
    /// the seeded generator, retrying the measure-zero collisions).
    pub fn with_random_ids(n: usize, rng: &mut SimRng) -> OracleRing {
        use rand::RngCore;
        assert!(n >= 1);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let nodes = (0..n)
            .map(|addr| {
                let mut id = rng.next_u64();
                while !seen.insert(id) {
                    id = rng.next_u64();
                }
                NodeRef {
                    id: ChordId(id),
                    addr: AgentId(addr),
                }
            })
            .collect();
        OracleRing::new(nodes)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes sorted by identifier.
    pub fn nodes(&self) -> &[NodeRef] {
        &self.nodes
    }

    /// `successor(key)`: the first node whose id is `>= key`, wrapping.
    pub fn successor_of(&self, key: ChordId) -> NodeRef {
        let idx = self.nodes.partition_point(|n| n.id < key);
        self.nodes[idx % self.nodes.len()]
    }

    /// The node owning `key` (same as [`OracleRing::successor_of`]).
    pub fn owner_of(&self, key: ChordId) -> NodeRef {
        self.successor_of(key)
    }

    /// `predecessor(key)`: the last node whose id is `< key`, wrapping.
    pub fn predecessor_of(&self, key: ChordId) -> NodeRef {
        let idx = self.nodes.partition_point(|n| n.id < key);
        self.nodes[(idx + self.nodes.len() - 1) % self.nodes.len()]
    }

    /// The ring successor of the node at sorted position `i`.
    pub fn next_of(&self, i: usize) -> NodeRef {
        self.nodes[(i + 1) % self.nodes.len()]
    }

    /// The ring predecessor of the node at sorted position `i`.
    pub fn prev_of(&self, i: usize) -> NodeRef {
        self.nodes[(i + self.nodes.len() - 1) % self.nodes.len()]
    }

    /// Build the fully-stabilized routing table for the node at sorted
    /// position `i`.
    ///
    /// * `n_successors` — successor-list length (paper: 16).
    /// * `topo` — when given, fingers use proximity neighbor selection
    ///   against this latency matrix; when `None`, fingers are the exact
    ///   `successor(me + 2^row)` (plain Chord).
    /// * `pns_candidates` — how many nodes of each finger interval PNS
    ///   considers (p2psim default: 16).
    pub fn build_table(
        &self,
        i: usize,
        n_successors: usize,
        topo: Option<&Topology>,
        pns_candidates: usize,
    ) -> RoutingTable {
        let me = self.nodes[i];
        let n = self.nodes.len();
        let mut t = RoutingTable::new(me, n_successors);
        if n == 1 {
            return t;
        }
        t.set_predecessor(Some(self.prev_of(i)));
        for s in 1..=n_successors.min(n - 1) {
            t.add_successor(self.nodes[(i + s) % n]);
        }
        for row in 0..FINGER_ROWS {
            let start = me.id.finger_start(row as u32);
            // The interval [me + 2^row, me + 2^(row+1)) has length 2^row
            // (for row 63 it is the half-ring ending at me).
            let interval_len = 1u64 << row;
            let ideal = self.successor_of(start);
            let mut chosen = ideal;
            if let Some(topo) = topo {
                // PNS: among the first `pns_candidates` nodes of the
                // interval (clockwise from `start`), pick the lowest-RTT
                // one. When the interval holds no node, keep the ideal
                // finger (the plain-Chord fallback).
                let mut best_rtt = None;
                let mut idx = self.nodes.partition_point(|nd| nd.id < start) % n;
                for _ in 0..pns_candidates.min(n) {
                    let cand = self.nodes[idx];
                    if start.cw_dist(cand.id) >= interval_len {
                        break; // left the interval
                    }
                    if cand.id != me.id {
                        let rtt = topo.rtt(me.addr.0, cand.addr.0);
                        if best_rtt.is_none_or(|b| rtt < b) {
                            best_rtt = Some(rtt);
                            chosen = cand;
                        }
                    }
                    idx = (idx + 1) % n;
                }
            }
            t.set_finger(row, Some(chosen));
        }
        t
    }

    /// Build stabilized tables for every node, in agent-address order.
    ///
    /// Tables build in parallel: each is a pure function of the
    /// (immutable) membership and topology, so fan-out changes nothing
    /// about the result — the same tables come back on one core or
    /// sixteen. This is the "instant ring" that makes a stabilized 100k
    /// node overlay constructible in seconds where sequential
    /// join/stabilize would take simulated hours.
    pub fn build_all_tables(
        &self,
        n_successors: usize,
        topo: Option<&Topology>,
        pns_candidates: usize,
    ) -> Vec<RoutingTable> {
        use rayon::prelude::*;
        let indices: Vec<usize> = (0..self.nodes.len()).collect();
        let tables: Vec<RoutingTable> = indices
            .par_iter()
            .map(|&i| self.build_table(i, n_successors, topo, pns_candidates))
            .collect();
        let mut by_addr: Vec<Option<RoutingTable>> = vec![None; self.nodes.len()];
        for t in tables {
            let addr = t.me().addr.0;
            by_addr[addr] = Some(t);
        }
        by_addr.into_iter().map(|t| t.expect("addr gap")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RouteDecision;

    fn ring(ids: &[u64]) -> OracleRing {
        OracleRing::new(
            ids.iter()
                .enumerate()
                .map(|(addr, &id)| NodeRef::new(id, addr))
                .collect(),
        )
    }

    #[test]
    fn successor_and_predecessor() {
        let r = ring(&[100, 300, 700]);
        assert_eq!(r.successor_of(ChordId(100)).id.0, 100);
        assert_eq!(r.successor_of(ChordId(101)).id.0, 300);
        assert_eq!(r.successor_of(ChordId(700)).id.0, 700);
        assert_eq!(r.successor_of(ChordId(701)).id.0, 100); // wraps
        assert_eq!(r.predecessor_of(ChordId(100)).id.0, 700); // wraps
        assert_eq!(r.predecessor_of(ChordId(101)).id.0, 100);
        assert_eq!(r.predecessor_of(ChordId(0)).id.0, 700);
    }

    #[test]
    fn random_ids_are_distinct() {
        let mut rng = SimRng::new(1);
        let r = OracleRing::with_random_ids(500, &mut rng);
        assert_eq!(r.len(), 500);
        let mut ids: Vec<u64> = r.nodes().iter().map(|n| n.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 500);
        // Agents 0..n are all present.
        let mut addrs: Vec<usize> = r.nodes().iter().map(|n| n.addr.0).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn stabilized_tables_have_ring_invariants() {
        let mut rng = SimRng::new(7);
        let r = OracleRing::with_random_ids(64, &mut rng);
        let tables = r.build_all_tables(16, None, 16);
        for (i, node) in r.nodes().iter().enumerate() {
            let t = &tables[node.addr.0];
            assert_eq!(t.me(), *node);
            assert_eq!(t.predecessor().unwrap(), r.prev_of(i));
            assert_eq!(t.successor().unwrap(), r.next_of(i));
            assert_eq!(t.successors().len(), 16);
            // Every finger row targets its interval's true successor.
            for row in 0..FINGER_ROWS {
                let start = node.id.finger_start(row as u32);
                let expect = r.successor_of(start);
                if expect.id != node.id {
                    assert_eq!(t.finger(row).unwrap(), expect, "node {i} row {row}");
                }
            }
        }
    }

    #[test]
    fn greedy_routing_reaches_owner_in_log_hops() {
        let mut rng = SimRng::new(3);
        let r = OracleRing::with_random_ids(256, &mut rng);
        let tables = r.build_all_tables(16, None, 16);
        let mut max_hops = 0;
        for trial in 0..200 {
            let key = ChordId(SimRng::new(trial).fork(9).f64().to_bits());
            let start = &tables[(trial as usize * 37) % 256];
            let mut cur = start;
            let mut hops = 0;
            let owner = loop {
                match cur.route(key) {
                    RouteDecision::Local => break cur.me(),
                    RouteDecision::Surrogate(s) => {
                        hops += 1;
                        break s;
                    }
                    RouteDecision::Forward(next) => {
                        hops += 1;
                        assert!(hops < 64, "routing loop for key {key:?}");
                        cur = &tables[next.addr.0];
                    }
                }
            };
            assert_eq!(owner, r.owner_of(key), "wrong owner for {key:?}");
            max_hops = max_hops.max(hops);
        }
        // log2(256) = 8; allow headroom but catch pathological routing.
        assert!(max_hops <= 12, "max hops {max_hops}");
    }

    #[test]
    fn pns_fingers_stay_in_interval_and_lower_latency() {
        let mut rng = SimRng::new(11);
        let n = 128;
        let r = OracleRing::with_random_ids(n, &mut rng);
        let topo = Topology::king_like(n, 5, 180.0);
        let plain = r.build_all_tables(16, None, 16);
        let pns = r.build_all_tables(16, Some(&topo), 16);
        let mut plain_sum = 0u128;
        let mut pns_sum = 0u128;
        let mut rows = 0u64;
        for node in r.nodes() {
            let tp = &plain[node.addr.0];
            let tq = &pns[node.addr.0];
            for row in 0..FINGER_ROWS {
                let (Some(fp), Some(fq)) = (tp.finger(row), tq.finger(row)) else {
                    continue;
                };
                // The PNS finger must be valid for the interval: its id
                // must not precede the ideal interval start... i.e. the
                // plain finger must not be strictly between start and the
                // PNS finger's id going clockwise — both must serve the
                // same interval. Validity: routing correctness is covered
                // by the routing test; here check latency improvement.
                plain_sum += topo.rtt(node.addr.0, fp.addr.0).0 as u128;
                pns_sum += topo.rtt(node.addr.0, fq.addr.0).0 as u128;
                rows += 1;
            }
        }
        assert!(rows > 0);
        assert!(
            pns_sum < plain_sum,
            "PNS should reduce mean finger RTT ({pns_sum} vs {plain_sum})"
        );
    }

    #[test]
    fn pns_routing_is_still_correct() {
        let mut rng = SimRng::new(13);
        let n = 128;
        let r = OracleRing::with_random_ids(n, &mut rng);
        let topo = Topology::king_like(n, 6, 180.0);
        let tables = r.build_all_tables(16, Some(&topo), 16);
        for trial in 0u64..100 {
            let key = ChordId(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut cur = &tables[(trial as usize * 13) % n];
            let mut hops = 0;
            let owner = loop {
                match cur.route(key) {
                    RouteDecision::Local => break cur.me(),
                    RouteDecision::Surrogate(s) => break s,
                    RouteDecision::Forward(next) => {
                        hops += 1;
                        assert!(hops < 100, "loop");
                        cur = &tables[next.addr.0];
                    }
                }
            };
            assert_eq!(owner, r.owner_of(key));
        }
    }

    #[test]
    fn single_node_ring() {
        let r = ring(&[42]);
        assert_eq!(r.successor_of(ChordId(7)).id.0, 42);
        assert_eq!(r.predecessor_of(ChordId(7)).id.0, 42);
        let t = r.build_table(0, 16, None, 16);
        assert_eq!(t.route(ChordId(0)), RouteDecision::Local);
    }

    #[test]
    #[should_panic(expected = "duplicate chord id")]
    fn duplicate_ids_rejected() {
        let _ = ring(&[5, 5]);
    }
}
