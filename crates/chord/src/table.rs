//! Per-node routing state and the next-hop rule.

use crate::id::{ChordId, NodeRef};

/// Number of finger-table rows (one per identifier bit).
pub const FINGER_ROWS: usize = 64;

/// Default successor-list length (the paper's p2psim configuration).
pub const DEFAULT_SUCCESSORS: usize = 16;

/// What a node should do with a key it is routing toward (paper
/// Algorithm 3's `nexthop` plus the ownership cases).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteDecision {
    /// This node owns the key (`key ∈ (predecessor, me]`): handle it here.
    Local,
    /// This node is the closest predecessor of the key it knows of, and
    /// its immediate successor owns the key: hand over to the surrogate.
    Surrogate(NodeRef),
    /// Forward to the table entry closest-preceding the key.
    Forward(NodeRef),
}

/// A Chord node's routing table: finger table + successor list +
/// predecessor (the composition the paper's footnote 4 describes).
#[derive(Clone, Debug)]
pub struct RoutingTable {
    me: NodeRef,
    fingers: Vec<Option<NodeRef>>,
    successors: Vec<NodeRef>,
    max_successors: usize,
    predecessor: Option<NodeRef>,
}

impl RoutingTable {
    /// An empty table for a node that has not joined yet.
    pub fn new(me: NodeRef, max_successors: usize) -> RoutingTable {
        assert!(max_successors >= 1);
        RoutingTable {
            me,
            fingers: vec![None; FINGER_ROWS],
            successors: Vec::new(),
            max_successors,
            predecessor: None,
        }
    }

    /// This node's identity.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// The immediate successor, if known.
    pub fn successor(&self) -> Option<NodeRef> {
        self.successors.first().copied()
    }

    /// The whole successor list, nearest first.
    pub fn successors(&self) -> &[NodeRef] {
        &self.successors
    }

    /// The predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeRef> {
        self.predecessor
    }

    /// Set the predecessor. A reference carrying this node's own address
    /// (under any identifier) is rejected — see [`Self::add_successor`].
    pub fn set_predecessor(&mut self, pred: Option<NodeRef>) {
        self.predecessor = pred.filter(|p| p.addr != self.me.addr);
    }

    /// Finger `i` (row `i` targets `me + 2^i`).
    pub fn finger(&self, i: usize) -> Option<NodeRef> {
        self.fingers[i]
    }

    /// Install finger `i`.
    pub fn set_finger(&mut self, i: usize, node: Option<NodeRef>) {
        self.fingers[i] = node.filter(|n| n.id != self.me.id && n.addr != self.me.addr);
    }

    /// Insert a successor, keeping the list sorted by clockwise distance
    /// from `me`, deduplicated, and capped at the configured length.
    ///
    /// A reference with this node's own address is rejected even when its
    /// identifier differs: after a leave/rejoin migration the host keeps
    /// its address but changes id, and peers may still hand back the
    /// stale identity. Admitting it would make `closest_preceding` route
    /// a key to ourselves — a zero-delay self-send loop.
    pub fn add_successor(&mut self, node: NodeRef) {
        if node.id == self.me.id || node.addr == self.me.addr {
            return;
        }
        let key = self.me.id.cw_dist(node.id);
        match self
            .successors
            .binary_search_by_key(&key, |s| self.me.id.cw_dist(s.id))
        {
            Ok(_) => {}
            Err(pos) => {
                self.successors.insert(pos, node);
                self.successors.truncate(self.max_successors);
            }
        }
    }

    /// Replace the successor list wholesale (stabilization adopts the
    /// successor's list shifted by one).
    pub fn set_successors(&mut self, nodes: impl IntoIterator<Item = NodeRef>) {
        self.successors.clear();
        for n in nodes {
            self.add_successor(n);
        }
    }

    /// Drop a node (believed failed) from every table slot.
    pub fn remove(&mut self, node: NodeRef) {
        self.successors.retain(|s| s.id != node.id);
        for f in &mut self.fingers {
            if *f == Some(node) {
                *f = None;
            }
        }
        if self.predecessor == Some(node) {
            self.predecessor = None;
        }
    }

    /// Every distinct node this table knows about (fingers, successors,
    /// predecessor), unordered.
    pub fn known_nodes(&self) -> Vec<NodeRef> {
        let mut all: Vec<NodeRef> = self
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(self.successors.iter().copied())
            .chain(self.predecessor)
            .collect();
        all.sort_unstable_by_key(|n| n.id);
        all.dedup_by_key(|n| n.id);
        all
    }

    /// True when this node owns `key` (`key ∈ (predecessor, me]`). A
    /// node with no predecessor (single-node ring) owns everything.
    pub fn owns(&self, key: ChordId) -> bool {
        match self.predecessor {
            Some(p) => key.in_half_open(p.id, self.me.id),
            None => true,
        }
    }

    /// The table entry closest-preceding `key`: the known node with the
    /// largest identifier in `(me, key)`, or `me` itself when none
    /// exists (then `key ∈ (me, successor]` and the successor owns it).
    pub fn closest_preceding(&self, key: ChordId) -> NodeRef {
        let mut best = self.me;
        let mut best_dist = u64::MAX; // cw distance from candidate to key; smaller = closer before key
        let candidates = self
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(self.successors.iter().copied());
        for c in candidates {
            if c.id.in_open(self.me.id, key) {
                let d = c.id.cw_dist(key);
                if d < best_dist {
                    best_dist = d;
                    best = c;
                }
            }
        }
        best
    }

    /// The routing decision for `key` — the dispatch at the heart of the
    /// paper's Algorithm 3 (`nexthop`, lines 15–20).
    pub fn route(&self, key: ChordId) -> RouteDecision {
        self.route_excluding(key, |_| false)
    }

    /// [`RoutingTable::route`] that refuses to hand the key to any node
    /// `is_dead` reports as suspected: the closest-preceding choice skips
    /// dead fingers (falling back to farther-preceding live ones), and
    /// the surrogate is the first *live* entry of the successor list —
    /// exactly the node that owns a dead successor's key range. The
    /// table itself is untouched; suspicion is the caller's state, so a
    /// recovered node routes normally again the moment the caller stops
    /// reporting it.
    pub fn route_excluding(&self, key: ChordId, is_dead: impl Fn(u64) -> bool) -> RouteDecision {
        if self.owns(key) {
            return RouteDecision::Local;
        }
        let mut best = self.me;
        let mut best_dist = u64::MAX;
        let candidates = self
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(self.successors.iter().copied());
        for c in candidates {
            if is_dead(c.id.0) {
                continue;
            }
            if c.id.in_open(self.me.id, key) {
                let d = c.id.cw_dist(key);
                if d < best_dist {
                    best_dist = d;
                    best = c;
                }
            }
        }
        if best.id == self.me.id {
            match self.successors.iter().find(|s| !is_dead(s.id.0)) {
                // No live node precedes the key: the first live successor
                // owns it (it inherited every dead predecessor's range).
                Some(s) => RouteDecision::Surrogate(*s),
                // Everyone we know is dead: answer locally as a last
                // resort rather than routing into a void.
                None => RouteDecision::Local,
            }
        } else {
            RouteDecision::Forward(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64) -> NodeRef {
        // Address derived from id for readability.
        NodeRef::new(id, (id % 1000) as usize)
    }

    fn table_with(me: u64, others: &[u64]) -> RoutingTable {
        let mut t = RoutingTable::new(node(me), DEFAULT_SUCCESSORS);
        for (i, &o) in others.iter().enumerate() {
            t.add_successor(node(o));
            t.set_finger(i, Some(node(o)));
        }
        t
    }

    #[test]
    fn successor_list_sorted_and_capped() {
        let mut t = RoutingTable::new(node(100), 3);
        for id in [500, 200, 900, 300, 150] {
            t.add_successor(node(id));
        }
        let ids: Vec<u64> = t.successors().iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![150, 200, 300]);
        assert_eq!(t.successor().unwrap().id.0, 150);
        // Duplicates are ignored.
        t.add_successor(node(150));
        assert_eq!(t.successors().len(), 3);
        // Own id is ignored.
        t.add_successor(node(100));
        assert_eq!(t.successors().len(), 3);
    }

    #[test]
    fn successor_list_wraps() {
        let mut t = RoutingTable::new(node(u64::MAX - 10), 4);
        t.add_successor(node(5));
        t.add_successor(node(u64::MAX - 2));
        let ids: Vec<u64> = t.successors().iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![u64::MAX - 2, 5]);
    }

    #[test]
    fn ownership() {
        let mut t = RoutingTable::new(node(100), 16);
        // No predecessor: owns everything.
        assert!(t.owns(ChordId(0)));
        t.set_predecessor(Some(node(50)));
        assert!(t.owns(ChordId(100)));
        assert!(t.owns(ChordId(51)));
        assert!(!t.owns(ChordId(50)));
        assert!(!t.owns(ChordId(101)));
        assert!(!t.owns(ChordId(0)));
    }

    #[test]
    fn closest_preceding_picks_nearest_before_key() {
        let t = table_with(100, &[200, 400, 800]);
        assert_eq!(t.closest_preceding(ChordId(500)).id.0, 400);
        assert_eq!(t.closest_preceding(ChordId(900)).id.0, 800);
        assert_eq!(t.closest_preceding(ChordId(250)).id.0, 200);
        // Nothing in (100, 150): me.
        assert_eq!(t.closest_preceding(ChordId(150)).id.0, 100);
        // Entry exactly at key is NOT in the open interval.
        assert_eq!(t.closest_preceding(ChordId(200)).id.0, 100);
    }

    #[test]
    fn route_decisions() {
        let mut t = table_with(100, &[200, 400, 800]);
        t.set_predecessor(Some(node(900)));
        // Owned keys (wrapping from 900 through 100).
        assert_eq!(t.route(ChordId(950)), RouteDecision::Local);
        assert_eq!(t.route(ChordId(100)), RouteDecision::Local);
        assert_eq!(t.route(ChordId(0)), RouteDecision::Local);
        // Key just past me, before first successor: surrogate.
        assert_eq!(t.route(ChordId(150)), RouteDecision::Surrogate(node(200)));
        assert_eq!(t.route(ChordId(200)), RouteDecision::Surrogate(node(200)));
        // Far keys: forward to the closest preceding entry.
        assert_eq!(t.route(ChordId(500)), RouteDecision::Forward(node(400)));
        assert_eq!(t.route(ChordId(850)), RouteDecision::Forward(node(800)));
    }

    #[test]
    fn remove_scrubs_all_slots() {
        let mut t = table_with(100, &[200, 400]);
        t.set_predecessor(Some(node(400)));
        t.remove(node(400));
        assert!(t.successors().iter().all(|n| n.id.0 != 400));
        assert!(t.predecessor().is_none());
        assert!((0..FINGER_ROWS).all(|i| t.finger(i).map(|n| n.id.0) != Some(400)));
    }

    #[test]
    fn known_nodes_deduplicates() {
        let mut t = table_with(100, &[200, 400]);
        t.set_predecessor(Some(node(400)));
        let known = t.known_nodes();
        let ids: Vec<u64> = known.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![200, 400]);
    }

    #[test]
    fn stale_self_reference_under_old_id_is_rejected() {
        // After a leave/rejoin migration the host keeps its address but
        // changes id; peers may still hand back the old identity. It must
        // never enter the table, or routing would forward to ourselves.
        let mut t = RoutingTable::new(NodeRef::new(500, 5), DEFAULT_SUCCESSORS);
        let ghost = NodeRef::new(100, 5); // same address, stale id
        t.add_successor(ghost);
        assert!(t.successors().is_empty());
        t.set_finger(0, Some(ghost));
        assert!(t.finger(0).is_none());
        t.set_predecessor(Some(ghost));
        assert!(t.predecessor().is_none());
    }

    #[test]
    fn lone_node_routes_local() {
        let t = RoutingTable::new(node(42), 16);
        assert_eq!(t.route(ChordId(7)), RouteDecision::Local);
    }

    #[test]
    fn route_excluding_skips_dead_forward_target() {
        let mut t = table_with(100, &[200, 400, 800]);
        t.set_predecessor(Some(node(900)));
        // Normally 400 is the closest preceding node for key 500; with
        // 400 suspected, routing falls back to the next-best live entry.
        assert_eq!(t.route(ChordId(500)), RouteDecision::Forward(node(400)));
        let dead = |id: u64| id == 400;
        assert_eq!(
            t.route_excluding(ChordId(500), dead),
            RouteDecision::Forward(node(200))
        );
    }

    #[test]
    fn route_excluding_surrogate_is_first_live_successor() {
        let mut t = table_with(100, &[200, 400, 800]);
        t.set_predecessor(Some(node(900)));
        // Key 150 is owned by successor 200; with 200 dead its range is
        // inherited by the next live successor, 400.
        assert_eq!(t.route(ChordId(150)), RouteDecision::Surrogate(node(200)));
        assert_eq!(
            t.route_excluding(ChordId(150), |id| id == 200),
            RouteDecision::Surrogate(node(400))
        );
        // With every successor dead, answering locally is the last resort.
        assert_eq!(
            t.route_excluding(ChordId(150), |_| true),
            RouteDecision::Local
        );
    }

    #[test]
    fn route_excluding_ownership_unaffected_by_suspicion() {
        let mut t = table_with(100, &[200]);
        t.set_predecessor(Some(node(900)));
        assert_eq!(
            t.route_excluding(ChordId(50), |_| true),
            RouteDecision::Local
        );
    }
}
