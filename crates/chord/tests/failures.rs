//! Failure handling: crash a fraction of a converged ring and assert
//! that the survivors detect the failures, repair the ring, and keep
//! answering lookups correctly.

use chord::id::{ChordId, NodeRef};
use chord::protocol::{ChordAgent, ChordConfig, ChordMsg};
use chord::ring::OracleRing;
use rand::RngCore;
use simnet::{AgentId, Sim, SimRng, SimTime, Topology};

fn build_converged(n: usize, seed: u64) -> (Sim<ChordAgent>, OracleRing) {
    let mut rng = SimRng::new(seed);
    let ring = OracleRing::with_random_ids(n, &mut rng);
    let topo = Topology::king_like(n, seed ^ 0xFA11, 180.0);
    let cfg = ChordConfig {
        pns_candidates: 0,
        ..ChordConfig::default()
    };
    let mut by_addr: Vec<Option<NodeRef>> = vec![None; n];
    for node in ring.nodes() {
        by_addr[node.addr.0] = Some(*node);
    }
    let agents: Vec<ChordAgent> = by_addr
        .into_iter()
        .map(|nr| ChordAgent::new(nr.expect("gap"), cfg.clone()))
        .collect();
    let mut sim = Sim::new(topo, agents, seed);
    let bootstrap = *ring.nodes().iter().find(|nd| nd.addr.0 == 0).unwrap();
    sim.inject(SimTime::ZERO, AgentId(0), ChordMsg::StartJoin { bootstrap });
    let mut jrng = SimRng::new(seed).fork(0x70);
    for addr in 1..n {
        let at = SimTime::from_millis(500 + jrng.below(20_000));
        sim.inject(at, AgentId(addr), ChordMsg::StartJoin { bootstrap });
    }
    sim.run_until(SimTime::from_secs(120));
    (sim, ring)
}

/// The expected successor of position `i` skipping dead addresses.
fn next_alive(ring: &OracleRing, i: usize, dead: &[bool]) -> NodeRef {
    let n = ring.len();
    for step in 1..n {
        let cand = ring.nodes()[(i + step) % n];
        if !dead[cand.addr.0] {
            return cand;
        }
    }
    ring.nodes()[i]
}

#[test]
fn ring_repairs_after_crashes() {
    let n = 32;
    let (mut sim, ring) = build_converged(n, 21);
    // Crash 6 nodes at t=121s.
    let mut dead = vec![false; n];
    let mut krng = SimRng::new(99);
    let mut killed = 0;
    while killed < 6 {
        let a = krng.index(n);
        if !dead[a] {
            dead[a] = true;
            killed += 1;
            sim.inject(SimTime::from_secs(121), AgentId(a), ChordMsg::Fail);
        }
    }
    // Give detection (1 ping/tick round-robin over ~40 known nodes) and
    // repair time.
    sim.run_until(SimTime::from_secs(300));

    for (i, node) in ring.nodes().iter().enumerate() {
        if dead[node.addr.0] {
            continue;
        }
        let agent = sim.agent(node.addr);
        assert!(agent.alive);
        let succ = agent.table.successor().expect("survivor has a successor");
        assert!(
            !dead[succ.addr.0],
            "node {i} still points at dead successor {succ:?}"
        );
        assert_eq!(
            succ,
            next_alive(&ring, i, &dead),
            "node {i} has the wrong repaired successor"
        );
    }
}

#[test]
fn lookups_survive_crashes() {
    let n = 32;
    let (mut sim, ring) = build_converged(n, 22);
    let mut dead = vec![false; n];
    for a in [3usize, 11, 17, 26] {
        dead[a] = true;
        sim.inject(SimTime::from_secs(121), AgentId(a), ChordMsg::Fail);
    }
    // Let repair settle, then issue lookups from survivors.
    sim.run_until(SimTime::from_secs(320));
    let mut qrng = SimRng::new(5);
    let mut expected = Vec::new();
    for t in 0..40u64 {
        let key = ChordId(qrng.next_u64());
        let mut from = qrng.index(n);
        while dead[from] {
            from = qrng.index(n);
        }
        sim.inject(
            SimTime::from_secs(320 + t),
            AgentId(from),
            ChordMsg::StartLookup { key },
        );
        expected.push((from, key));
    }
    sim.run_until(SimTime::from_secs(600));

    for (from, key) in expected {
        let agent = sim.agent(AgentId(from));
        let answered = agent.lookups.iter().find(|l| l.key == key);
        let abandoned = agent.failed_lookups.contains(&key);
        assert!(
            answered.is_some() || abandoned,
            "lookup {key:?} from {from} neither answered nor abandoned"
        );
        if let Some(r) = answered {
            // The correct owner among survivors: the first alive node at
            // or after the key.
            let mut owner = ring.owner_of(key);
            let mut i = ring
                .nodes()
                .iter()
                .position(|nd| nd.id == owner.id)
                .unwrap();
            while dead[owner.addr.0] {
                i = (i + 1) % n;
                owner = ring.nodes()[i];
            }
            assert_eq!(r.owner, owner, "lookup {key:?} found the wrong owner");
            assert!(!dead[r.owner.addr.0]);
        }
    }
    // The vast majority must actually be answered, not abandoned.
    let answered: usize = sim.agents().map(|a| a.lookups.len()).sum();
    assert!(
        answered >= 36,
        "only {answered}/40 lookups answered after repair"
    );
}

#[test]
fn healthy_ring_reports_no_failures() {
    let n = 16;
    let (mut sim, _ring) = build_converged(n, 23);
    sim.run_until(SimTime::from_secs(250));
    for a in 0..n {
        let agent = sim.agent(AgentId(a));
        assert!(agent.failed_lookups.is_empty());
        assert!(agent.alive);
        assert!(agent.table.successor().is_some());
    }
}

#[test]
fn lookups_survive_a_lossy_network() {
    // 5% of cross-host messages vanish; the retry machinery must still
    // answer (almost) every lookup correctly.
    let n = 24;
    let (mut sim, ring) = build_converged(n, 24);
    sim.set_loss_rate(0.05);
    let mut qrng = SimRng::new(6);
    let mut expected = Vec::new();
    for t in 0..40u64 {
        let key = ChordId(qrng.next_u64());
        let from = qrng.index(n);
        sim.inject(
            SimTime::from_secs(130 + t),
            AgentId(from),
            ChordMsg::StartLookup { key },
        );
        expected.push((from, key));
    }
    sim.run_until(SimTime::from_secs(500));
    assert!(sim.stats().dropped > 0, "loss model must actually drop");

    let mut answered = 0;
    for (from, key) in expected {
        if let Some(r) = sim
            .agent(AgentId(from))
            .lookups
            .iter()
            .find(|l| l.key == key)
        {
            assert_eq!(r.owner.id, ring.owner_of(key).id, "wrong owner for {key:?}");
            answered += 1;
        }
    }
    assert!(answered >= 36, "only {answered}/40 answered under 5% loss");
}

#[test]
fn leave_and_rejoin_with_chosen_id_converges() {
    // The paper's migration primitive: a (light) node leaves and rejoins
    // at a split point chosen by a heavy node. At the protocol level:
    // Leave -> ring heals around the gap -> Rejoin with the new id ->
    // ring converges to the new membership.
    let n = 24;
    let (mut sim, ring) = build_converged(n, 25);

    // Pick a mover and a target id: the midpoint of the widest gap
    // between two other nodes (guaranteed unoccupied).
    let mover = 5usize;
    let mover_old = ring
        .nodes()
        .iter()
        .find(|nd| nd.addr.0 == mover)
        .unwrap()
        .id;
    let mut widest = (0u64, 0u64);
    for (i, nd) in ring.nodes().iter().enumerate() {
        let next = ring.next_of(i);
        let gap = nd.id.cw_dist(next.id);
        if gap > widest.0 && nd.addr.0 != mover && next.addr.0 != mover {
            widest = (gap, nd.id.0.wrapping_add(gap / 2));
        }
    }
    let new_id = ChordId(widest.1);
    assert_ne!(new_id, mover_old);

    sim.inject(SimTime::from_secs(121), AgentId(mover), ChordMsg::Leave);
    let bootstrap = *ring.nodes().iter().find(|nd| nd.addr.0 == 0).unwrap();
    sim.inject(
        SimTime::from_secs(200),
        AgentId(mover),
        ChordMsg::Rejoin { new_id, bootstrap },
    );
    sim.run_until(SimTime::from_secs(420));

    // Expected membership: everyone else unchanged, mover at new_id.
    let mut expect: Vec<NodeRef> = ring
        .nodes()
        .iter()
        .filter(|nd| nd.addr.0 != mover)
        .copied()
        .collect();
    expect.push(NodeRef {
        id: new_id,
        addr: AgentId(mover),
    });
    let healed = OracleRing::new(expect);
    for (i, node) in healed.nodes().iter().enumerate() {
        let agent = sim.agent(node.addr);
        assert!(agent.joined(), "node {:?} not joined", node);
        assert_eq!(
            agent.table.me().id,
            node.id,
            "mover should carry its new id"
        );
        assert_eq!(
            agent.table.successor().unwrap(),
            healed.next_of(i),
            "node {node:?} wrong successor after migration"
        );
        assert_eq!(
            agent.table.predecessor().unwrap(),
            healed.prev_of(i),
            "node {node:?} wrong predecessor after migration"
        );
    }
}
