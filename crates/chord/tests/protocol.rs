//! Protocol-level integration tests: live joins converge to the oracle
//! ring state, and lookups against the converged ring are correct — the
//! justification for the experiments' pre-stabilized shortcut.

use chord::id::{ChordId, NodeRef};
use chord::protocol::{ChordAgent, ChordConfig, ChordMsg};
use chord::ring::OracleRing;
use chord::table::FINGER_ROWS;
use rand::RngCore;
use simnet::{AgentId, Sim, SimRng, SimTime, Topology};

fn build_sim(n: usize, seed: u64, pns: usize) -> (Sim<ChordAgent>, OracleRing) {
    let mut rng = SimRng::new(seed);
    let ring = OracleRing::with_random_ids(n, &mut rng);
    let topo = Topology::king_like(n, seed ^ 0xA5A5, 180.0);
    let cfg = ChordConfig {
        pns_candidates: pns,
        ..ChordConfig::default()
    };
    // Agents indexed by address; ids from the oracle ring.
    let mut by_addr: Vec<Option<NodeRef>> = vec![None; n];
    for node in ring.nodes() {
        by_addr[node.addr.0] = Some(*node);
    }
    let agents: Vec<ChordAgent> = by_addr
        .into_iter()
        .map(|nr| ChordAgent::new(nr.expect("gap"), cfg.clone()))
        .collect();
    (Sim::new(topo, agents, seed), ring)
}

/// Drive all joins: node 0 bootstraps itself at t=0, the rest join at
/// staggered random times through an already-joined node.
fn drive_joins(sim: &mut Sim<ChordAgent>, ring: &OracleRing, seed: u64) {
    let n = ring.len();
    let mut rng = SimRng::new(seed).fork(77);
    let bootstrap = NodeRef {
        id: ring.nodes().iter().find(|nd| nd.addr.0 == 0).unwrap().id,
        addr: AgentId(0),
    };
    sim.inject(SimTime::ZERO, AgentId(0), ChordMsg::StartJoin { bootstrap });
    for addr in 1..n {
        let at = SimTime::from_millis(1000 + rng.below(30_000));
        sim.inject(at, AgentId(addr), ChordMsg::StartJoin { bootstrap });
    }
}

#[test]
fn joins_converge_to_oracle_ring() {
    let n = 32;
    let (mut sim, ring) = build_sim(n, 42, 0);
    drive_joins(&mut sim, &ring, 42);
    // Joins finish by ~31 s; give stabilization and finger repair time.
    sim.run_until(SimTime::from_secs(120));

    for (i, node) in ring.nodes().iter().enumerate() {
        let agent = sim.agent(node.addr);
        assert!(agent.joined(), "node {i} never joined");
        let succ = agent.table.successor().expect("successor known");
        assert_eq!(succ, ring.next_of(i), "node {i} has wrong successor");
        let pred = agent.table.predecessor().expect("predecessor known");
        assert_eq!(pred, ring.prev_of(i), "node {i} has wrong predecessor");
        // Successor list must be the next nodes in ring order.
        for (s, got) in agent.table.successors().iter().enumerate() {
            assert_eq!(*got, ring.nodes()[(i + 1 + s) % n], "node {i} succ[{s}]");
        }
    }
}

#[test]
fn fingers_converge_to_ideal_without_pns() {
    let n = 24;
    let (mut sim, ring) = build_sim(n, 7, 0);
    drive_joins(&mut sim, &ring, 7);
    sim.run_until(SimTime::from_secs(180));

    let mut correct = 0u32;
    let mut total = 0u32;
    for node in ring.nodes() {
        let agent = sim.agent(node.addr);
        for row in 0..FINGER_ROWS {
            let start = node.id.finger_start(row as u32);
            let ideal = ring.successor_of(start);
            if ideal.id == node.id {
                continue;
            }
            total += 1;
            if agent.table.finger(row) == Some(ideal) {
                correct += 1;
            }
        }
    }
    // All fingers should have been repaired by now.
    assert_eq!(correct, total, "{correct}/{total} fingers converged");
}

#[test]
fn lookups_on_converged_ring_are_correct() {
    let n = 32;
    let (mut sim, ring) = build_sim(n, 9, 0);
    drive_joins(&mut sim, &ring, 9);
    sim.run_until(SimTime::from_secs(150));

    // Issue lookups from varied nodes for varied keys.
    let mut rng = SimRng::new(123);
    let mut expected: Vec<(usize, ChordId)> = Vec::new();
    for t in 0..50 {
        let key = ChordId(rng.next_u64());
        let from = rng.index(n);
        sim.inject(
            SimTime::from_secs(150 + t),
            AgentId(from),
            ChordMsg::StartLookup { key },
        );
        expected.push((from, key));
    }
    sim.run_until(SimTime::from_secs(400));

    let mut seen = 0;
    for (from, key) in expected {
        let agent = sim.agent(AgentId(from));
        let r = agent
            .lookups
            .iter()
            .find(|l| l.key == key)
            .unwrap_or_else(|| panic!("lookup for {key:?} from {from} unanswered"));
        assert_eq!(r.owner, ring.owner_of(key), "wrong owner for {key:?}");
        assert!(r.hops <= 16, "too many hops: {}", r.hops);
        seen += 1;
    }
    assert_eq!(seen, 50);
}

#[test]
fn pns_lookups_correct_and_faster() {
    let n = 48;
    // Same membership/topology, with and without PNS.
    let run = |pns: usize| {
        let (mut sim, ring) = build_sim(n, 11, pns);
        drive_joins(&mut sim, &ring, 11);
        sim.run_until(SimTime::from_secs(200));
        let mut rng = SimRng::new(5);
        for t in 0..80u64 {
            let key = ChordId(rng.next_u64());
            let from = rng.index(n);
            sim.inject(
                SimTime::from_secs(200) + simnet::SimDuration::from_millis(t * 200),
                AgentId(from),
                ChordMsg::StartLookup { key },
            );
        }
        sim.run_until(SimTime::from_secs(600));
        let mut latencies: Vec<f64> = Vec::new();
        for node in ring.nodes() {
            for l in &sim.agent(node.addr).lookups {
                assert_eq!(l.owner, ring.owner_of(l.key), "pns={pns} wrong owner");
                latencies.push(l.latency.as_millis_f64());
            }
        }
        assert_eq!(latencies.len(), 80, "pns={pns} lost lookups");
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let plain = run(0);
    let pns = run(16);
    assert!(
        pns < plain,
        "PNS should cut mean lookup latency: {pns:.1}ms vs {plain:.1}ms"
    );
}

#[test]
fn telemetry_counts_protocol_traffic() {
    let n = 16;
    let (mut sim, _ring) = build_sim(n, 31, 0);
    let registry = simnet::telemetry::shared();
    for a in 0..n {
        sim.agent_mut(AgentId(a)).attach_telemetry(registry.clone());
    }
    drive_joins(&mut sim, &_ring, 31);
    sim.run_until(SimTime::from_secs(120));

    let mut rng = SimRng::new(8);
    for t in 0..10 {
        let key = ChordId(rng.next_u64());
        let from = rng.index(n);
        sim.inject(
            SimTime::from_secs(120 + t),
            AgentId(from),
            ChordMsg::StartLookup { key },
        );
    }
    sim.run_until(SimTime::from_secs(200));

    let reg = registry.lock().unwrap();
    let completed: usize = sim.agents().map(|a| a.lookups.len()).sum();
    assert_eq!(reg.counter("chord.lookups"), completed as u64);
    let hops = reg.histogram("chord.lookup_hops").expect("hop histogram");
    assert_eq!(hops.count(), completed as u64);
    // Every protocol message kind that maintenance exercises is counted,
    // and the byte total is consistent with a non-trivial run.
    for kind in [
        "chord.msgs.find_successor",
        "chord.msgs.found_successor",
        "chord.msgs.get_predecessor",
        "chord.msgs.predecessor_reply",
        "chord.msgs.notify",
        "chord.msgs.ping",
        "chord.msgs.pong",
    ] {
        assert!(reg.counter(kind) > 0, "{kind} never counted");
    }
    assert!(reg.counter("chord.bytes") > reg.counter("chord.msgs.ping"));
    assert_eq!(reg.counter("chord.failed_lookups"), 0);
}

#[test]
fn rng_next_u64_available() {
    // Guard: tests above rely on SimRng exposing RngCore.
    use rand::RngCore;
    let mut r = SimRng::new(0);
    let _ = r.next_u64();
}
