//! Index-space boundary determination (paper §3.1).
//!
//! Partitioning the index space requires per-dimension bounds `<L, H>`.
//! The paper gives two routes:
//!
//! 1. **From the metric** — a bounded metric bounds every coordinate by
//!    `[0, upper_bound]` directly (an unbounded one is first wrapped in
//!    [`metric::Bounded`], the `d/(1+d)` transform).
//! 2. **From the selection sample** — the minimum and maximum distance
//!    between the landmark set and the initially sampled objects bound
//!    each dimension; later objects falling outside are clamped onto the
//!    boundary by the hash (see `lph`'s `Grid::hash`).

use std::borrow::Borrow;

use metric::Metric;

use crate::mapper::Mapper;

/// Per-dimension index-space bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Boundary {
    /// Per-dimension `(low, high)` pairs, one per landmark.
    pub dims: Vec<(f64, f64)>,
}

impl Boundary {
    /// Number of dimensions.
    pub fn k(&self) -> usize {
        self.dims.len()
    }

    /// Lower bounds per dimension.
    pub fn lows(&self) -> Vec<f64> {
        self.dims.iter().map(|&(l, _)| l).collect()
    }

    /// Upper bounds per dimension.
    pub fn highs(&self) -> Vec<f64> {
        self.dims.iter().map(|&(_, h)| h).collect()
    }
}

/// Boundary route 1: every coordinate of the index space is a distance,
/// so a metric bounded by `B` bounds every dimension by `[0, B]`.
/// Returns `None` for unbounded metrics (wrap them in [`metric::Bounded`]
/// or use [`boundary_from_sample`]).
pub fn boundary_from_metric<Q: ?Sized, M: Metric<Q>>(metric: &M, k: usize) -> Option<Boundary> {
    metric.upper_bound().map(|b| Boundary {
        dims: vec![(0.0, b); k],
    })
}

/// Boundary route 2: map the selection sample and take per-dimension
/// min/max. A small relative margin keeps sample extremes strictly
/// interior so near-boundary queries still have room.
pub fn boundary_from_sample<T, Q, M>(mapper: &Mapper<T, M>, sample: &[T], margin: f64) -> Boundary
where
    T: Borrow<Q>,
    Q: ?Sized,
    M: Metric<Q>,
{
    assert!(!sample.is_empty(), "cannot bound an empty sample");
    assert!(margin >= 0.0);
    let k = mapper.k();
    let mut lo = vec![f64::INFINITY; k];
    let mut hi = vec![f64::NEG_INFINITY; k];
    for s in sample {
        let p = mapper.map(s.borrow());
        for d in 0..k {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let dims = (0..k)
        .map(|d| {
            let span = (hi[d] - lo[d]).max(f64::MIN_POSITIVE);
            let pad = span * margin;
            ((lo[d] - pad).max(0.0), hi[d] + pad)
        })
        .collect();
    Boundary { dims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{Angular, Bounded, SparseVector, L2};

    #[test]
    fn from_bounded_metric() {
        let m = L2::bounded(100, 0.0, 100.0);
        let b = boundary_from_metric(&m, 10).unwrap();
        assert_eq!(b.k(), 10);
        assert_eq!(b.dims[0], (0.0, 1000.0));
        assert_eq!(b.lows(), vec![0.0; 10]);
        assert_eq!(b.highs(), vec![1000.0; 10]);
    }

    #[test]
    fn unbounded_metric_gives_none() {
        assert!(boundary_from_metric::<[f32], _>(&L2::new(), 5).is_none());
        // The d/(1+d) adapter makes it bounded by 1.
        let b = boundary_from_metric::<[f32], _>(&Bounded::new(L2::new()), 5).unwrap();
        assert_eq!(b.dims[0], (0.0, 1.0));
    }

    #[test]
    fn angular_metric_bounded_by_half_pi() {
        let b = boundary_from_metric::<SparseVector, _>(&Angular::new(), 3).unwrap();
        assert!((b.dims[0].1 - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn from_sample_covers_the_sample() {
        let landmarks = vec![vec![0.0f32, 0.0]];
        let mapper = Mapper::new(L2::new(), landmarks);
        let sample: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![5.0, 0.0], vec![3.0, 4.0]];
        let b = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.0);
        assert_eq!(b.k(), 1);
        assert_eq!(b.dims[0], (1.0, 5.0));
        // With a margin the bounds widen (but never below zero).
        let b = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.1);
        assert!(b.dims[0].0 < 1.0 && b.dims[0].0 >= 0.0);
        assert!(b.dims[0].1 > 5.0);
    }

    #[test]
    fn margin_never_goes_negative() {
        let mapper = Mapper::new(L2::new(), vec![vec![0.0f32]]);
        let sample: Vec<Vec<f32>> = vec![vec![0.0], vec![1.0]];
        let b = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.5);
        assert!(b.dims[0].0 >= 0.0);
    }
}
