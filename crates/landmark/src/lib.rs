//! # landmark — from a metric space to the k-dimensional index space
//!
//! Paper §3.1: pick `k` landmark objects `L = {l_1 … l_k}` and map every
//! object `x` to the point `(d(x,l_1), …, d(x,l_k))`. The triangle
//! inequality makes the mapping *contractive* — distances never grow —
//! so a metric range query `(q, r)` is answered by the hypercube of side
//! `2r` around the mapped query point, refined with true distances.
//!
//! This crate implements:
//!
//! * [`select`] — landmark selection: the paper's greedy max-min method
//!   (Algorithm 1), Lloyd's k-means for centroid-capable types, and
//!   k-medoids for black-box metrics;
//! * [`mapper::Mapper`] — the object → index-point mapping;
//! * [`boundary`] — index-space boundary determination, both from the
//!   metric's own bound and from the landmark-selection sample (§3.1,
//!   "Boundary of index space").

pub mod boundary;
pub mod mapper;
pub mod quality;
pub mod select;

pub use boundary::{boundary_from_metric, boundary_from_sample, Boundary};
pub use mapper::Mapper;
pub use quality::{filtering_efficiency, should_refresh};
pub use select::{greedy, kmeans, kmedoids, Centroid, SelectionMethod};
