//! The object → index-point mapping.

use std::borrow::Borrow;

use metric::Metric;
use rayon::prelude::*;

/// Maps objects of a metric space to points in the `k`-dimensional
/// landmark index space: coordinate `i` of `map(x)` is `d(x, l_i)`.
///
/// The mapping is contractive under the L∞ metric on the index space:
/// `|map(x)_i - map(y)_i| = |d(x,l_i) - d(y,l_i)| <= d(x, y)` by the
/// triangle inequality — the property the whole query-superset argument
/// rests on (and which `tests` verify).
///
/// ```
/// use landmark::Mapper;
/// use metric::EditDistance;
///
/// // Any black-box metric works — here, strings under edit distance.
/// let mapper = Mapper::new(EditDistance, vec!["ACGT".to_string(), "TTTT".to_string()]);
/// assert_eq!(&*mapper.map("ACGA"), &[1.0, 4.0]);
/// assert_eq!(&*mapper.map("ACGT"), &[0.0, 3.0]);
/// ```
#[derive(Clone, Debug)]
pub struct Mapper<T, M> {
    metric: M,
    landmarks: Vec<T>,
}

impl<T, M> Mapper<T, M> {
    /// Build from a metric and a non-empty landmark set.
    pub fn new(metric: M, landmarks: Vec<T>) -> Self {
        assert!(!landmarks.is_empty(), "at least one landmark required");
        Mapper { metric, landmarks }
    }

    /// Number of landmarks = dimensionality of the index space.
    pub fn k(&self) -> usize {
        self.landmarks.len()
    }

    /// The landmark objects.
    pub fn landmarks(&self) -> &[T] {
        &self.landmarks
    }

    /// The wrapped metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Map one object to its index point. The exact-sized `Box<[f64]>`
    /// is what index entries store (no capacity slack, one allocation).
    pub fn map<Q>(&self, obj: &Q) -> Box<[f64]>
    where
        Q: ?Sized,
        T: Borrow<Q>,
        M: Metric<Q>,
    {
        self.landmarks
            .iter()
            .map(|l| self.metric.distance(obj, l.borrow()))
            .collect()
    }

    /// Map one object into a caller-provided buffer (cleared first), so
    /// bulk loops can reuse one allocation across objects.
    pub fn map_into<Q>(&self, obj: &Q, out: &mut Vec<f64>)
    where
        Q: ?Sized,
        T: Borrow<Q>,
        M: Metric<Q>,
    {
        out.clear();
        out.extend(
            self.landmarks
                .iter()
                .map(|l| self.metric.distance(obj, l.borrow())),
        );
    }

    /// Map a whole collection, preserving order, fanned out over the
    /// worker threads (each object's `k` landmark distances are an
    /// independent unit of work). Output is deterministic: the parallel
    /// map chunks by contiguous index ranges and concatenates in order,
    /// so this equals the sequential `objs.iter().map(..)` exactly.
    pub fn map_all<Q, B>(&self, objs: &[B]) -> Vec<Vec<f64>>
    where
        Q: ?Sized + Sync,
        B: Borrow<Q> + Sync,
        T: Borrow<Q> + Sync,
        M: Metric<Q> + Sync,
    {
        objs.par_iter()
            .map(|o| self.map(o.borrow()).into_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{EditDistance, L2};

    #[test]
    fn maps_to_landmark_distances() {
        let landmarks = vec![vec![0.0f32, 0.0], vec![10.0, 0.0]];
        let m = Mapper::new(L2::new(), landmarks);
        assert_eq!(m.k(), 2);
        let p = m.map(&[3.0f32, 4.0][..]);
        assert_eq!(&*p, &[5.0, (49.0f64 + 16.0).sqrt()]);
        // A landmark maps to 0 in its own coordinate.
        let p = m.map(&[0.0f32, 0.0][..]);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn contractive_under_linf() {
        let landmarks = vec![vec![0.0f32, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let mapper = Mapper::new(L2::new(), landmarks);
        let pts: Vec<Vec<f32>> = vec![
            vec![1.0, 2.0],
            vec![8.0, 3.0],
            vec![-4.0, 7.0],
            vec![100.0, -50.0],
        ];
        for a in &pts {
            for b in &pts {
                let da = mapper.map(a.as_slice());
                let db = mapper.map(b.as_slice());
                let linf = da
                    .iter()
                    .zip(db.iter())
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                let true_d = L2::new().distance(a, b);
                assert!(linf <= true_d + 1e-9, "mapping expanded: {linf} > {true_d}");
            }
        }
    }

    #[test]
    fn works_with_string_metric() {
        let mapper = Mapper::new(EditDistance, vec!["ACGT".to_string(), "AAAA".to_string()]);
        let p = mapper.map("ACGA");
        assert_eq!(&*p, &[1.0, 2.0]);
    }

    #[test]
    fn map_into_reuses_the_buffer() {
        let mapper = Mapper::new(L2::new(), vec![vec![0.0f32], vec![10.0f32]]);
        let mut buf = Vec::with_capacity(2);
        mapper.map_into(&[3.0f32][..], &mut buf);
        assert_eq!(buf, vec![3.0, 7.0]);
        let cap = buf.capacity();
        mapper.map_into(&[9.0f32][..], &mut buf);
        assert_eq!(buf, vec![9.0, 1.0]);
        assert_eq!(buf.capacity(), cap, "buffer must be reused, not regrown");
    }

    #[test]
    fn map_all_preserves_order() {
        let mapper = Mapper::new(L2::new(), vec![vec![0.0f32]]);
        let pts = [vec![1.0f32], vec![2.0], vec![3.0]];
        let mapped = mapper.map_all::<[f32], _>(&pts);
        assert_eq!(mapped, vec![vec![1.0], vec![2.0], vec![3.0]]);
    }

    #[test]
    fn map_all_matches_map_on_large_input() {
        // Large enough that the parallel path actually fans out.
        let landmarks: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 25.0]).collect();
        let mapper = Mapper::new(L2::new(), landmarks);
        let pts: Vec<Vec<f32>> = (0..2_000).map(|i| vec![(i % 101) as f32]).collect();
        let bulk = mapper.map_all::<[f32], _>(&pts);
        for (p, row) in pts.iter().zip(&bulk) {
            assert_eq!(&*mapper.map(p.as_slice()), row.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn empty_landmarks_rejected() {
        let _: Mapper<Vec<f32>, L2> = Mapper::new(L2::new(), vec![]);
    }
}
