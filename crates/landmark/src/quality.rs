//! Landmark-set quality evaluation.
//!
//! The paper's future-work plan (§6) is to "periodically generate and
//! evaluate" new landmark sets and re-index when a new set outperforms
//! the current one by a threshold. That requires a *score*. The natural
//! one is the tightness of the contractive lower bound the mapping
//! provides: for objects `x, y`,
//!
//! ```text
//! linf(map(x), map(y)) <= d(x, y)
//! ```
//!
//! always holds (see [`crate::mapper`]), and the closer the left side
//! tracks the right, the better the index space filters candidates —
//! a ratio near 1 means range queries touch few false cells, near 0
//! means the landmarks cannot tell objects apart (the paper's greedy/
//! TREC pathology, where most coordinates sit at the metric's maximum).

use std::borrow::Borrow;

use metric::Metric;
use simnet::SimRng;

use crate::mapper::Mapper;

/// Mean `linf(map(x), map(y)) / d(x, y)` over `pairs` random sample
/// pairs (identical pairs are skipped). Returns a value in `[0, 1]`
/// (up to floating-point noise); higher is better.
pub fn filtering_efficiency<T, Q, M>(
    mapper: &Mapper<T, M>,
    sample: &[T],
    pairs: usize,
    rng: &mut SimRng,
) -> f64
where
    T: Borrow<Q>,
    Q: ?Sized,
    M: Metric<Q>,
{
    assert!(sample.len() >= 2, "need at least two objects to compare");
    let mut total = 0.0;
    let mut counted = 0usize;
    let mut attempts = 0usize;
    while counted < pairs && attempts < pairs * 20 {
        attempts += 1;
        let i = rng.index(sample.len());
        let j = rng.index(sample.len());
        if i == j {
            continue;
        }
        let d = mapper
            .metric()
            .distance(sample[i].borrow(), sample[j].borrow());
        if d <= 0.0 {
            continue; // duplicate objects carry no signal
        }
        let mi = mapper.map(sample[i].borrow());
        let mj = mapper.map(sample[j].borrow());
        let linf = mi
            .iter()
            .zip(&mj)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        total += (linf / d).min(1.0);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Decide whether a candidate landmark set should replace the current
/// one: true when the candidate's filtering efficiency exceeds the
/// current one's by at least `threshold` (the paper's "if the new
/// landmark set outperforms the current one according to some
/// threshold").
pub fn should_refresh<T, Q, M>(
    current: &Mapper<T, M>,
    candidate: &Mapper<T, M>,
    sample: &[T],
    pairs: usize,
    threshold: f64,
    rng: &mut SimRng,
) -> bool
where
    T: Borrow<Q>,
    Q: ?Sized,
    M: Metric<Q>,
{
    let cur = filtering_efficiency(current, sample, pairs, &mut rng.fork(1));
    let cand = filtering_efficiency(candidate, sample, pairs, &mut rng.fork(2));
    cand >= cur + threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{greedy, kmeans};
    use metric::L2;

    fn clustered_sample(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SimRng::new(seed);
        let centers = [[10.0f32, 10.0], [90.0, 10.0], [50.0, 90.0]];
        (0..n)
            .map(|_| {
                let c = centers[rng.index(3)];
                vec![
                    c[0] + (rng.f64() as f32 - 0.5) * 8.0,
                    c[1] + (rng.f64() as f32 - 0.5) * 8.0,
                ]
            })
            .collect()
    }

    #[test]
    fn good_landmarks_score_higher_than_degenerate_ones() {
        let sample = clustered_sample(300, 1);
        let metric = L2::new();
        let mut rng = SimRng::new(2);
        let good = Mapper::new(
            metric,
            kmeans::<_, [f32], _>(&metric, &sample, 3, 10, &mut rng),
        );
        // Degenerate: three copies of (almost) the same landmark — its
        // coordinates are redundant, so the L∞ bound is loose.
        let bad = Mapper::new(
            metric,
            vec![
                vec![500.0f32, 500.0],
                vec![500.5, 500.0],
                vec![500.0, 500.5],
            ],
        );
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        let e_good = filtering_efficiency::<_, [f32], _>(&good, &sample, 400, &mut r1);
        let e_bad = filtering_efficiency::<_, [f32], _>(&bad, &sample, 400, &mut r2);
        assert!(
            e_good > e_bad + 0.1,
            "good {e_good:.3} should beat degenerate {e_bad:.3}"
        );
        assert!((0.0..=1.0 + 1e-9).contains(&e_good));
        assert!((0.0..=1.0 + 1e-9).contains(&e_bad));
    }

    #[test]
    fn efficiency_is_deterministic_in_rng() {
        let sample = clustered_sample(100, 4);
        let metric = L2::new();
        let mut rng = SimRng::new(5);
        let m = Mapper::new(metric, greedy::<_, [f32], _>(&metric, &sample, 3, &mut rng));
        let a = filtering_efficiency::<_, [f32], _>(&m, &sample, 200, &mut SimRng::new(9));
        let b = filtering_efficiency::<_, [f32], _>(&m, &sample, 200, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn should_refresh_requires_threshold_improvement() {
        let sample = clustered_sample(300, 6);
        let metric = L2::new();
        let mut rng = SimRng::new(7);
        let good = Mapper::new(
            metric,
            kmeans::<_, [f32], _>(&metric, &sample, 3, 10, &mut rng),
        );
        let bad = Mapper::new(metric, vec![vec![500.0f32, 500.0], vec![500.5, 500.0]]);
        let mut r = SimRng::new(8);
        assert!(should_refresh::<_, [f32], _>(
            &bad, &good, &sample, 300, 0.05, &mut r
        ));
        // The reverse replacement must be rejected.
        let mut r = SimRng::new(8);
        assert!(!should_refresh::<_, [f32], _>(
            &good, &bad, &sample, 300, 0.05, &mut r
        ));
        // A set never beats itself by a positive threshold.
        let mut r = SimRng::new(8);
        assert!(!should_refresh::<_, [f32], _>(
            &good, &good, &sample, 300, 0.05, &mut r
        ));
    }
}
