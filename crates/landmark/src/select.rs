//! Landmark selection.
//!
//! Paper §3.1: a well-known node samples a set `S` of data objects from
//! the network, then either
//!
//! * greedily picks the object of `S` farthest from the already-chosen
//!   set (Algorithm 1 — `GreedySelection`), which keeps landmarks
//!   dispersed, or
//! * clusters `S` and uses the cluster *centroids* as landmarks
//!   (the "k-mean clustering method").
//!
//! Centroids only exist for types with an averaging operation, captured
//! by the [`Centroid`] trait (dense vectors, sparse TF/IDF vectors). For
//! true black-box metrics, [`kmedoids`] restricts centers to sample
//! objects and needs nothing but the distance function.

use std::borrow::Borrow;

use metric::Metric;
use rayon::prelude::*;
use simnet::SimRng;

/// Distance from every sample object to `to`, computed in parallel.
/// Deterministic: the parallel map is a chunk-ordered fan-out, so the
/// result equals the sequential `sample.iter().map(..)` exactly.
fn distances_to<T, Q, M>(metric: &M, sample: &[T], to: &Q) -> Vec<f64>
where
    T: Borrow<Q> + Sync,
    Q: ?Sized + Sync,
    M: Metric<Q> + Sync,
{
    sample
        .par_iter()
        .map(|s| metric.distance(s.borrow(), to))
        .collect()
}

/// Which landmark selection scheme an experiment uses. The paper's plots
/// label configurations `Greedy-k` and `KMean-k`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionMethod {
    /// Algorithm 1, greedy max-min.
    Greedy,
    /// Lloyd's k-means on the sample; landmarks are cluster centroids.
    KMeans,
    /// k-medoids (PAM-style); landmarks are sample objects.
    KMedoids,
}

impl std::fmt::Display for SelectionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionMethod::Greedy => write!(f, "Greedy"),
            SelectionMethod::KMeans => write!(f, "KMean"),
            SelectionMethod::KMedoids => write!(f, "KMedoid"),
        }
    }
}

/// Algorithm 1 — `GreedySelection`.
///
/// Starts from a random sample object and repeatedly adds the object
/// with the maximum distance to the chosen set (distance of an object to
/// a set being the minimum over the set's elements).
pub fn greedy<T, Q, M>(metric: &M, sample: &[T], k: usize, rng: &mut SimRng) -> Vec<T>
where
    T: Clone + Borrow<Q> + Sync,
    Q: ?Sized + Sync,
    M: Metric<Q> + Sync,
{
    assert!(k >= 1, "need at least one landmark");
    assert!(
        sample.len() >= k,
        "sample of {} cannot yield {k} landmarks",
        sample.len()
    );
    let first = rng.index(sample.len());
    let mut chosen_idx = vec![first];
    // min-distance of each sample object to the chosen set, maintained
    // incrementally (classic farthest-point traversal). Each round's
    // sample-to-new-landmark distance pass fans out over worker threads;
    // the argmax and min-merge stay sequential so picks are reproducible.
    let mut min_d = distances_to(metric, sample, sample[first].borrow());
    while chosen_idx.len() < k {
        // argmax of min_d, deterministic tie-break by index.
        let (best, _) =
            min_d
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bd), (i, &d)| {
                    if d > bd {
                        (i, d)
                    } else {
                        (bi, bd)
                    }
                });
        chosen_idx.push(best);
        let new_d = distances_to(metric, sample, sample[best].borrow());
        for (m, d) in min_d.iter_mut().zip(new_d) {
            if d < *m {
                *m = d;
            }
        }
    }
    chosen_idx.into_iter().map(|i| sample[i].clone()).collect()
}

/// Types that support averaging a group of members into a centroid.
pub trait Centroid: Sized + Clone {
    /// The mean of a non-empty set of members.
    fn centroid(members: &[&Self]) -> Self;
}

impl Centroid for Vec<f32> {
    fn centroid(members: &[&Self]) -> Self {
        assert!(!members.is_empty());
        let dims = members[0].len();
        let mut acc = vec![0.0f64; dims];
        for m in members {
            assert_eq!(m.len(), dims);
            for (a, &x) in acc.iter_mut().zip(m.iter()) {
                *a += x as f64;
            }
        }
        let n = members.len() as f64;
        acc.into_iter().map(|a| (a / n) as f32).collect()
    }
}

impl Centroid for metric::SparseVector {
    fn centroid(members: &[&Self]) -> Self {
        assert!(!members.is_empty());
        // Sparse accumulate; the centroid of many sparse documents is
        // dense-ish — exactly the property the paper's TREC discussion
        // relies on (centroid landmarks have many terms).
        let mut acc: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for m in members {
            for &(t, w) in m.terms() {
                *acc.entry(t).or_insert(0.0) += w as f64;
            }
        }
        let n = members.len() as f64;
        let mut pairs: Vec<(u32, f32)> =
            acc.into_iter().map(|(t, w)| (t, (w / n) as f32)).collect();
        // Standard text-clustering centroid pruning: keep the heaviest
        // terms so k-means iterations stay O(pruned) per distance. The
        // retained mass dominates the angle; 4096 terms is far denser
        // than any document (paper Table 2 max: 676), preserving the
        // dense-centroid property the TREC experiment depends on.
        const MAX_CENTROID_TERMS: usize = 4096;
        if pairs.len() > MAX_CENTROID_TERMS {
            pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            pairs.truncate(MAX_CENTROID_TERMS);
        }
        metric::SparseVector::new(pairs)
    }
}

/// Lloyd's k-means over the sample; returns the `k` centroids.
///
/// Initialization is k-means++ style (first center random, subsequent
/// centers sampled proportional to squared distance), which is standard
/// practice and keeps the result quality independent of luck. Empty
/// clusters are reseeded from the sample.
pub fn kmeans<T, Q, M>(metric: &M, sample: &[T], k: usize, iters: usize, rng: &mut SimRng) -> Vec<T>
where
    T: Centroid + Borrow<Q> + Sync,
    Q: ?Sized + Sync,
    M: Metric<Q> + Sync,
{
    assert!(k >= 1);
    assert!(sample.len() >= k);
    // --- k-means++ seeding ---
    // Distance passes fan out over worker threads; everything that
    // consumes the RNG or merges results stays sequential, so seeding is
    // byte-identical to the single-threaded version.
    let mut centers: Vec<T> = Vec::with_capacity(k);
    centers.push(sample[rng.index(sample.len())].clone());
    let mut d2: Vec<f64> = distances_to(metric, sample, centers[0].borrow())
        .into_iter()
        .map(|d| d * d)
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.index(sample.len())
        } else {
            let mut target = rng.f64() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centers.push(sample[pick].clone());
        let new_d = distances_to(metric, sample, centers.last().unwrap().borrow());
        for (m, d) in d2.iter_mut().zip(new_d) {
            let dd = d * d;
            if dd < *m {
                *m = dd;
            }
        }
    }
    // --- Lloyd iterations ---
    let mut assignment = vec![0usize; sample.len()];
    for _ in 0..iters {
        let mut changed = false;
        // Assignment is embarrassingly parallel: each object's nearest
        // center is independent, ties break by center index in every
        // thread identically.
        let best_center: Vec<usize> = sample
            .par_iter()
            .map(|s| {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let d = metric.distance(s.borrow(), center.borrow());
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
            .collect();
        for (i, best) in best_center.into_iter().enumerate() {
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            let members: Vec<&T> = sample
                .iter()
                .enumerate()
                .filter(|(i, _)| assignment[*i] == c)
                .map(|(_, s)| s)
                .collect();
            if members.is_empty() {
                *center = sample[rng.index(sample.len())].clone();
                changed = true;
            } else {
                *center = T::centroid(&members);
            }
        }
        if !changed {
            break;
        }
    }
    centers
}

/// PAM-style k-medoids: like k-means, but centers are restricted to
/// sample objects, so only the black-box distance is needed.
pub fn kmedoids<T, Q, M>(
    metric: &M,
    sample: &[T],
    k: usize,
    iters: usize,
    rng: &mut SimRng,
) -> Vec<T>
where
    T: Clone + Borrow<Q>,
    Q: ?Sized,
    M: Metric<Q>,
{
    assert!(k >= 1);
    assert!(sample.len() >= k);
    // Seed with the greedy method (dispersed start).
    let mut medoid_idx: Vec<usize> = {
        let first = rng.index(sample.len());
        let mut chosen = vec![first];
        let mut min_d: Vec<f64> = sample
            .iter()
            .map(|s| metric.distance(s.borrow(), sample[first].borrow()))
            .collect();
        while chosen.len() < k {
            let (best, _) =
                min_d
                    .iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |(bi, bd), (i, &d)| {
                        if d > bd {
                            (i, d)
                        } else {
                            (bi, bd)
                        }
                    });
            chosen.push(best);
            for (i, s) in sample.iter().enumerate() {
                let d = metric.distance(s.borrow(), sample[best].borrow());
                if d < min_d[i] {
                    min_d[i] = d;
                }
            }
        }
        chosen
    };
    let mut assignment = vec![0usize; sample.len()];
    for _ in 0..iters {
        // Assign.
        for (i, s) in sample.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &mi) in medoid_idx.iter().enumerate() {
                let d = metric.distance(s.borrow(), sample[mi].borrow());
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update: per cluster, the member minimizing total in-cluster
        // distance becomes the medoid.
        let mut changed = false;
        for (c, medoid) in medoid_idx.iter_mut().enumerate() {
            let members: Vec<usize> = (0..sample.len()).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = *medoid;
            let mut best_cost = f64::INFINITY;
            for &cand in &members {
                let cost: f64 = members
                    .iter()
                    .map(|&i| metric.distance(sample[i].borrow(), sample[cand].borrow()))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    medoid_idx.into_iter().map(|i| sample[i].clone()).collect()
}

/// Minimum pairwise distance within a landmark set — the dispersion
/// diagnostic the paper's discussion of landmark quality appeals to
/// ("keep these landmark points dispersive").
pub fn min_separation<T, Q, M>(metric: &M, landmarks: &[T]) -> f64
where
    T: Borrow<Q>,
    Q: ?Sized,
    M: Metric<Q>,
{
    let mut best = f64::INFINITY;
    for i in 0..landmarks.len() {
        for j in (i + 1)..landmarks.len() {
            best = best.min(metric.distance(landmarks[i].borrow(), landmarks[j].borrow()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric::{EditDistance, SparseVector, L2};

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    /// Two tight, well-separated clusters of 1-D points.
    fn two_clusters() -> Vec<Vec<f32>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![i as f32 * 0.1]);
            v.push(vec![100.0 + i as f32 * 0.1]);
        }
        v
    }

    #[test]
    fn greedy_returns_k_dispersed_landmarks() {
        let sample = two_clusters();
        let lms = greedy::<_, [f32], _>(&L2::new(), &sample, 2, &mut rng());
        assert_eq!(lms.len(), 2);
        // One landmark per cluster: the greedy max-min rule guarantees
        // the second pick is in the other cluster.
        let sep = min_separation::<_, [f32], _>(&L2::new(), &lms);
        assert!(sep > 90.0, "landmarks not dispersed: {sep}");
    }

    #[test]
    fn greedy_is_deterministic_in_seed() {
        let sample = two_clusters();
        let a = greedy::<_, [f32], _>(&L2::new(), &sample, 3, &mut SimRng::new(7));
        let b = greedy::<_, [f32], _>(&L2::new(), &sample, 3, &mut SimRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_on_strings() {
        let sample: Vec<String> = ["AAAA", "AAAT", "TTTT", "TTTA", "GGGG"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let lms = greedy::<_, str, _>(&EditDistance, &sample, 3, &mut rng());
        assert_eq!(lms.len(), 3);
        let sep = min_separation::<_, str, _>(&EditDistance, &lms);
        assert!(sep >= 3.0, "string landmarks bunched: {sep}");
    }

    #[test]
    fn kmeans_finds_cluster_centers() {
        let sample = two_clusters();
        let centers = kmeans::<_, [f32], _>(&L2::new(), &sample, 2, 20, &mut rng());
        assert_eq!(centers.len(), 2);
        let mut means: Vec<f32> = centers.iter().map(|c| c[0]).collect();
        means.sort_by(|a, b| a.total_cmp(b));
        // True cluster means are 0.45 and 100.45.
        assert!((means[0] - 0.45).abs() < 0.2, "low center {}", means[0]);
        assert!((means[1] - 100.45).abs() < 0.2, "high center {}", means[1]);
    }

    #[test]
    fn kmeans_centroid_of_vec() {
        let a = vec![0.0f32, 2.0];
        let b = vec![2.0f32, 4.0];
        let c = Vec::<f32>::centroid(&[&a, &b]);
        assert_eq!(c, vec![1.0, 3.0]);
    }

    #[test]
    fn sparse_centroid_is_denser_than_members() {
        // The paper's TREC observation: centroids of sparse documents
        // have more terms than any member.
        let docs = [
            SparseVector::new(vec![(1, 1.0), (2, 1.0)]),
            SparseVector::new(vec![(3, 1.0), (4, 1.0)]),
            SparseVector::new(vec![(5, 1.0), (1, 1.0)]),
        ];
        let refs: Vec<&SparseVector> = docs.iter().collect();
        let c = SparseVector::centroid(&refs);
        assert_eq!(c.nnz(), 5);
        assert!(c.nnz() > docs.iter().map(|d| d.nnz()).max().unwrap());
    }

    #[test]
    fn kmedoids_picks_sample_objects() {
        let sample = two_clusters();
        let meds = kmedoids::<_, [f32], _>(&L2::new(), &sample, 2, 10, &mut rng());
        assert_eq!(meds.len(), 2);
        for m in &meds {
            assert!(sample.contains(m), "medoid must be a sample object");
        }
        let sep = min_separation::<_, [f32], _>(&L2::new(), &meds);
        assert!(sep > 90.0);
    }

    #[test]
    fn selection_method_labels() {
        assert_eq!(SelectionMethod::Greedy.to_string(), "Greedy");
        assert_eq!(SelectionMethod::KMeans.to_string(), "KMean");
        assert_eq!(SelectionMethod::KMedoids.to_string(), "KMedoid");
    }

    #[test]
    #[should_panic(expected = "cannot yield")]
    fn greedy_rejects_undersized_sample() {
        let sample = vec![vec![0.0f32]];
        let _ = greedy::<_, [f32], _>(&L2::new(), &sample, 2, &mut rng());
    }
}
