//! Property tests: the landmark mapping is contractive (the superset
//! guarantee of the whole architecture) for every selection method and
//! several metrics.

use landmark::{boundary_from_sample, greedy, kmeans, kmedoids, Mapper};
use metric::{EditDistance, Metric, L2};
use proptest::prelude::*;
use simnet::SimRng;

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Lexicographic total order on float vectors (NaN-safe, unlike the
/// `PartialOrd` for `Vec<f32>`).
fn lex(a: &[f32], b: &[f32]) -> std::cmp::Ordering {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or_else(|| a.len().cmp(&b.len()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_contracts_l2(
        sample in prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 4), 10..40),
        a in prop::collection::vec(-50.0f32..50.0, 4),
        b in prop::collection::vec(-50.0f32..50.0, 4),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let metric = L2::new();
        for landmarks in [
            greedy::<_, [f32], _>(&metric, &sample, 4, &mut rng),
            kmeans::<_, [f32], _>(&metric, &sample, 4, 5, &mut rng),
            kmedoids::<_, [f32], _>(&metric, &sample, 4, 5, &mut rng),
        ] {
            let mapper = Mapper::new(metric, landmarks);
            let ma = mapper.map(a.as_slice());
            let mb = mapper.map(b.as_slice());
            let d = metric.distance(&a, &b);
            prop_assert!(linf(&ma, &mb) <= d + 1e-6,
                "mapping expanded {} > {}", linf(&ma, &mb), d);
        }
    }

    #[test]
    fn mapping_contracts_edit_distance(
        sample in prop::collection::vec("[ACGT]{4,12}", 6..20),
        a in "[ACGT]{0,16}",
        b in "[ACGT]{0,16}",
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let landmarks = greedy::<_, str, _>(&EditDistance, &sample, 3, &mut rng);
        let mapper = Mapper::new(EditDistance, landmarks);
        let ma = mapper.map(a.as_str());
        let mb = mapper.map(b.as_str());
        let d: f64 = Metric::<str>::distance(&EditDistance, &a, &b);
        prop_assert!(linf(&ma, &mb) <= d + 1e-9);
    }

    #[test]
    fn sampled_boundary_contains_all_mapped_sample_points(
        sample in prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 3), 8..30),
        seed in 0u64..1000,
    ) {
        let mut rng = SimRng::new(seed);
        let metric = L2::new();
        let landmarks = greedy::<_, [f32], _>(&metric, &sample, 3, &mut rng);
        let mapper = Mapper::new(metric, landmarks);
        let boundary = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.0);
        for s in &sample {
            let p = mapper.map(s.as_slice());
            for (v, (lo, hi)) in p.iter().zip(&boundary.dims) {
                prop_assert!(*v >= lo - 1e-12);
                prop_assert!(*v <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn greedy_landmarks_are_distinct(
        sample in prop::collection::vec(prop::collection::vec(-50.0f32..50.0, 2), 12..30),
        seed in 0u64..1000,
    ) {
        // Greedy never re-picks an already chosen object unless the
        // sample has duplicates closer than every alternative.
        let mut rng = SimRng::new(seed);
        let metric = L2::new();
        let mut dedup = sample.clone();
        dedup.sort_by(|a, b| lex(a, b));
        dedup.dedup();
        let k = 4.min(dedup.len());
        let lms = greedy::<_, [f32], _>(&metric, &dedup, k, &mut rng);
        let mut sorted = lms.clone();
        sorted.sort_by(|a, b| lex(a, b));
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "greedy picked duplicates");
    }
}
