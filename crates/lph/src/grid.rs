//! The recursive bisection grid: Algorithm 2 (locality-preserving hash)
//! and the geometric half of Algorithm 4 (query splitting).

use crate::prefix::{Prefix, KEY_BITS};
use crate::rect::Rect;

/// A range query (or fragment of one) in flight: the remaining search
/// region plus the prefix of the smallest cuboid known to contain it
/// along the path walked so far.
#[derive(Clone, Debug)]
pub struct SubQuery {
    /// The (remaining) search region.
    pub rect: Rect,
    /// The paper's `prefix_key`/`prefix_length` pair.
    pub prefix: Prefix,
}

/// The k-d bisection grid over a bounded k-dimensional index space.
///
/// Division `i` (1-based) halves dimension `(i-1) mod k`; a cuboid taking
/// the upper half gets `1` as bit `i` of its key (paper §3.2). `depth` is
/// the total number of divisions (the paper's `m`; 64 in its simulations
/// and by default here).
///
/// ```
/// use lph::{Grid, Rect, Prefix};
///
/// // A 2-D index space over [0, 8]² with 6 divisions (an 8×8 cell grid).
/// let grid = Grid::new(Rect::cube(2, 0.0, 8.0), 6);
/// // Hash a point (Algorithm 2): nearby points share key prefixes.
/// let a = grid.hash(&[1.0, 1.0]);
/// let b = grid.hash(&[1.2, 1.3]);
/// assert_eq!(Prefix::of_key(a, 4), Prefix::of_key(b, 4));
/// // Decode a prefix back into its cuboid.
/// let cell = grid.cell(Prefix::of_key(a, 6));
/// assert!(cell.contains_point(&[1.0, 1.0]));
/// // The smallest cuboid enclosing a query region (figure 1a).
/// let query = Rect::new(vec![0.5, 4.5], vec![1.5, 5.5]);
/// let prefix = grid.enclosing_prefix(&query);
/// assert!(grid.cell(prefix).contains_rect(&query));
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    bounds: Rect,
    depth: u32,
}

impl Grid {
    /// Build a grid over `bounds` with `depth` divisions (`1..=64`).
    pub fn new(bounds: Rect, depth: u32) -> Grid {
        assert!(
            (1..=KEY_BITS).contains(&depth),
            "depth must be in 1..=64, got {depth}"
        );
        Grid { bounds, depth }
    }

    /// Grid over the cube `[lo, hi]^dims` with the full 64 divisions.
    pub fn uniform(dims: usize, lo: f64, hi: f64) -> Grid {
        Grid::new(Rect::cube(dims, lo, hi), KEY_BITS)
    }

    /// Dimensionality `k` of the index space.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Number of divisions `m`.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The index-space boundary.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// The dimension split by the (1-based) `division`-th division:
    /// `(division - 1) mod k`.
    #[inline]
    pub fn split_dim(&self, division: u32) -> usize {
        ((division - 1) as usize) % self.dims()
    }

    /// Algorithm 2: the locality-preserving hash.
    ///
    /// Identifies the depth-`depth` cuboid holding `point` and returns its
    /// left-aligned 64-bit key. Points exactly on a split midpoint go to
    /// the lower half (the paper's `> mid` test); points outside the
    /// boundary are clamped onto it first (paper §3.1: out-of-boundary
    /// objects map to boundary points).
    pub fn hash(&self, point: &[f64]) -> u64 {
        assert_eq!(point.len(), self.dims(), "dimension mismatch");
        let k = self.dims();
        let mut lo: Vec<f64> = self.bounds.lo().to_vec();
        let mut hi: Vec<f64> = self.bounds.hi().to_vec();
        let mut key = 0u64;
        for i in 1..=self.depth {
            let j = self.split_dim(i);
            debug_assert_eq!(j, ((i - 1) as usize) % k);
            let mid = 0.5 * (lo[j] + hi[j]);
            let x = point[j].clamp(self.bounds.lo()[j], self.bounds.hi()[j]);
            key <<= 1;
            if x > mid {
                lo[j] = mid;
                key |= 1;
            } else {
                hi[j] = mid;
            }
        }
        key << (KEY_BITS - self.depth)
    }

    /// The cuboid of a prefix: the sub-box reached by replaying the
    /// prefix's bits through the bisection.
    pub fn cell(&self, prefix: Prefix) -> Rect {
        assert!(prefix.len() <= self.depth, "prefix deeper than the grid");
        let mut r = self.bounds.clone();
        for pos in 1..=prefix.len() {
            let j = self.split_dim(pos);
            let mid = 0.5 * (r.lo()[j] + r.hi()[j]);
            if prefix.bit(pos) == 1 {
                r.set_dim(j, mid, r.hi()[j]);
            } else {
                r.set_dim(j, r.lo()[j], mid);
            }
        }
        r
    }

    /// The interval a single dimension occupies in the cuboid of
    /// `prefix` — the inner loop of Algorithm 4 (which replays only the
    /// bits that divided dimension `dim`).
    pub fn dim_interval(&self, prefix: Prefix, dim: usize) -> (f64, f64) {
        assert!(dim < self.dims());
        let k = self.dims() as u32;
        let (mut l, mut h) = (self.bounds.lo()[dim], self.bounds.hi()[dim]);
        // Divisions touching `dim` are at positions dim+1, dim+1+k, …
        let mut pos = dim as u32 + 1;
        while pos <= prefix.len() {
            let mid = 0.5 * (l + h);
            if prefix.bit(pos) == 1 {
                l = mid;
            } else {
                h = mid;
            }
            pos += k;
        }
        (l, h)
    }

    /// The prefix of the smallest cuboid that completely holds `rect`
    /// (paper §3.3, figure 1a), descending at most `depth` divisions.
    /// `rect` must lie within the grid bounds.
    pub fn enclosing_prefix(&self, rect: &Rect) -> Prefix {
        assert!(
            self.bounds.contains_rect(rect),
            "query region must be clipped to the index-space boundary"
        );
        let mut p = Prefix::ROOT;
        let mut cell = self.bounds.clone();
        while p.len() < self.depth {
            let j = self.split_dim(p.len() + 1);
            let mid = 0.5 * (cell.lo()[j] + cell.hi()[j]);
            if rect.hi()[j] <= mid {
                cell.set_dim(j, cell.lo()[j], mid);
                p = p.child(0);
            } else if rect.lo()[j] > mid {
                cell.set_dim(j, mid, cell.hi()[j]);
                p = p.child(1);
            } else {
                break;
            }
        }
        p
    }

    /// The inclusive span `[hash(rect.lo()), hash(rect.hi())]` of hash
    /// keys that points inside `rect` can map to.
    ///
    /// [`Grid::hash`] is monotone under componentwise dominance: for
    /// `p <= q` in every coordinate, consider the highest key bit where
    /// the two hashes differ. That bit belongs to some dimension `j`,
    /// and since all higher bits agree, the bits of `j`'s per-dimension
    /// cell index above it agree too — so the differing bit decides the
    /// order of the cell indices. Per-dimension cell indices are
    /// non-decreasing in the coordinate (each division is a midpoint
    /// comparison against a fixed grid), hence the bit is `0` in
    /// `hash(p)` and `1` in `hash(q)`, i.e. `hash(p) <= hash(q)`.
    ///
    /// Every point of `rect` dominates `rect.lo()` and is dominated by
    /// `rect.hi()`, so its hash lies in the returned span. The span is
    /// exact at both ends (the corners attain it) and never wider —
    /// usually far narrower — than the key range of
    /// [`Grid::enclosing_prefix`], which rounds the region up to a whole
    /// cuboid. Unlike `enclosing_prefix`, this accepts unclipped regions
    /// (`hash` clamps out-of-boundary coordinates).
    pub fn key_span(&self, rect: &Rect) -> (u64, u64) {
        (self.hash(rect.lo()), self.hash(rect.hi()))
    }

    /// One division of Algorithm 4: refine `q` at division
    /// `q.prefix.len() + 1`.
    ///
    /// * If the region lies entirely in one half, the prefix deepens and
    ///   the region is unchanged — returns `(child, None)`.
    /// * Otherwise the region splits at the midpoint into a lower and an
    ///   upper fragment — returns `(lower, Some(upper))`.
    ///
    /// Deviation from the paper's pseudocode: the lower-half test is
    /// `hi <= mid` rather than `hi < mid`, matching [`Grid::hash`]'s rule
    /// that points exactly on a midpoint belong to the lower half.
    pub fn split(&self, q: &SubQuery) -> (SubQuery, Option<SubQuery>) {
        let p = q.prefix.len() + 1;
        assert!(p <= self.depth, "cannot split beyond grid depth");
        let j = self.split_dim(p);
        let (l, h) = self.dim_interval(q.prefix, j);
        let mid = 0.5 * (l + h);
        if q.rect.lo()[j] > mid {
            (
                SubQuery {
                    rect: q.rect.clone(),
                    prefix: q.prefix.child(1),
                },
                None,
            )
        } else if q.rect.hi()[j] <= mid {
            (
                SubQuery {
                    rect: q.rect.clone(),
                    prefix: q.prefix.child(0),
                },
                None,
            )
        } else {
            let mut lower = q.rect.clone();
            lower.set_dim(j, q.rect.lo()[j], mid);
            let mut upper = q.rect.clone();
            upper.set_dim(j, mid, q.rect.hi()[j]);
            (
                SubQuery {
                    rect: lower,
                    prefix: q.prefix.child(0),
                },
                Some(SubQuery {
                    rect: upper,
                    prefix: q.prefix.child(1),
                }),
            )
        }
    }

    /// Fully decompose a query region into the set of depth-`level`
    /// cuboid prefixes it touches — the paper's *naive approach* (§3.3),
    /// used as a routing baseline. `level` caps the decomposition depth
    /// so the subquery count stays finite.
    pub fn decompose(&self, rect: &Rect, level: u32) -> Vec<SubQuery> {
        assert!(level <= self.depth);
        let root = SubQuery {
            rect: rect.clone(),
            prefix: self.enclosing_prefix(rect),
        };
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(q) = stack.pop() {
            if q.prefix.len() >= level {
                out.push(q);
                continue;
            }
            let (a, b) = self.split(&q);
            if let Some(b) = b {
                stack.push(b);
            }
            stack.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-D grid over [0,8]² with 6 divisions (8×8 cells of size 1 after
    /// 6 divisions: dims split 3 times each).
    fn grid2() -> Grid {
        Grid::new(Rect::cube(2, 0.0, 8.0), 6)
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn split_dim_alternates() {
        let g = grid2();
        assert_eq!(g.split_dim(1), 0);
        assert_eq!(g.split_dim(2), 1);
        assert_eq!(g.split_dim(3), 0);
        assert_eq!(g.split_dim(4), 1);
    }

    #[test]
    fn hash_known_cells() {
        let g = grid2();
        // Point in the all-lower corner: key 000000 (left-aligned).
        assert_eq!(g.hash(&[0.5, 0.5]), 0);
        // Point in the all-upper corner: key 111111 left-aligned.
        assert_eq!(g.hash(&[7.5, 7.5]), 0b111111u64 << 58);
        // First division on dim 0 at mid 4: x=5 -> upper, y=1 -> lower
        // second division dim1 mid 4 -> 0; third dim0 on [4,8] mid 6, 5<=6 ->0;
        // fourth dim1 on [0,4] mid 2, 1<=2 ->0; fifth dim0 on [4,6] mid 5, 5<=5 ->0;
        // sixth dim1 on [0,2] mid 1, 1<=1 -> 0. Key = 100000.
        assert_eq!(g.hash(&[5.0, 1.0]), 0b100000u64 << 58);
    }

    #[test]
    fn hash_clamps_out_of_bounds() {
        let g = grid2();
        assert_eq!(g.hash(&[100.0, 100.0]), g.hash(&[8.0, 8.0]));
        assert_eq!(g.hash(&[-5.0, -5.0]), g.hash(&[0.0, 0.0]));
    }

    #[test]
    fn midpoint_goes_to_lower_half() {
        let g = grid2();
        // x = 4 is the first midpoint on dim 0 -> bit 0.
        let key = g.hash(&[4.0, 0.0]);
        assert_eq!(key >> 63, 0);
        // Just above goes upper.
        let key = g.hash(&[4.0001, 0.0]);
        assert_eq!(key >> 63, 1);
    }

    #[test]
    fn cell_decodes_prefixes() {
        let g = grid2();
        assert_eq!(g.cell(Prefix::ROOT), Rect::cube(2, 0.0, 8.0));
        // "1": upper half of dim 0.
        assert_eq!(g.cell(pfx("1")), Rect::new(vec![4.0, 0.0], vec![8.0, 8.0]));
        // "10": upper dim0, lower dim1.
        assert_eq!(g.cell(pfx("10")), Rect::new(vec![4.0, 0.0], vec![8.0, 4.0]));
        // "011" (figure 1a with this bound set): lower dim0, upper dim1,
        // then upper half of dim0's [0,4].
        assert_eq!(
            g.cell(pfx("011")),
            Rect::new(vec![2.0, 4.0], vec![4.0, 8.0])
        );
    }

    #[test]
    fn hash_lands_inside_cell_of_every_prefix() {
        let g = grid2();
        for &p in &[[0.3, 7.2], [4.0, 4.0], [6.9, 0.1], [2.5, 3.5]] {
            let key = g.hash(&p);
            for len in 0..=6 {
                let prefix = Prefix::of_key(key, len);
                let cell = g.cell(prefix);
                assert!(
                    cell.contains_point(&p),
                    "point {p:?} outside cell {cell:?} of prefix {prefix}"
                );
            }
        }
    }

    #[test]
    fn dim_interval_matches_cell() {
        let g = grid2();
        for s in ["", "0", "01", "011", "0110", "01101", "011011"] {
            let p = pfx(s);
            let cell = g.cell(p);
            for dim in 0..2 {
                let (l, h) = g.dim_interval(p, dim);
                assert_eq!(l, cell.lo()[dim], "prefix {p} dim {dim}");
                assert_eq!(h, cell.hi()[dim], "prefix {p} dim {dim}");
            }
        }
    }

    #[test]
    fn enclosing_prefix_is_minimal() {
        let g = grid2();
        // A region inside the "011" cell [2,4]×[4,8]… must enclose at 011
        // or deeper; [2.1,3.9]×[4.1,7.9] spans dim1's next split at 6, so
        // it stops exactly at "011".
        let q = Rect::new(vec![2.1, 4.1], vec![3.9, 7.9]);
        let p = g.enclosing_prefix(&q);
        assert_eq!(format!("{p}"), "011");
        assert!(g.cell(p).contains_rect(&q));
        // A region straddling the first split cannot descend at all.
        let q = Rect::new(vec![3.0, 0.0], vec![5.0, 1.0]);
        assert_eq!(g.enclosing_prefix(&q), Prefix::ROOT);
        // A tiny region descends to full depth.
        let q = Rect::new(vec![0.1, 0.1], vec![0.2, 0.2]);
        assert_eq!(g.enclosing_prefix(&q).len(), 6);
    }

    #[test]
    fn enclosing_prefix_cell_always_contains_rect() {
        let g = grid2();
        let rects = [
            Rect::new(vec![0.0, 0.0], vec![8.0, 8.0]),
            Rect::new(vec![1.5, 2.5], vec![1.6, 2.6]),
            Rect::new(vec![3.99, 0.0], vec![4.01, 0.5]),
            Rect::new(vec![4.0, 4.0], vec![4.0, 4.0]),
        ];
        for q in &rects {
            let p = g.enclosing_prefix(q);
            assert!(g.cell(p).contains_rect(q), "prefix {p} for {q:?}");
        }
    }

    #[test]
    fn split_descends_without_cutting_when_one_sided() {
        let g = grid2();
        let q = SubQuery {
            rect: Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]),
            prefix: Prefix::ROOT,
        };
        let (a, b) = g.split(&q);
        assert!(b.is_none());
        assert_eq!(format!("{}", a.prefix), "0");
        assert_eq!(a.rect, q.rect);
    }

    #[test]
    fn split_cuts_straddling_region() {
        let g = grid2();
        let q = SubQuery {
            rect: Rect::new(vec![3.0, 1.0], vec![5.0, 2.0]),
            prefix: Prefix::ROOT,
        };
        let (lower, upper) = g.split(&q);
        let upper = upper.expect("must split");
        assert_eq!(format!("{}", lower.prefix), "0");
        assert_eq!(format!("{}", upper.prefix), "1");
        assert_eq!(lower.rect, Rect::new(vec![3.0, 1.0], vec![4.0, 2.0]));
        assert_eq!(upper.rect, Rect::new(vec![4.0, 1.0], vec![5.0, 2.0]));
    }

    #[test]
    fn split_boundary_touching_mid_goes_lower() {
        let g = grid2();
        // hi exactly at the midpoint: single lower child (matches hash).
        let q = SubQuery {
            rect: Rect::new(vec![3.0, 0.0], vec![4.0, 1.0]),
            prefix: Prefix::ROOT,
        };
        let (a, b) = g.split(&q);
        assert!(b.is_none());
        assert_eq!(format!("{}", a.prefix), "0");
    }

    #[test]
    fn paper_figure_1b_split() {
        // Figure 1(b): query Q with prefix "011" splits at the next
        // (horizontal, dim 1) division into "0110" and "0111".
        let g = grid2();
        // Cell of "011" is [2,4]×[4,8]; its dim-1 interval splits at 6.
        let q = SubQuery {
            rect: Rect::new(vec![2.5, 5.0], vec![3.5, 7.0]),
            prefix: pfx("011"),
        };
        let (lower, upper) = g.split(&q);
        let upper = upper.expect("straddles the split at 6");
        assert_eq!(format!("{}", lower.prefix), "0110");
        assert_eq!(format!("{}", upper.prefix), "0111");
        assert_eq!(lower.rect.hi()[1], 6.0);
        assert_eq!(upper.rect.lo()[1], 6.0);
    }

    #[test]
    fn decompose_tiles_the_query() {
        let g = grid2();
        let rect = Rect::new(vec![1.0, 1.0], vec![6.5, 3.0]);
        let parts = g.decompose(&rect, 6);
        // Every part sits inside its prefix cell's dim intervals where it
        // was cut, and the union of parts covers the rect: check by
        // sampling points.
        for q in &parts {
            assert!(q.prefix.len() == 6);
        }
        let mut covered = 0;
        let mut total = 0;
        for xi in 0..40 {
            for yi in 0..40 {
                let p = [
                    1.0 + 5.5 * (xi as f64 + 0.5) / 40.0,
                    1.0 + 2.0 * (yi as f64 + 0.5) / 40.0,
                ];
                total += 1;
                if parts.iter().any(|q| q.rect.contains_point(&p)) {
                    covered += 1;
                }
            }
        }
        assert_eq!(covered, total, "decomposition must tile the query");
        // And every part's key range is disjoint from the others'.
        let mut ranges: Vec<(u64, u64)> = parts.iter().map(|q| q.prefix.key_range()).collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "overlapping prefixes in decomposition");
        }
    }

    /// A zero-radius ball is a single point; it must resolve to exactly
    /// one full-depth fragment — the cell `hash` assigns the point to —
    /// including on cell midpoints and the space boundary.
    #[test]
    fn zero_extent_rect_decomposes_to_one_full_depth_cell() {
        let g = grid2();
        for p in [
            vec![3.3, 5.7],
            vec![4.0, 4.0],
            vec![0.0, 0.0],
            vec![8.0, 8.0],
        ] {
            let rect = Rect::ball(&p, 0.0, g.bounds());
            let parts = g.decompose(&rect, g.depth());
            assert_eq!(parts.len(), 1, "point {p:?} must be a single lookup");
            assert_eq!(parts[0].prefix.len(), g.depth());
            assert_eq!(parts[0].prefix, Prefix::new(g.hash(&p), g.depth()));
        }
    }

    #[test]
    fn key_span_bounds_every_contained_point() {
        let g = grid2();
        let rect = Rect::new(vec![1.3, 2.1], vec![5.9, 3.7]);
        let (lo, hi) = g.key_span(&rect);
        assert!(lo <= hi);
        for xi in 0..=20 {
            for yi in 0..=20 {
                let p = [
                    1.3 + (5.9 - 1.3) * xi as f64 / 20.0,
                    2.1 + (3.7 - 2.1) * yi as f64 / 20.0,
                ];
                let k = g.hash(&p);
                assert!((lo..=hi).contains(&k), "hash of {p:?} escapes span");
            }
        }
        // The corners attain the span ends exactly.
        assert_eq!(lo, g.hash(&[1.3, 2.1]));
        assert_eq!(hi, g.hash(&[5.9, 3.7]));
    }

    #[test]
    fn key_span_no_wider_than_enclosing_prefix_range() {
        let g = grid2();
        for rect in [
            Rect::new(vec![0.5, 0.5], vec![1.5, 1.5]),
            Rect::new(vec![3.9, 0.0], vec![4.1, 8.0]),
            Rect::new(vec![2.1, 4.1], vec![3.9, 7.9]),
            Rect::new(vec![4.0, 4.0], vec![4.0, 4.0]),
        ] {
            let (lo, hi) = g.key_span(&rect);
            let (plo, phi) = g.enclosing_prefix(&rect).key_range();
            assert!(plo <= lo && hi <= phi, "span wider than prefix range");
        }
    }

    #[test]
    fn key_span_accepts_unclipped_regions() {
        let g = grid2();
        // A ball poking outside the boundary: hash clamps, so the span
        // is just the clipped region's span.
        let (lo, hi) = g.key_span(&Rect::new(vec![-2.0, 3.0], vec![1.0, 9.0]));
        assert_eq!(lo, g.hash(&[0.0, 3.0]));
        assert_eq!(hi, g.hash(&[1.0, 8.0]));
    }

    #[test]
    fn uniform_constructor() {
        let g = Grid::uniform(10, 0.0, 1000.0);
        assert_eq!(g.dims(), 10);
        assert_eq!(g.depth(), 64);
        assert_eq!(g.bounds(), &Rect::cube(10, 0.0, 1000.0));
    }

    #[test]
    #[should_panic(expected = "clipped to the index-space boundary")]
    fn enclosing_prefix_rejects_unclipped() {
        let g = grid2();
        let _ = g.enclosing_prefix(&Rect::new(vec![-1.0, 0.0], vec![1.0, 1.0]));
    }
}
