//! Hilbert space-filling-curve mapping — the locality baseline.
//!
//! The paper's related work compares against SCRAP, which linearizes the
//! multi-dimensional space with a **Hilbert curve** before range
//! partitioning. The paper's own Algorithm 2 is a bit-interleaving
//! (Z-order/Morton) bisection — the price of the prefix structure that
//! Algorithms 3–5 route with. This module implements the d-dimensional
//! Hilbert transform (Skilling's 2004 algorithm) so the locality of the
//! two curves can be measured head-to-head: for a query region, how many
//! *contiguous runs* of the 1-d key space does each curve map it to?
//! Every run is a separate ring arc a query must visit, so fewer runs =
//! better locality. (`benches/ablation_curves.rs` runs the comparison;
//! Hilbert wins on runs, Z-order pays that price for routable prefixes.)

use crate::rect::Rect;

/// A Hilbert-curve quantizer over a bounded box: each dimension is
/// quantized to `2^bits` cells and the cell is mapped to its Hilbert
/// rank in `[0, 2^(dims·bits))`. Requires `dims · bits <= 64`.
#[derive(Clone, Debug)]
pub struct HilbertGrid {
    bounds: Rect,
    bits: u32,
}

impl HilbertGrid {
    /// Build over `bounds` with `bits` of resolution per dimension.
    pub fn new(bounds: Rect, bits: u32) -> HilbertGrid {
        assert!((1..=32).contains(&bits));
        assert!(
            bounds.dims() as u32 * bits <= 64,
            "dims x bits must fit in a 64-bit rank"
        );
        HilbertGrid { bounds, bits }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.bounds.dims()
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Cells per dimension (`2^bits`).
    pub fn cells_per_dim(&self) -> u64 {
        1u64 << self.bits
    }

    /// Quantize a point to its per-dimension cell coordinates.
    pub fn quantize(&self, point: &[f64]) -> Vec<u32> {
        assert_eq!(point.len(), self.dims());
        let cells = self.cells_per_dim() as f64;
        (0..self.dims())
            .map(|d| {
                let lo = self.bounds.lo()[d];
                let hi = self.bounds.hi()[d];
                let x = point[d].clamp(lo, hi);
                let f = ((x - lo) / (hi - lo) * cells).floor();
                (f.min(cells - 1.0)) as u32
            })
            .collect()
    }

    /// Hilbert rank of a point.
    pub fn hash(&self, point: &[f64]) -> u64 {
        self.rank_of_cell(&self.quantize(point))
    }

    /// Hilbert rank of a cell.
    pub fn rank_of_cell(&self, cell: &[u32]) -> u64 {
        let mut x = cell.to_vec();
        axes_to_transpose(&mut x, self.bits);
        // Interleave the transposed form, most significant bit first,
        // cycling dimensions (Skilling's bit order).
        let n = self.dims();
        let mut rank = 0u64;
        for b in (0..self.bits).rev() {
            for xi in x.iter().take(n) {
                rank = (rank << 1) | ((xi >> b) & 1) as u64;
            }
        }
        rank
    }

    /// The cell at a Hilbert rank (inverse of [`Self::rank_of_cell`]).
    pub fn cell_of_rank(&self, rank: u64) -> Vec<u32> {
        let n = self.dims();
        let mut x = vec![0u32; n];
        let total_bits = self.bits * n as u32;
        for (pos, xi) in (0..total_bits).zip((0..n).cycle()) {
            let bit = (rank >> (total_bits - 1 - pos)) & 1;
            let level = self.bits - 1 - pos / n as u32;
            x[xi] |= (bit as u32) << level;
        }
        transpose_to_axes(&mut x, self.bits);
        x
    }

    /// Morton (Z-order) rank of a cell at the same resolution — exactly
    /// the bit-interleaving the paper's Algorithm 2 performs, expressed
    /// as a rank for like-for-like comparison.
    pub fn morton_rank_of_cell(&self, cell: &[u32]) -> u64 {
        assert_eq!(cell.len(), self.dims());
        let n = self.dims();
        let mut rank = 0u64;
        for b in (0..self.bits).rev() {
            for ci in cell.iter().take(n) {
                rank = (rank << 1) | ((ci >> b) & 1) as u64;
            }
        }
        rank
    }

    /// The number of contiguous rank runs a query rect occupies under a
    /// cell→rank mapping: enumerate every intersected cell, map, sort,
    /// count breaks. Caps at `max_cells` enumerated cells (returns
    /// `None` when the region is bigger).
    pub fn runs_for_rect(
        &self,
        rect: &Rect,
        rank: impl Fn(&[u32]) -> u64,
        max_cells: usize,
    ) -> Option<usize> {
        assert_eq!(rect.dims(), self.dims());
        let lo = self.quantize(rect.lo());
        let hi = self.quantize(rect.hi());
        let mut total = 1usize;
        for d in 0..self.dims() {
            total = total.checked_mul((hi[d] - lo[d] + 1) as usize)?;
            if total > max_cells {
                return None;
            }
        }
        let mut ranks = Vec::with_capacity(total);
        let mut cur = lo.clone();
        loop {
            ranks.push(rank(&cur));
            // Odometer increment.
            let mut d = 0;
            loop {
                if d == self.dims() {
                    ranks.sort_unstable();
                    let runs = 1 + ranks.windows(2).filter(|w| w[1] != w[0] + 1).count();
                    return Some(runs);
                }
                if cur[d] < hi[d] {
                    cur[d] += 1;
                    break;
                }
                cur[d] = lo[d];
                d += 1;
            }
        }
    }
}

/// Skilling's AxesToTranspose: in-place conversion of cell coordinates
/// into the "transposed" Hilbert form.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    // Inverse undo.
    let mut q = 1u32 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = 1u32 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Skilling's TransposeToAxes (inverse of [`axes_to_transpose`]).
fn transpose_to_axes(x: &mut [u32], bits: u32) {
    let n = x.len();
    // Gray decode.
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2(bits: u32) -> HilbertGrid {
        HilbertGrid::new(Rect::cube(2, 0.0, 1.0), bits)
    }

    #[test]
    fn rank_is_a_bijection_2d() {
        let g = grid2(4); // 16x16 cells, ranks 0..256
        let mut seen = vec![false; 256];
        for x in 0..16u32 {
            for y in 0..16u32 {
                let r = g.rank_of_cell(&[x, y]);
                assert!(r < 256);
                assert!(!seen[r as usize], "rank {r} repeated at ({x},{y})");
                seen[r as usize] = true;
                // Inverse round-trips.
                assert_eq!(g.cell_of_rank(r), vec![x, y]);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rank_is_a_bijection_3d() {
        let g = HilbertGrid::new(Rect::cube(3, 0.0, 1.0), 3); // 8^3 = 512
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    let r = g.rank_of_cell(&[x, y, z]);
                    assert!(r < 512);
                    assert!(seen.insert(r));
                    assert_eq!(g.cell_of_rank(r), vec![x, y, z]);
                }
            }
        }
    }

    #[test]
    fn consecutive_ranks_are_adjacent_cells() {
        // The defining Hilbert property: rank r and r+1 differ by exactly
        // one step in exactly one dimension. (Z-order violates this.)
        let g = grid2(5); // 32x32
        for r in 0..(32 * 32 - 1) {
            let a = g.cell_of_rank(r);
            let b = g.cell_of_rank(r + 1);
            let diff: u32 = (0..2).map(|d| a[d].abs_diff(b[d])).sum();
            assert_eq!(diff, 1, "ranks {r},{} are cells {a:?},{b:?}", r + 1);
        }
    }

    #[test]
    fn morton_rank_matches_grid_hash_prefix_order() {
        // Morton rank here must equal the paper-Algorithm-2 grid's key
        // order at equal depth (same bisection, same bit interleaving).
        let g = grid2(3);
        let kd = crate::grid::Grid::new(Rect::cube(2, 0.0, 1.0), 6);
        let mut pairs = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                let center = [(x as f64 + 0.5) / 8.0, (y as f64 + 0.5) / 8.0];
                pairs.push((g.morton_rank_of_cell(&[x, y]), kd.hash(&center)));
            }
        }
        let mut by_morton = pairs.clone();
        by_morton.sort_by_key(|&(m, _)| m);
        let mut by_grid = pairs;
        by_grid.sort_by_key(|&(_, k)| k);
        assert_eq!(by_morton, by_grid, "orderings must agree");
    }

    #[test]
    fn quantize_clamps_and_bins() {
        let g = grid2(2); // 4x4 over [0,1]^2
        assert_eq!(g.quantize(&[0.0, 0.99]), vec![0, 3]);
        assert_eq!(g.quantize(&[1.0, -5.0]), vec![3, 0]);
        assert_eq!(g.quantize(&[0.26, 0.51]), vec![1, 2]);
        assert_eq!(g.cells_per_dim(), 4);
    }

    #[test]
    fn hilbert_has_fewer_runs_than_morton_on_average() {
        // The headline locality comparison, in miniature.
        let g = grid2(6); // 64x64
        let mut h_runs = 0usize;
        let mut m_runs = 0usize;
        let mut rng = 0x12345u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..60 {
            let cx = next() * 0.8;
            let cy = next() * 0.8;
            let w = 0.05 + next() * 0.15;
            let rect = Rect::new(vec![cx, cy], vec![cx + w, cy + w]);
            h_runs += g
                .runs_for_rect(&rect, |c| g.rank_of_cell(c), 100_000)
                .unwrap();
            m_runs += g
                .runs_for_rect(&rect, |c| g.morton_rank_of_cell(c), 100_000)
                .unwrap();
        }
        assert!(
            h_runs < m_runs,
            "Hilbert must have better locality: {h_runs} vs {m_runs} runs"
        );
    }

    #[test]
    fn runs_cap_respected() {
        let g = grid2(10); // 1024x1024
        let rect = Rect::new(vec![0.0, 0.0], vec![0.9, 0.9]);
        assert!(g
            .runs_for_rect(&rect, |c| g.rank_of_cell(c), 1000)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "fit in a 64-bit rank")]
    fn oversized_resolution_rejected() {
        let _ = HilbertGrid::new(Rect::cube(3, 0.0, 1.0), 22);
    }
}
