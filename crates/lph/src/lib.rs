//! # lph — locality-preserving hashing of the index space
//!
//! Paper §3.2: the k-dimensional landmark index space is recursively
//! bisected k-d-tree style — division `i` splits dimension `(i-1) mod k`
//! in half, and a cuboid that takes the upper half of a split gets a `1`
//! as the `i`-th bit of its key. After `m` divisions the space is
//! partitioned into `2^m` equal hypercuboids, each identified by an
//! `m`-bit key, and nearby points share long key prefixes. Chord's
//! consistent hashing then maps each cuboid to the successor of its key.
//!
//! This crate is the pure geometry of that scheme — no networking:
//!
//! * [`Prefix`] — an `m`-bit key prefix with bit-level helpers
//!   (children, containment, the ring key range a cuboid occupies);
//! * [`Rect`] — an axis-aligned box in the index space;
//! * [`Grid`] — the bisection grid: [`Grid::hash`] (Algorithm 2),
//!   [`Grid::cell`] (prefix → cuboid), [`Grid::enclosing_prefix`]
//!   (smallest cuboid holding a query region, §3.3 / figure 1a) and
//!   [`Grid::split`] (the geometric core of Algorithm 4);
//! * [`Rotation`] — the per-index random rotation offset used by the
//!   static load-balancing scheme (§3.4, "space mapping rotation").
//!
//! Bit positions follow the paper's convention: the *1st* bit is the most
//! significant bit of the 64-bit key (footnote 3: keys are left-aligned
//! and zero-padded on the right).

pub mod grid;
pub mod hilbert;
pub mod prefix;
pub mod rect;
pub mod rotation;

pub use grid::{Grid, SubQuery};
pub use hilbert::HilbertGrid;
pub use prefix::{Prefix, KEY_BITS};
pub use rect::Rect;
pub use rotation::Rotation;
