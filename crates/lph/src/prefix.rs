//! Key prefixes: the paper's `(prefix_key, prefix_length)` pairs.

/// Number of bits in a key/node identifier (the paper's simulations use
/// 64-bit identifiers; so do we).
pub const KEY_BITS: u32 = 64;

/// An `len`-bit prefix of a 64-bit key, stored left-aligned with the
/// unused low bits zeroed — exactly the paper's *prefix_key* /
/// *prefix_length* representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    key: u64,
    len: u32,
}

impl Prefix {
    /// The empty prefix: the whole key space / whole index space.
    pub const ROOT: Prefix = Prefix { key: 0, len: 0 };

    /// Build from a left-aligned key and a length. Panics if `key` has
    /// bits set beyond `len` or `len > 64`.
    pub fn new(key: u64, len: u32) -> Prefix {
        assert!(len <= KEY_BITS, "prefix length {len} > {KEY_BITS}");
        assert_eq!(
            key & Self::low_mask(len),
            0,
            "prefix key {key:#x} has bits set beyond length {len}"
        );
        Prefix { key, len }
    }

    /// The first `len` bits of `key`, low bits zeroed.
    pub fn of_key(key: u64, len: u32) -> Prefix {
        assert!(len <= KEY_BITS);
        Prefix {
            key: key & !Self::low_mask(len),
            len,
        }
    }

    /// Mask of the `KEY_BITS - len` low (non-prefix) bits.
    #[inline]
    fn low_mask(len: u32) -> u64 {
        // len == 64 must give 0; a plain `>> 64` would overflow.
        u64::MAX.checked_shr(len).unwrap_or(0)
    }

    /// The left-aligned prefix key (paper's `prefix_key`).
    #[inline]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The prefix length (paper's `prefix_length`).
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for the root prefix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when every division has been applied (a single cell).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == KEY_BITS
    }

    /// The `pos`-th bit (1-based from the most significant bit, the
    /// paper's convention). Panics if `pos` exceeds the prefix length.
    #[inline]
    pub fn bit(&self, pos: u32) -> u8 {
        assert!(pos >= 1 && pos <= self.len, "bit {pos} of {self:?}");
        ((self.key >> (KEY_BITS - pos)) & 1) as u8
    }

    /// The child prefix obtained by appending `bit` (0 or 1).
    #[inline]
    pub fn child(&self, bit: u8) -> Prefix {
        assert!(self.len < KEY_BITS, "cannot extend a full prefix");
        debug_assert!(bit <= 1);
        let len = self.len + 1;
        let key = self.key | ((bit as u64) << (KEY_BITS - len));
        Prefix { key, len }
    }

    /// True when `key`'s first `len` bits equal this prefix.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        (key & !Self::low_mask(self.len)) == self.key
    }

    /// True when `other` extends (or equals) this prefix.
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains_key(other.key)
    }

    /// The inclusive range of keys sharing this prefix: the contiguous
    /// arc of the ring a cuboid occupies.
    pub fn key_range(&self) -> (u64, u64) {
        (self.key, self.key | Self::low_mask(self.len))
    }

    /// The highest key sharing this prefix.
    pub fn high_key(&self) -> u64 {
        self.key | Self::low_mask(self.len)
    }

    /// Iterate the bits of the prefix from the most significant.
    pub fn bits(&self) -> impl Iterator<Item = u8> + '_ {
        (1..=self.len).map(move |pos| self.bit(pos))
    }
}

impl std::fmt::Debug for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prefix(\"")?;
        for b in self.bits() {
            write!(f, "{b}")?;
        }
        write!(f, "\")")
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.bits() {
            write!(f, "{b}")?;
        }
        if self.len == 0 {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

/// Parse a prefix from a bit string like `"011"` (test/debug helper).
impl std::str::FromStr for Prefix {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Prefix::ROOT;
        for c in s.chars() {
            match c {
                '0' => p = p.child(0),
                '1' => p = p.child(1),
                _ => return Err(format!("invalid prefix bit {c:?}")),
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_children() {
        let root = Prefix::ROOT;
        assert_eq!(root.len(), 0);
        assert!(root.is_empty());
        assert!(root.contains_key(0));
        assert!(root.contains_key(u64::MAX));
        let one = root.child(1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.key(), 1 << 63);
        assert_eq!(one.bit(1), 1);
        let zero = root.child(0);
        assert_eq!(zero.key(), 0);
        assert_eq!(zero.bit(1), 0);
    }

    #[test]
    fn paper_figure_example() {
        // Figure 1(a): prefix "011" → prefix_key 0110...0.
        let p: Prefix = "011".parse().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.key(), 0b011u64 << 61);
        assert_eq!(p.bit(1), 0);
        assert_eq!(p.bit(2), 1);
        assert_eq!(p.bit(3), 1);
        assert_eq!(format!("{p}"), "011");
        // Its children are "0110" and "0111" (figure 1b).
        assert_eq!(format!("{}", p.child(0)), "0110");
        assert_eq!(format!("{}", p.child(1)), "0111");
    }

    #[test]
    fn key_ranges() {
        let p: Prefix = "011".parse().unwrap();
        let (lo, hi) = p.key_range();
        assert_eq!(lo, 0b011u64 << 61);
        assert_eq!(hi, (0b100u64 << 61) - 1);
        assert!(p.contains_key(lo));
        assert!(p.contains_key(hi));
        assert!(!p.contains_key(hi + 1));
        assert!(!p.contains_key(lo - 1));
        // Root covers everything.
        assert_eq!(Prefix::ROOT.key_range(), (0, u64::MAX));
    }

    #[test]
    fn containment() {
        let p: Prefix = "01".parse().unwrap();
        let q: Prefix = "011".parse().unwrap();
        let r: Prefix = "00".parse().unwrap();
        assert!(p.contains_prefix(&q));
        assert!(p.contains_prefix(&p));
        assert!(!q.contains_prefix(&p));
        assert!(!p.contains_prefix(&r));
    }

    #[test]
    fn of_key_truncates() {
        let key = 0xDEAD_BEEF_0000_0000u64;
        let p = Prefix::of_key(key, 8);
        assert_eq!(p.key(), 0xDE00_0000_0000_0000);
        assert_eq!(p.len(), 8);
        assert!(p.contains_key(key));
        // Full-length prefix is a single key.
        let full = Prefix::of_key(key, 64);
        assert!(full.is_full());
        assert_eq!(full.key_range(), (key, key));
    }

    #[test]
    fn bits_round_trip() {
        let p: Prefix = "1011001".parse().unwrap();
        let s: String = p.bits().map(|b| char::from(b'0' + b)).collect();
        assert_eq!(s, "1011001");
    }

    #[test]
    #[should_panic(expected = "bits set beyond length")]
    fn new_rejects_dirty_low_bits() {
        let _ = Prefix::new(1, 8);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn child_of_full_prefix_panics() {
        let p = Prefix::of_key(0, 64);
        let _ = p.child(0);
    }
}
