//! Axis-aligned boxes in the k-dimensional index space.

/// A closed axis-aligned box `[lo_0, hi_0] × … × [lo_{k-1}, hi_{k-1}]`.
///
/// Query regions (the hypercube of side `2r` around a mapped query point,
/// paper §3.1) and cuboid cells are both represented as `Rect`s.
#[derive(Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Build from per-dimension bounds; requires `lo[d] <= hi[d]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Rect {
        assert_eq!(lo.len(), hi.len(), "dimension mismatch");
        assert!(!lo.is_empty(), "rect needs at least one dimension");
        for d in 0..lo.len() {
            assert!(
                lo[d] <= hi[d],
                "empty interval on dim {d}: [{}, {}]",
                lo[d],
                hi[d]
            );
        }
        Rect {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// The box `[lo, hi]^dims`.
    pub fn cube(dims: usize, lo: f64, hi: f64) -> Rect {
        Rect::new(vec![lo; dims], vec![hi; dims])
    }

    /// The L∞ ball of radius `r` around `center`, i.e. the paper's query
    /// hypercube of edge `2r`, clipped to `bounds`.
    pub fn ball(center: &[f64], r: f64, bounds: &Rect) -> Rect {
        assert!(r >= 0.0);
        assert_eq!(center.len(), bounds.dims());
        let lo = center
            .iter()
            .zip(bounds.lo.iter())
            .map(|(&c, &b)| (c - r).max(b))
            .collect::<Vec<_>>();
        let hi = center
            .iter()
            .zip(bounds.hi.iter())
            .map(|(&c, &b)| (c + r).min(b))
            .collect::<Vec<_>>();
        // A query centred outside the bounds clips to a face point.
        let (lo, hi) = lo
            .into_iter()
            .zip(hi)
            .map(|(l, h)| if l > h { (h, h) } else { (l, h) })
            .unzip();
        Rect::new(lo, hi)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Mutate one dimension's interval (used by query splitting).
    pub fn set_dim(&mut self, d: usize, lo: f64, hi: f64) {
        assert!(lo <= hi);
        self.lo[d] = lo;
        self.hi[d] = hi;
    }

    /// True when `p` lies inside (closed) this box.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        assert_eq!(p.len(), self.dims());
        p.iter()
            .enumerate()
            .all(|(d, &x)| self.lo[d] <= x && x <= self.hi[d])
    }

    /// True when `other` is entirely inside this box.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        assert_eq!(self.dims(), other.dims());
        (0..self.dims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// True when the two (closed) boxes share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dims(), other.dims());
        (0..self.dims()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let lo = (0..self.dims())
            .map(|d| self.lo[d].max(other.lo[d]))
            .collect();
        let hi = (0..self.dims())
            .map(|d| self.hi[d].min(other.hi[d]))
            .collect();
        Some(Rect::new(lo, hi))
    }

    /// Geometric center.
    pub fn center(&self) -> Vec<f64> {
        (0..self.dims())
            .map(|d| 0.5 * (self.lo[d] + self.hi[d]))
            .collect()
    }

    /// Product of side lengths (0 for degenerate boxes).
    pub fn volume(&self) -> f64 {
        (0..self.dims()).map(|d| self.hi[d] - self.lo[d]).product()
    }
}

impl std::fmt::Debug for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rect[")?;
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{}, {}]", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = Rect::new(vec![0.0, 1.0], vec![2.0, 3.0]);
        assert_eq!(r.dims(), 2);
        assert_eq!(r.lo(), &[0.0, 1.0]);
        assert_eq!(r.hi(), &[2.0, 3.0]);
        assert_eq!(r.center(), vec![1.0, 2.0]);
        assert_eq!(r.volume(), 4.0);
        let c = Rect::cube(3, -1.0, 1.0);
        assert_eq!(c.volume(), 8.0);
    }

    #[test]
    fn containment() {
        let r = Rect::cube(2, 0.0, 10.0);
        assert!(r.contains_point(&[0.0, 10.0]));
        assert!(r.contains_point(&[5.0, 5.0]));
        assert!(!r.contains_point(&[10.1, 5.0]));
        assert!(r.contains_rect(&Rect::cube(2, 2.0, 8.0)));
        assert!(r.contains_rect(&r));
        assert!(!r.contains_rect(&Rect::cube(2, 2.0, 11.0)));
    }

    #[test]
    fn intersection() {
        let a = Rect::cube(2, 0.0, 5.0);
        let b = Rect::new(vec![3.0, 3.0], vec![8.0, 8.0]);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(vec![3.0, 3.0], vec![5.0, 5.0]));
        let c = Rect::new(vec![6.0, 6.0], vec![7.0, 7.0]);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
        // Touching faces count as intersecting (closed boxes).
        let d = Rect::new(vec![5.0, 0.0], vec![6.0, 5.0]);
        assert!(a.intersects(&d));
    }

    #[test]
    fn ball_clips_to_bounds() {
        let bounds = Rect::cube(2, 0.0, 100.0);
        let b = Rect::ball(&[10.0, 50.0], 20.0, &bounds);
        assert_eq!(b, Rect::new(vec![0.0, 30.0], vec![30.0, 70.0]));
        // Fully interior ball is untouched.
        let b = Rect::ball(&[50.0, 50.0], 5.0, &bounds);
        assert_eq!(b, Rect::new(vec![45.0, 45.0], vec![55.0, 55.0]));
    }

    #[test]
    fn ball_outside_bounds_degenerates_to_face() {
        // The paper maps out-of-boundary points to boundary points; a
        // query centred beyond the boundary must still form a valid box.
        let bounds = Rect::cube(1, 0.0, 10.0);
        let b = Rect::ball(&[15.0], 2.0, &bounds);
        assert_eq!(b, Rect::new(vec![10.0], vec![10.0]));
    }

    #[test]
    fn set_dim() {
        let mut r = Rect::cube(2, 0.0, 10.0);
        r.set_dim(1, 2.0, 3.0);
        assert_eq!(r, Rect::new(vec![0.0, 2.0], vec![10.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn inverted_interval_rejected() {
        let _ = Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn debug_format() {
        let r = Rect::new(vec![0.0], vec![1.0]);
        assert_eq!(format!("{r:?}"), "Rect[[0, 1]]");
    }
}
