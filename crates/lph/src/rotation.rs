//! Per-index space-mapping rotation (paper §3.4, static load balancing).
//!
//! When several index schemes share one Chord ring and their hot regions
//! fall in similar parts of their index spaces, the same arc of the ring
//! would absorb every index's hotspot. Giving index `i` a random offset
//! `φ_i` — derived by hashing the index's name — maps it to the rotated
//! key space `[φ_i .. φ_i + 2^64 - 1]` (mod 2^64), de-correlating the hot
//! arcs. A rotation is a bijection that preserves cyclic order, so every
//! prefix cuboid still occupies one contiguous ring arc and the routing
//! algorithms work unchanged in *rotated coordinates*.

use crate::prefix::Prefix;

/// A rotation offset `φ` for one index scheme.
///
/// ```
/// use lph::Rotation;
///
/// let rot = Rotation::from_name("image-index");
/// let key = 0x1234_0000_0000_0000u64;
/// // Ring position and back.
/// assert_eq!(rot.from_ring(rot.to_ring(key)), key);
/// // Distinct index names land on distinct arcs.
/// assert_ne!(rot, Rotation::from_name("document-index"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Rotation(pub u64);

impl Rotation {
    /// No rotation (single-index deployments, or rotation disabled).
    pub const IDENTITY: Rotation = Rotation(0);

    /// Derive the offset by hashing the index scheme's name (the paper's
    /// "random hashing function" on the index name). FNV-1a finished with
    /// a SplitMix64-style avalanche, so similar names land far apart.
    pub fn from_name(name: &str) -> Rotation {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Avalanche.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rotation(z ^ (z >> 31))
    }

    /// Map an index-space key to its position on the Chord ring.
    #[inline]
    pub fn to_ring(&self, key: u64) -> u64 {
        key.wrapping_add(self.0)
    }

    /// Map a ring identifier back into index-space coordinates; this is
    /// the transform applied to *node ids* so the prefix comparisons of
    /// Algorithms 3–5 run in the index's own coordinate system.
    #[inline]
    pub fn from_ring(&self, ring_id: u64) -> u64 {
        ring_id.wrapping_sub(self.0)
    }

    /// The ring arc `[start, end]` (inclusive, may wrap) occupied by a
    /// prefix cuboid under this rotation.
    pub fn ring_arc(&self, prefix: Prefix) -> (u64, u64) {
        let (lo, hi) = prefix.key_range();
        (self.to_ring(lo), self.to_ring(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let r = Rotation::IDENTITY;
        assert_eq!(r.to_ring(42), 42);
        assert_eq!(r.from_ring(42), 42);
    }

    #[test]
    fn round_trip() {
        let r = Rotation(0xDEAD_BEEF_1234_5678);
        for key in [0u64, 1, u64::MAX, 1 << 63] {
            assert_eq!(r.from_ring(r.to_ring(key)), key);
            assert_eq!(r.to_ring(r.from_ring(key)), key);
        }
    }

    #[test]
    fn from_name_is_deterministic_and_spread() {
        let a = Rotation::from_name("image-index");
        let b = Rotation::from_name("image-index");
        assert_eq!(a, b);
        let c = Rotation::from_name("image-index2");
        assert_ne!(a, c);
        // Similar names should differ in roughly half their bits.
        let diff = (a.0 ^ c.0).count_ones();
        assert!((16..=48).contains(&diff), "only {diff} bits differ");
    }

    #[test]
    fn rotation_preserves_cyclic_order() {
        let r = Rotation(12345);
        // Clockwise distance between two keys is invariant under rotation.
        for (a, b) in [(0u64, 10u64), (u64::MAX - 5, 3), (7, 7)] {
            let d = b.wrapping_sub(a);
            let d_rot = r.to_ring(b).wrapping_sub(r.to_ring(a));
            assert_eq!(d, d_rot);
        }
    }

    #[test]
    fn ring_arc_wraps() {
        let p: Prefix = "1".parse().unwrap();
        // Prefix "1" covers [2^63, 2^64-1]; rotating by 2^63 wraps it to
        // [0 .. 2^63-1]? to_ring adds: start = 2^63 + 2^63 = 0 (wrapped).
        let r = Rotation(1 << 63);
        let (s, e) = r.ring_arc(p);
        assert_eq!(s, 0);
        assert_eq!(e, (1u64 << 63) - 1);
    }
}
