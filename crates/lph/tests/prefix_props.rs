//! Property tests for the prefix bit machinery itself (complementing the
//! geometry properties in `props.rs`).

use lph::{Prefix, KEY_BITS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn of_key_produces_a_matching_prefix(key in any::<u64>(), len in 0u32..=KEY_BITS) {
        let p = Prefix::of_key(key, len);
        prop_assert_eq!(p.len(), len);
        prop_assert!(p.contains_key(key));
        // The prefix's own key also matches.
        prop_assert!(p.contains_key(p.key()));
    }

    #[test]
    fn key_range_is_exactly_the_matching_keys(key in any::<u64>(), len in 0u32..=KEY_BITS) {
        let p = Prefix::of_key(key, len);
        let (lo, hi) = p.key_range();
        prop_assert!(lo <= hi);
        prop_assert!(p.contains_key(lo));
        prop_assert!(p.contains_key(hi));
        if lo > 0 {
            prop_assert!(!p.contains_key(lo - 1));
        }
        if hi < u64::MAX {
            prop_assert!(!p.contains_key(hi + 1));
        }
        // Range size is 2^(64-len).
        match len {
            0 => prop_assert_eq!((lo, hi), (0, u64::MAX)),
            64 => prop_assert_eq!(lo, hi),
            _ => prop_assert_eq!(hi - lo, u64::MAX >> len),
        }
    }

    #[test]
    fn children_partition_the_parent(key in any::<u64>(), len in 0u32..KEY_BITS) {
        let p = Prefix::of_key(key, len);
        let (plo, phi) = p.key_range();
        let (l0, h0) = p.child(0).key_range();
        let (l1, h1) = p.child(1).key_range();
        prop_assert_eq!(l0, plo);
        prop_assert_eq!(h1, phi);
        prop_assert_eq!(h0 + 1, l1, "children must tile the parent");
        prop_assert!(p.contains_prefix(&p.child(0)));
        prop_assert!(p.contains_prefix(&p.child(1)));
    }

    #[test]
    fn bits_reconstruct_the_prefix(key in any::<u64>(), len in 0u32..=KEY_BITS) {
        let p = Prefix::of_key(key, len);
        let mut rebuilt = Prefix::ROOT;
        for b in p.bits() {
            rebuilt = rebuilt.child(b);
        }
        prop_assert_eq!(rebuilt, p);
    }

    #[test]
    fn parse_display_round_trip(bits in prop::collection::vec(0u8..2, 0..32)) {
        let mut p = Prefix::ROOT;
        for &b in &bits {
            p = p.child(b);
        }
        let s = format!("{p}");
        if bits.is_empty() {
            prop_assert_eq!(s, "ε");
        } else {
            let q: Prefix = s.parse().unwrap();
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn containment_is_transitive(key in any::<u64>(), a in 0u32..=64, b in 0u32..=64, c in 0u32..=64) {
        let mut lens = [a, b, c];
        lens.sort_unstable();
        let outer = Prefix::of_key(key, lens[0]);
        let mid = Prefix::of_key(key, lens[1]);
        let inner = Prefix::of_key(key, lens[2]);
        prop_assert!(outer.contains_prefix(&mid));
        prop_assert!(mid.contains_prefix(&inner));
        prop_assert!(outer.contains_prefix(&inner));
    }
}
