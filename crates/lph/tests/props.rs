//! Property-based tests of the locality-preserving hashing geometry.
//! These are the invariants §6 of DESIGN.md promises:
//!
//! * hash/cell consistency — a point's key lies in the cuboid of every
//!   prefix of the key;
//! * enclosing prefix minimality — the region fits the prefix cuboid but
//!   not either child (when a deeper division exists);
//! * split soundness — fragments stay inside the parent region, union
//!   covers it, prefixes deepen by exactly one bit.

use lph::{Grid, Prefix, Rect, Rotation, SubQuery};
use proptest::prelude::*;

const DIMS: usize = 3;
const LO: f64 = 0.0;
const HI: f64 = 64.0;

fn grid() -> Grid {
    Grid::new(Rect::cube(DIMS, LO, HI), 12)
}

fn point_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(LO..HI, DIMS)
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (point_strategy(), point_strategy()).prop_map(|(a, b)| {
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        Rect::new(lo, hi)
    })
}

proptest! {
    #[test]
    fn hash_is_consistent_with_cells(p in point_strategy()) {
        let g = grid();
        let key = g.hash(&p);
        for len in 0..=g.depth() {
            let prefix = Prefix::of_key(key, len);
            prop_assert!(g.cell(prefix).contains_point(&p),
                "key {key:#x} prefix {prefix} cell misses point {p:?}");
        }
    }

    #[test]
    fn nearby_points_share_prefixes(p in point_strategy()) {
        // Locality: a point and a tiny perturbation share a long prefix
        // unless they straddle a split plane — but they must always share
        // the cell they are both inside geometrically.
        let g = grid();
        let q: Vec<f64> = p.iter().map(|x| (x + 1e-9).min(HI)).collect();
        let kp = g.hash(&p);
        let kq = g.hash(&q);
        // Both keys' full cells contain their own point.
        prop_assert!(g.cell(Prefix::of_key(kp, 12)).contains_point(&p));
        prop_assert!(g.cell(Prefix::of_key(kq, 12)).contains_point(&q));
    }

    #[test]
    fn enclosing_prefix_contains_and_is_minimal(r in rect_strategy()) {
        let g = grid();
        let p = g.enclosing_prefix(&r);
        prop_assert!(g.cell(p).contains_rect(&r), "cell of {p} misses {r:?}");
        if p.len() < g.depth() {
            // Neither child alone contains the region.
            let c0 = g.cell(p.child(0));
            let c1 = g.cell(p.child(1));
            prop_assert!(!c0.contains_rect(&r) && !c1.contains_rect(&r),
                "prefix {p} is not minimal for {r:?}");
        }
    }

    #[test]
    fn split_fragments_tile_the_parent(r in rect_strategy()) {
        let g = grid();
        let q = SubQuery { rect: r.clone(), prefix: g.enclosing_prefix(&r) };
        if q.prefix.len() == g.depth() {
            return Ok(()); // nothing to split
        }
        let (a, b) = g.split(&q);
        prop_assert_eq!(a.prefix.len(), q.prefix.len() + 1);
        prop_assert!(q.prefix.contains_prefix(&a.prefix));
        prop_assert!(r.contains_rect(&a.rect));
        match b {
            None => prop_assert_eq!(&a.rect, &r),
            Some(b) => {
                prop_assert_eq!(b.prefix.len(), q.prefix.len() + 1);
                prop_assert!(q.prefix.contains_prefix(&b.prefix));
                prop_assert!(r.contains_rect(&b.rect));
                // The two fragments share exactly the split plane and
                // cover the parent: per-dim intervals concatenate.
                prop_assert!(a.rect.volume() + b.rect.volume() <= r.volume() + 1e-9);
                // Sample points of r are in at least one fragment.
                let c = r.center();
                prop_assert!(a.rect.contains_point(&c) || b.rect.contains_point(&c));
            }
        }
    }

    #[test]
    fn decompose_covers_with_disjoint_prefixes(r in rect_strategy()) {
        let g = grid();
        let parts = g.decompose(&r, 8);
        // Disjoint key ranges.
        let mut ranges: Vec<(u64, u64)> = parts.iter().map(|q| q.prefix.key_range()).collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
        // Corners and center of r are covered.
        let mut probes = vec![r.center()];
        probes.push(r.lo().to_vec());
        probes.push(r.hi().to_vec());
        for p in probes {
            prop_assert!(parts.iter().any(|q| q.rect.contains_point(&p)));
        }
    }

    #[test]
    fn hash_key_within_rotated_arc(p in point_strategy(), phi in any::<u64>()) {
        // The rotated ring key of a point stays within the rotated arc of
        // every prefix of its key.
        let g = grid();
        let rot = Rotation(phi);
        let key = g.hash(&p);
        for len in [0u32, 3, 7, 12] {
            let prefix = Prefix::of_key(key, len);
            let (s, e) = rot.ring_arc(prefix);
            let ring = rot.to_ring(key);
            // In cyclic terms: ring - s <= e - s.
            prop_assert!(ring.wrapping_sub(s) <= e.wrapping_sub(s));
        }
    }

    #[test]
    fn keys_order_matches_first_divergent_dimension(a in point_strategy(), b in point_strategy()) {
        // Keys are equal iff points share the deepest cell.
        let g = grid();
        let ka = g.hash(&a);
        let kb = g.hash(&b);
        if ka == kb {
            let cell = g.cell(Prefix::of_key(ka, g.depth()));
            prop_assert!(cell.contains_point(&a) && cell.contains_point(&b));
        }
    }
}
