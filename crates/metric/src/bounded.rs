//! The `d' = d / (1 + d)` bounding adapter.
//!
//! Paper §3.1: "unbounded metrics can be adjusted using the formula
//! `d' = d/(1+d)`". The transform is the standard way to turn any metric
//! into a topologically equivalent metric bounded by 1: `t(x) = x/(1+x)`
//! is increasing, subadditive and concave on `[0, ∞)`, which preserves all
//! four metric axioms.

use crate::space::Metric;

/// Wraps an unbounded metric into one bounded by 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bounded<M> {
    inner: M,
}

impl<M> Bounded<M> {
    /// Wrap `inner`.
    pub fn new(inner: M) -> Self {
        Bounded { inner }
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Map a distance from the inner scale to the bounded scale.
    pub fn transform(d: f64) -> f64 {
        d / (1.0 + d)
    }

    /// Map a distance from the bounded scale back to the inner scale.
    /// Returns `f64::INFINITY` for inputs `>= 1`.
    pub fn inverse(d: f64) -> f64 {
        if d >= 1.0 {
            f64::INFINITY
        } else {
            d / (1.0 - d)
        }
    }
}

impl<T: ?Sized, M: Metric<T>> Metric<T> for Bounded<M> {
    fn distance(&self, a: &T, b: &T) -> f64 {
        Self::transform(self.inner.distance(a, b))
    }
    fn upper_bound(&self) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::EditDistance;
    use crate::space::check_axioms;
    use crate::vector::L2;

    #[test]
    fn transform_properties() {
        assert_eq!(Bounded::<L2>::transform(0.0), 0.0);
        assert!((Bounded::<L2>::transform(1.0) - 0.5).abs() < 1e-12);
        assert!(Bounded::<L2>::transform(1e12) < 1.0);
        // Monotone.
        assert!(Bounded::<L2>::transform(2.0) > Bounded::<L2>::transform(1.0));
    }

    #[test]
    fn inverse_round_trips() {
        for d in [0.0, 0.5, 1.0, 7.25, 1000.0] {
            let t = Bounded::<L2>::transform(d);
            assert!((Bounded::<L2>::inverse(t) - d).abs() < 1e-9 * (1.0 + d * d));
        }
        assert_eq!(Bounded::<L2>::inverse(1.0), f64::INFINITY);
    }

    #[test]
    fn bounded_l2_axioms_and_bound() {
        let m = Bounded::new(L2::new());
        assert_eq!(Metric::<[f32]>::upper_bound(&m), Some(1.0));
        let a = [0.0f32, 0.0];
        let b = [100.0f32, 0.0];
        let c = [0.0f32, 7.0];
        check_axioms(&m, &a[..], &b[..], &c[..], 1e-12).unwrap();
        assert!(m.distance(&a[..], &b[..]) < 1.0);
    }

    #[test]
    fn bounded_edit_distance() {
        let m = Bounded::new(EditDistance);
        let d: f64 = Metric::<str>::distance(&m, "kitten", "sitting");
        assert!((d - 3.0 / 4.0).abs() < 1e-12);
        check_axioms(&m, "kitten", "sitting", "mitten", 1e-12).unwrap();
    }

    #[test]
    fn inner_access() {
        let m = Bounded::new(L2::new());
        let _inner: &L2 = m.inner();
    }
}
