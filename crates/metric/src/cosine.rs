//! Angular distance between sparse term vectors.
//!
//! The paper's TREC experiment (§4.3) represents documents and queries as
//! TF/IDF term vectors and measures dissimilarity as the *angle* between
//! them, `d(X, Y) = arccos(X·Y / (|X||Y|))`. Unlike raw cosine
//! *similarity*, the angle is a true metric on the unit sphere (it is the
//! geodesic distance), so it satisfies the triangle inequality the
//! landmark mapping depends on. For vectors with non-negative components
//! (every TF/IDF vector) the angle lies in `[0, π/2]`, which is the bound
//! the paper's boundary discussion uses.

use crate::space::Metric;

/// A sparse vector: `(term id, weight)` pairs sorted by term id, with the
/// Euclidean norm cached. Weights must be finite and, for the distance
/// bound of π/2 to hold, non-negative.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVector {
    terms: Vec<(u32, f32)>,
    norm: f64,
}

impl SparseVector {
    /// Build from `(term, weight)` pairs. Pairs are sorted and duplicate
    /// terms have their weights summed; zero-weight terms are dropped.
    pub fn new(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut terms: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            assert!(w.is_finite(), "weights must be finite");
            match terms.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => terms.push((t, w)),
            }
        }
        terms.retain(|&(_, w)| w != 0.0);
        let norm = terms
            .iter()
            .map(|&(_, w)| (w as f64) * (w as f64))
            .sum::<f64>()
            .sqrt();
        SparseVector { terms, norm }
    }

    /// The empty (zero) vector.
    pub fn empty() -> Self {
        SparseVector {
            terms: Vec::new(),
            norm: 0.0,
        }
    }

    /// Number of distinct terms with non-zero weight.
    pub fn nnz(&self) -> usize {
        self.terms.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// The sorted `(term, weight)` pairs.
    pub fn terms(&self) -> &[(u32, f32)] {
        &self.terms
    }

    /// Dot product with another sparse vector (sorted-merge join).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.terms, &other.terms);
        let mut acc = 0.0f64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 as f64 * b[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors are treated as
    /// orthogonal to everything (and identical to each other).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        if self.norm == 0.0 && other.norm == 0.0 {
            return 1.0;
        }
        if self.norm == 0.0 || other.norm == 0.0 {
            return 0.0;
        }
        (self.dot(other) / (self.norm * other.norm)).clamp(-1.0, 1.0)
    }
}

/// The angular metric `d(X, Y) = arccos(cos_sim(X, Y))`.
///
/// `upper_bound` reports π/2, which is correct for non-negative-weight
/// vectors (TF/IDF); for signed vectors use [`Angular::signed`], whose
/// bound is π.
#[derive(Clone, Copy, Debug)]
pub struct Angular {
    bound: f64,
}

impl Default for Angular {
    fn default() -> Self {
        Angular::new()
    }
}

impl Angular {
    /// Angular metric for non-negative-weight vectors; bound π/2.
    pub fn new() -> Self {
        Angular {
            bound: std::f64::consts::FRAC_PI_2,
        }
    }

    /// Angular metric for arbitrary-sign vectors; bound π.
    pub fn signed() -> Self {
        Angular {
            bound: std::f64::consts::PI,
        }
    }
}

impl Metric<SparseVector> for Angular {
    fn distance(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        a.cosine(b).acos()
    }
    fn upper_bound(&self) -> Option<f64> {
        Some(self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::check_axioms;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn sv(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::new(pairs.to_vec())
    }

    #[test]
    fn construction_normalizes() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 1.0), (5, 0.0)]);
        assert_eq!(v.terms(), &[(1, 2.0), (3, 2.0)]);
        assert_eq!(v.nnz(), 2);
        assert!((v.norm() - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dot_product_merge() {
        let a = sv(&[(1, 1.0), (2, 2.0), (4, 3.0)]);
        let b = sv(&[(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(b.dot(&a), a.dot(&b));
        assert_eq!(a.dot(&SparseVector::empty()), 0.0);
    }

    #[test]
    fn angles() {
        let m = Angular::new();
        let x = sv(&[(0, 1.0)]);
        let y = sv(&[(1, 1.0)]);
        let xy = sv(&[(0, 1.0), (1, 1.0)]);
        assert!((m.distance(&x, &y) - FRAC_PI_2).abs() < 1e-12);
        assert!((m.distance(&x, &xy) - FRAC_PI_4).abs() < 1e-12);
        assert!(m.distance(&x, &x).abs() < 1e-7);
        // Scaling does not change the angle.
        let x10 = sv(&[(0, 10.0)]);
        assert!(m.distance(&x, &x10).abs() < 1e-7);
    }

    #[test]
    fn zero_vector_convention() {
        let m = Angular::new();
        let z = SparseVector::empty();
        let x = sv(&[(0, 1.0)]);
        assert!((m.distance(&z, &x) - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(m.distance(&z, &z), 0.0);
    }

    #[test]
    fn bounds() {
        assert_eq!(Angular::new().upper_bound(), Some(FRAC_PI_2));
        assert_eq!(Angular::signed().upper_bound(), Some(std::f64::consts::PI));
    }

    #[test]
    fn axioms_on_nonnegative_vectors() {
        let m = Angular::new();
        let x = sv(&[(0, 1.0), (1, 2.0)]);
        let y = sv(&[(1, 1.0), (2, 3.0)]);
        let z = sv(&[(0, 2.0), (2, 1.0)]);
        check_axioms(&m, &x, &y, &z, 1e-7).unwrap();
    }

    #[test]
    fn orthogonal_sparse_documents_hit_max_distance() {
        // The paper's TREC observation: most sparse documents share no
        // terms and therefore sit at the maximum distance π/2.
        let m = Angular::new();
        let a = sv(&[(1, 0.5), (2, 0.7)]);
        let b = sv(&[(10, 0.4), (11, 0.9)]);
        assert!((m.distance(&a, &b) - FRAC_PI_2).abs() < 1e-12);
    }
}
