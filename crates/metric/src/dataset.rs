//! Object storage with stable ids.
//!
//! A [`Dataset`] is the local view of the network's data collection: the
//! objects, addressable by dense [`ObjectId`]s. Index entries, query
//! results and recall accounting all speak in `ObjectId`s.

use crate::space::Metric;

/// A dense object identifier, unique within one dataset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub u32);

/// An indexed collection of objects of type `T`.
#[derive(Clone, Debug, Default)]
pub struct Dataset<T> {
    objects: Vec<T>,
}

impl<T> Dataset<T> {
    /// Wrap a vector of objects; ids are assigned in order.
    pub fn new(objects: Vec<T>) -> Self {
        assert!(
            objects.len() <= u32::MAX as usize,
            "ObjectId is 32 bits; dataset too large"
        );
        Dataset { objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Access an object by id.
    pub fn get(&self, id: ObjectId) -> &T {
        &self.objects[id.0 as usize]
    }

    /// Iterate `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &T)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), o))
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.objects.len() as u32).map(ObjectId)
    }

    /// Add an object, returning its id.
    pub fn push(&mut self, object: T) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(object);
        id
    }

    /// Exact k-nearest-neighbor scan (the experiments' ground truth).
    ///
    /// Returns `(id, distance)` pairs sorted by ascending distance, ties
    /// broken by id so results are deterministic. `O(n log k)`.
    pub fn knn<Q, M>(&self, metric: &M, query: &Q, k: usize) -> Vec<(ObjectId, f64)>
    where
        T: std::borrow::Borrow<Q>,
        Q: ?Sized,
        M: Metric<Q>,
    {
        let mut best: Vec<(ObjectId, f64)> = Vec::with_capacity(k + 1);
        for (id, obj) in self.iter() {
            let d = metric.distance(query, obj.borrow());
            let pos = best.partition_point(|&(bid, bd)| bd < d || (bd == d && bid < id));
            if pos < k {
                best.insert(pos, (id, d));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        best
    }

    /// Exact range scan: all objects within `radius` of the query, sorted
    /// by ascending distance (ties by id).
    pub fn range<Q, M>(&self, metric: &M, query: &Q, radius: f64) -> Vec<(ObjectId, f64)>
    where
        T: std::borrow::Borrow<Q>,
        Q: ?Sized,
        M: Metric<Q>,
    {
        let mut out: Vec<(ObjectId, f64)> = self
            .iter()
            .filter_map(|(id, obj)| {
                let d = metric.distance(query, obj.borrow());
                (d <= radius).then_some((id, d))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl<T> std::ops::Index<ObjectId> for Dataset<T> {
    type Output = T;
    fn index(&self, id: ObjectId) -> &T {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::L2;

    fn toy() -> Dataset<Vec<f32>> {
        Dataset::new(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 4.0],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn basic_access() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        assert_eq!(ds[ObjectId(3)], vec![3.0, 4.0]);
        assert_eq!(ds.ids().count(), 5);
        assert_eq!(ds.iter().count(), 5);
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut ds: Dataset<Vec<f32>> = Dataset::new(vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.push(vec![1.0]), ObjectId(0));
        assert_eq!(ds.push(vec![2.0]), ObjectId(1));
    }

    #[test]
    fn knn_orders_by_distance() {
        let ds = toy();
        let q = [0.0f32, 0.0];
        let knn = ds.knn(&L2::new(), &q[..], 3);
        assert_eq!(
            knn.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![ObjectId(0), ObjectId(1), ObjectId(4)]
        );
        assert_eq!(knn[0].1, 0.0);
        assert_eq!(knn[1].1, 1.0);
    }

    #[test]
    fn knn_with_k_larger_than_dataset() {
        let ds = toy();
        let q = [0.0f32, 0.0];
        let knn = ds.knn(&L2::new(), &q[..], 100);
        assert_eq!(knn.len(), 5);
        // Sorted ascending.
        for w in knn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn knn_tie_break_by_id() {
        let ds = Dataset::new(vec![vec![1.0f32], vec![-1.0], vec![1.0]]);
        let q = [0.0f32];
        let knn = ds.knn(&L2::new(), &q[..], 3);
        assert_eq!(
            knn.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![ObjectId(0), ObjectId(1), ObjectId(2)]
        );
    }

    #[test]
    fn range_scan() {
        let ds = toy();
        let q = [0.0f32, 0.0];
        let hits = ds.range(&L2::new(), &q[..], 1.5);
        assert_eq!(
            hits.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![ObjectId(0), ObjectId(1), ObjectId(4)]
        );
        assert!(ds.range(&L2::new(), &q[..], 0.0).len() == 1);
        assert_eq!(ds.range(&L2::new(), &q[..], 100.0).len(), 5);
    }

    /// An object with NaN coordinates produces NaN distances; neither
    /// scan may panic, and NaN never satisfies a range predicate.
    #[test]
    fn nan_coordinates_never_panic_a_scan() {
        let mut ds = toy();
        let nan_id = ds.push(vec![f32::NAN, f32::NAN]);
        let q = [0.0f32, 0.0];
        let knn = ds.knn(&L2::new(), &q[..], 3);
        assert_eq!(knn.len(), 3);
        let hits = ds.range(&L2::new(), &q[..], 100.0);
        assert!(hits.iter().all(|&(_, d)| d.is_finite()));
        assert!(hits.iter().all(|&(id, _)| id != nan_id));
        assert_eq!(hits.len(), 5);
    }
}
