//! Levenshtein (edit) distance on byte strings.
//!
//! The paper's footnote 2 defines edit distance as the minimum number of
//! point mutations (change, insert, delete) turning one string into
//! another; it is the metric behind the DNA/protein and
//! similar-sentences examples. The implementation is the classic
//! two-row dynamic program, `O(|a|·|b|)` time and `O(min(|a|,|b|))`
//! space, with a common-prefix/suffix strip that makes near-duplicate
//! comparisons (the overwhelming case in similarity search) fast.

use crate::space::Metric;

/// Edit distance metric over `[u8]` (treat strings as bytes; for ASCII
/// data — DNA, protein, English text — this equals the character-level
/// distance).
#[derive(Clone, Copy, Debug, Default)]
pub struct EditDistance;

impl EditDistance {
    /// Compute the raw edit distance as an integer.
    pub fn levenshtein(a: &[u8], b: &[u8]) -> usize {
        // Strip the common prefix and suffix: edits never pay for them.
        let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
        let a = &a[prefix..];
        let b = &b[prefix..];
        let suffix = a
            .iter()
            .rev()
            .zip(b.iter().rev())
            .take_while(|(x, y)| x == y)
            .count();
        let a = &a[..a.len() - suffix];
        let b = &b[..b.len() - suffix];

        if a.is_empty() {
            return b.len();
        }
        if b.is_empty() {
            return a.len();
        }
        // Keep the DP row over the shorter string.
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut row: Vec<usize> = (0..=short.len()).collect();
        for (i, lc) in long.iter().enumerate() {
            let mut diag = row[0]; // row[i][0] of the previous row
            row[0] = i + 1;
            for (j, sc) in short.iter().enumerate() {
                let cost = if lc == sc { 0 } else { 1 };
                let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
                diag = row[j + 1];
                row[j + 1] = next;
            }
        }
        row[short.len()]
    }
}

impl Metric<[u8]> for EditDistance {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        Self::levenshtein(a, b) as f64
    }
}

impl Metric<str> for EditDistance {
    fn distance(&self, a: &str, b: &str) -> f64 {
        Self::levenshtein(a.as_bytes(), b.as_bytes()) as f64
    }
}

impl Metric<Vec<u8>> for EditDistance {
    fn distance(&self, a: &Vec<u8>, b: &Vec<u8>) -> f64 {
        Self::levenshtein(a, b) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::check_axioms;

    fn d(a: &str, b: &str) -> usize {
        EditDistance::levenshtein(a.as_bytes(), b.as_bytes())
    }

    #[test]
    fn textbook_cases() {
        assert_eq!(d("kitten", "sitting"), 3);
        assert_eq!(d("flaw", "lawn"), 2);
        assert_eq!(d("", ""), 0);
        assert_eq!(d("", "abc"), 3);
        assert_eq!(d("abc", ""), 3);
        assert_eq!(d("abc", "abc"), 0);
        assert_eq!(d("abc", "abd"), 1);
        assert_eq!(d("saturday", "sunday"), 3);
    }

    #[test]
    fn dna_like() {
        assert_eq!(d("ACGTACGT", "ACGTTCGT"), 1);
        assert_eq!(d("ACGT", "TGCA"), 4);
        assert_eq!(d("GATTACA", "GCATGCU"), 4);
    }

    #[test]
    fn prefix_suffix_strip_is_transparent() {
        // Shared affixes must not change the answer.
        assert_eq!(d("xxxkittenyyy", "xxxsittingyyy"), 3);
        assert_eq!(d("aaaa", "aaa"), 1);
        assert_eq!(d("abcdef", "abXdef"), 1);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("kitten", "sitting"), ("ab", "ba"), ("", "xyz")] {
            assert_eq!(d(a, b), d(b, a));
        }
    }

    #[test]
    fn bounded_by_longer_length() {
        for (a, b) in [("abcd", "wxyz"), ("a", "bcdefg"), ("hello", "help")] {
            assert!(d(a, b) <= a.len().max(b.len()));
            assert!(d(a, b) >= a.len().abs_diff(b.len()));
        }
    }

    #[test]
    fn axioms_on_strings() {
        let m = EditDistance;
        check_axioms(&m, "kitten", "sitting", "mitten", 0.0).unwrap();
        check_axioms(&m, "", "a", "ab", 0.0).unwrap();
        let v1 = b"ACGT".to_vec();
        let v2 = b"AGGT".to_vec();
        let v3 = b"A".to_vec();
        check_axioms(&m, &v1, &v2, &v3, 0.0).unwrap();
    }

    #[test]
    fn str_and_bytes_agree() {
        let m = EditDistance;
        assert_eq!(
            Metric::<str>::distance(&m, "abc", "axc"),
            Metric::<[u8]>::distance(&m, b"abc", b"axc"),
        );
    }
}
