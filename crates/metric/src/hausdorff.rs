//! Hausdorff distance between finite 2-D point sets.
//!
//! The paper cites Huttenlocher et al.'s Hausdorff matching as the metric
//! that makes image similarity fit the general model. For non-empty
//! compact sets it is a true metric: `H(A,B) = max(h(A,B), h(B,A))` where
//! `h(A,B) = max_{a∈A} min_{b∈B} |a-b|`.

use crate::space::Metric;

/// A finite, non-empty set of 2-D points (e.g. image feature locations).
#[derive(Clone, Debug, PartialEq)]
pub struct PointSet {
    points: Vec<[f64; 2]>,
}

impl PointSet {
    /// Build from points. Panics if empty: the Hausdorff distance to an
    /// empty set is undefined.
    pub fn new(points: Vec<[f64; 2]>) -> Self {
        assert!(!points.is_empty(), "Hausdorff needs non-empty sets");
        PointSet { points }
    }

    /// The points.
    pub fn points(&self) -> &[[f64; 2]] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction forbids empty sets); present to satisfy
    /// the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The (symmetric) Hausdorff metric under the Euclidean ground distance.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hausdorff {
    bound: Option<f64>,
}

impl Hausdorff {
    /// Unbounded Hausdorff metric.
    pub fn new() -> Self {
        Hausdorff { bound: None }
    }

    /// Hausdorff metric for point sets confined to the box
    /// `[0, w] x [0, h]`; the distance is then bounded by the diagonal.
    pub fn bounded(w: f64, h: f64) -> Self {
        assert!(w > 0.0 && h > 0.0);
        Hausdorff {
            bound: Some((w * w + h * h).sqrt()),
        }
    }

    /// Directed Hausdorff distance `h(a, b)`.
    pub fn directed(a: &PointSet, b: &PointSet) -> f64 {
        let mut worst = 0.0f64;
        for p in a.points() {
            let mut best = f64::INFINITY;
            for q in b.points() {
                let dx = p[0] - q[0];
                let dy = p[1] - q[1];
                let d2 = dx * dx + dy * dy;
                if d2 < best {
                    best = d2;
                }
            }
            let best = best.sqrt();
            if best > worst {
                worst = best;
                // (no early exit: sets are small in the examples)
            }
        }
        worst
    }
}

impl Metric<PointSet> for Hausdorff {
    fn distance(&self, a: &PointSet, b: &PointSet) -> f64 {
        Hausdorff::directed(a, b).max(Hausdorff::directed(b, a))
    }
    fn upper_bound(&self) -> Option<f64> {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::check_axioms;

    fn ps(points: &[[f64; 2]]) -> PointSet {
        PointSet::new(points.to_vec())
    }

    #[test]
    fn identical_sets_are_zero() {
        let a = ps(&[[0.0, 0.0], [1.0, 1.0]]);
        let m = Hausdorff::new();
        assert_eq!(m.distance(&a, &a), 0.0);
    }

    #[test]
    fn singleton_sets_reduce_to_euclidean() {
        let a = ps(&[[0.0, 0.0]]);
        let b = ps(&[[3.0, 4.0]]);
        assert_eq!(Hausdorff::new().distance(&a, &b), 5.0);
    }

    #[test]
    fn directed_is_asymmetric_but_metric_is_symmetric() {
        // B contains A plus an outlier; h(A,B)=0 but h(B,A)>0.
        let a = ps(&[[0.0, 0.0], [1.0, 0.0]]);
        let b = ps(&[[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]);
        assert_eq!(Hausdorff::directed(&a, &b), 0.0);
        assert_eq!(Hausdorff::directed(&b, &a), 9.0);
        let m = Hausdorff::new();
        assert_eq!(m.distance(&a, &b), 9.0);
        assert_eq!(m.distance(&a, &b), m.distance(&b, &a));
    }

    #[test]
    fn translation_shifts_distance() {
        let a = ps(&[[0.0, 0.0], [1.0, 1.0]]);
        let b = ps(&[[2.0, 0.0], [3.0, 1.0]]);
        assert_eq!(Hausdorff::new().distance(&a, &b), 2.0);
    }

    #[test]
    fn axioms() {
        let m = Hausdorff::new();
        let x = ps(&[[0.0, 0.0], [1.0, 0.5]]);
        let y = ps(&[[2.0, 1.0]]);
        let z = ps(&[[0.5, 0.5], [3.0, 3.0], [1.0, 2.0]]);
        check_axioms(&m, &x, &y, &z, 1e-12).unwrap();
    }

    #[test]
    fn bound_is_the_diagonal() {
        let m = Hausdorff::bounded(3.0, 4.0);
        assert_eq!(m.upper_bound(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        let _ = PointSet::new(vec![]);
    }
}
