//! # metric — generic metric spaces
//!
//! The landmark index (paper §2) works over an arbitrary *metric space*
//! `(D, d)`: any data domain plus a "black box" distance function
//! satisfying positivity, reflexivity, symmetry and the triangle
//! inequality. This crate provides the [`Metric`] trait that the rest of
//! the reproduction programs against, together with every concrete metric
//! the paper's examples call for:
//!
//! * [`vector::L1`], [`vector::L2`], [`vector::Linf`], [`vector::Lp`] —
//!   dense-vector Minkowski metrics (synthetic workloads, time series,
//!   vocal patterns);
//! * [`edit::EditDistance`] — Levenshtein distance on strings (DNA /
//!   protein sequences, similar sentences);
//! * [`cosine::Angular`] — the angle between sparse TF/IDF term vectors
//!   (document retrieval, the paper's TREC experiment);
//! * [`hausdorff::Hausdorff`] — Hausdorff distance between 2-D point sets
//!   (image similarity);
//! * [`bounded::Bounded`] — the paper's `d' = d/(1+d)` adapter that turns
//!   an unbounded metric into a bounded one (§3.1, "Boundary of index
//!   space").
//!
//! Every metric here is exercised by property-based tests asserting the
//! metric axioms on sampled triples.

pub mod bounded;
pub mod cosine;
pub mod dataset;
pub mod edit;
pub mod hausdorff;
pub mod sets;
pub mod space;
pub mod vector;

pub use bounded::Bounded;
pub use cosine::{Angular, SparseVector};
pub use dataset::{Dataset, ObjectId};
pub use edit::EditDistance;
pub use hausdorff::Hausdorff;
pub use sets::{Hamming, IdSet, Jaccard};
pub use space::Metric;
pub use vector::{Linf, Lp, L1, L2};
