//! Set and code metrics: Jaccard distance over term sets and Hamming
//! distance over fixed-length codes.
//!
//! Both are textbook metric spaces that slot straight into the landmark
//! platform (the paper's "any type of dataset with a corresponding
//! 'black box' distance function"): Jaccard covers shingled documents /
//! tag sets, Hamming covers binary sketches and hash codes.

use crate::space::Metric;

/// A finite set of `u32` elements, stored sorted and deduplicated.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IdSet {
    items: Vec<u32>,
}

impl IdSet {
    /// Build from arbitrary elements (sorted, deduplicated).
    pub fn new(mut items: Vec<u32>) -> IdSet {
        items.sort_unstable();
        items.dedup();
        IdSet { items }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted elements.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Size of the intersection with another set (sorted merge).
    pub fn intersection_len(&self, other: &IdSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Jaccard distance `1 - |A ∩ B| / |A ∪ B|`; a metric on finite sets
/// (bounded by 1). Two empty sets are identical (distance 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct Jaccard;

impl Metric<IdSet> for Jaccard {
    fn distance(&self, a: &IdSet, b: &IdSet) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection_len(b);
        let union = a.len() + b.len() - inter;
        1.0 - inter as f64 / union as f64
    }
    fn upper_bound(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Hamming distance over equal-length byte codes (count of differing
/// positions); a metric bounded by the code length.
#[derive(Clone, Copy, Debug)]
pub struct Hamming {
    len: usize,
}

impl Hamming {
    /// Metric over codes of exactly `len` bytes.
    pub fn new(len: usize) -> Hamming {
        assert!(len >= 1);
        Hamming { len }
    }
}

impl Metric<[u8]> for Hamming {
    fn distance(&self, a: &[u8], b: &[u8]) -> f64 {
        assert_eq!(a.len(), self.len, "code length mismatch");
        assert_eq!(b.len(), self.len, "code length mismatch");
        a.iter().zip(b).filter(|(x, y)| x != y).count() as f64
    }
    fn upper_bound(&self) -> Option<f64> {
        Some(self.len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::check_axioms;

    fn s(items: &[u32]) -> IdSet {
        IdSet::new(items.to_vec())
    }

    #[test]
    fn idset_normalizes() {
        let a = s(&[3, 1, 3, 2]);
        assert_eq!(a.items(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(s(&[]).is_empty());
    }

    #[test]
    fn intersection() {
        assert_eq!(s(&[1, 2, 3]).intersection_len(&s(&[2, 3, 4])), 2);
        assert_eq!(s(&[1]).intersection_len(&s(&[2])), 0);
        assert_eq!(s(&[]).intersection_len(&s(&[1])), 0);
    }

    #[test]
    fn jaccard_known_values() {
        let m = Jaccard;
        assert_eq!(m.distance(&s(&[1, 2]), &s(&[1, 2])), 0.0);
        assert_eq!(m.distance(&s(&[1, 2]), &s(&[3, 4])), 1.0);
        assert!((m.distance(&s(&[1, 2, 3]), &s(&[2, 3, 4])) - 0.5).abs() < 1e-12);
        assert_eq!(m.distance(&s(&[]), &s(&[])), 0.0);
        assert_eq!(m.distance(&s(&[]), &s(&[1])), 1.0);
        assert_eq!(m.upper_bound(), Some(1.0));
    }

    #[test]
    fn jaccard_axioms() {
        let m = Jaccard;
        let sets = [s(&[1, 2, 3]), s(&[2, 3, 4]), s(&[5]), s(&[]), s(&[1, 5])];
        for x in &sets {
            for y in &sets {
                for z in &sets {
                    check_axioms(&m, x, y, z, 1e-12).unwrap();
                }
            }
        }
    }

    #[test]
    fn hamming_known_values() {
        let m = Hamming::new(4);
        assert_eq!(m.distance(b"ACGT".as_slice(), b"ACGT".as_slice()), 0.0);
        assert_eq!(m.distance(b"ACGT".as_slice(), b"AGGT".as_slice()), 1.0);
        assert_eq!(m.distance(b"AAAA".as_slice(), b"TTTT".as_slice()), 4.0);
        assert_eq!(m.upper_bound(), Some(4.0));
    }

    #[test]
    fn hamming_axioms() {
        let m = Hamming::new(3);
        let codes: [&[u8]; 4] = [b"abc", b"abd", b"xyz", b"ayc"];
        for x in codes {
            for y in codes {
                for z in codes {
                    check_axioms(&m, x, y, z, 0.0).unwrap();
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn hamming_rejects_wrong_length() {
        let _ = Hamming::new(4).distance(b"abc".as_slice(), b"abcd".as_slice());
    }
}
