//! The [`Metric`] trait — the "black box" distance function of the paper.

/// A distance function over objects of type `T`, required to satisfy the
/// metric axioms (paper §2, Definition 1):
///
/// * positivity: `d(x, y) >= 0`
/// * reflexivity: `d(x, y) == 0` iff `x == y`
/// * symmetry: `d(x, y) == d(y, x)`
/// * triangle inequality: `d(x, y) + d(y, z) >= d(x, z)`
///
/// Implementations must be deterministic; the index architecture calls the
/// metric both at publication time (mapping objects to landmark
/// coordinates) and at query time (refining candidate sets), and those two
/// sites must agree.
pub trait Metric<T: ?Sized>: Send + Sync {
    /// The distance between two objects.
    fn distance(&self, a: &T, b: &T) -> f64;

    /// The least upper bound of the distance, when the metric is bounded.
    ///
    /// A bounded metric lets the index space boundary be fixed a priori
    /// (paper §3.1, boundary "by the original metric space"); an unbounded
    /// one needs the [`crate::bounded::Bounded`] adapter or a sampled
    /// boundary.
    fn upper_bound(&self) -> Option<f64> {
        None
    }
}

/// Blanket impl so `&M` is a metric wherever `M` is — lets callers pass
/// borrowed metrics into generic machinery without cloning.
impl<T: ?Sized, M: Metric<T> + ?Sized> Metric<T> for &M {
    fn distance(&self, a: &T, b: &T) -> f64 {
        (**self).distance(a, b)
    }
    fn upper_bound(&self) -> Option<f64> {
        (**self).upper_bound()
    }
}

/// The discrete metric: 0 for equal objects, 1 otherwise. Trivially a
/// metric; used in tests as a degenerate case the machinery must survive.
#[derive(Clone, Copy, Debug, Default)]
pub struct Discrete;

impl<T: PartialEq + Send + Sync> Metric<T> for Discrete {
    fn distance(&self, a: &T, b: &T) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
    fn upper_bound(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Check the metric axioms on one triple; returns a human-readable
/// violation description if any axiom fails. `tol` absorbs floating-point
/// rounding in the triangle inequality.
pub fn check_axioms<T: ?Sized, M: Metric<T>>(
    metric: &M,
    x: &T,
    y: &T,
    z: &T,
    tol: f64,
) -> Result<(), String> {
    let dxy = metric.distance(x, y);
    let dyx = metric.distance(y, x);
    let dyz = metric.distance(y, z);
    let dxz = metric.distance(x, z);
    let dxx = metric.distance(x, x);
    if dxy < 0.0 || dyz < 0.0 || dxz < 0.0 {
        return Err(format!(
            "negative distance: d(x,y)={dxy} d(y,z)={dyz} d(x,z)={dxz}"
        ));
    }
    if dxx.abs() > tol {
        return Err(format!("d(x,x) = {dxx} != 0"));
    }
    if (dxy - dyx).abs() > tol {
        return Err(format!("asymmetric: d(x,y)={dxy} d(y,x)={dyx}"));
    }
    if dxy + dyz + tol < dxz {
        return Err(format!(
            "triangle violated: d(x,y)+d(y,z)={} < d(x,z)={dxz}",
            dxy + dyz
        ));
    }
    if let Some(ub) = metric.upper_bound() {
        if dxy > ub + tol {
            return Err(format!("d(x,y)={dxy} exceeds declared bound {ub}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_is_a_metric() {
        let m = Discrete;
        check_axioms(&m, &1, &2, &3, 0.0).unwrap();
        check_axioms(&m, &1, &1, &1, 0.0).unwrap();
        assert_eq!(m.distance(&"a", &"a"), 0.0);
        assert_eq!(m.distance(&"a", &"b"), 1.0);
        assert_eq!(Metric::<i32>::upper_bound(&m), Some(1.0));
    }

    #[test]
    fn reference_forwarding() {
        let m = Discrete;
        let r = &m;
        assert_eq!(r.distance(&1, &2), 1.0);
        assert_eq!(Metric::<i32>::upper_bound(&r), Some(1.0));
    }

    struct Broken;
    impl Metric<i32> for Broken {
        fn distance(&self, a: &i32, b: &i32) -> f64 {
            // Violates symmetry.
            (*a - *b) as f64
        }
    }

    #[test]
    fn check_axioms_catches_violations() {
        assert!(check_axioms(&Broken, &3, &1, &1, 1e-9).is_err());
    }
}
