//! Minkowski (`L_p`) metrics on dense `f32` vectors.
//!
//! The paper's synthetic evaluation (§4.2) uses 100-dimensional Euclidean
//! data; its motivating examples also include `L1` ("Hamilton distance" in
//! the paper's terminology) for vocal patterns and time series. All
//! distances accumulate in `f64` so the 100-dimension sums stay accurate
//! even for `f32` components.

use crate::space::Metric;

/// Euclidean metric, `d(x,y) = sqrt(sum (x_i-y_i)^2)`.
///
/// `bound_per_dim`: when the data domain is a box `[lo, hi]^k`, the metric
/// is bounded by `sqrt(k) * (hi - lo)`; construct with [`L2::bounded`] to
/// expose that bound (the paper's synthetic setup bounds each of 100
/// dimensions by `[0, 100]`, giving the index-space boundary `[0, 1000]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct L2 {
    bound: Option<f64>,
}

impl L2 {
    /// Unbounded Euclidean metric.
    pub fn new() -> Self {
        L2 { bound: None }
    }

    /// Euclidean metric on the box `[lo, hi]^dims`.
    pub fn bounded(dims: usize, lo: f64, hi: f64) -> Self {
        assert!(hi > lo);
        L2 {
            bound: Some(((dims as f64).sqrt()) * (hi - lo)),
        }
    }
}

impl Metric<[f32]> for L2 {
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut acc = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = (*x - *y) as f64;
            acc += d * d;
        }
        acc.sqrt()
    }
    fn upper_bound(&self) -> Option<f64> {
        self.bound
    }
}

/// Manhattan metric, `d(x,y) = sum |x_i-y_i|`.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1 {
    bound: Option<f64>,
}

impl L1 {
    /// Unbounded L1 metric.
    pub fn new() -> Self {
        L1 { bound: None }
    }

    /// L1 metric on the box `[lo, hi]^dims`.
    pub fn bounded(dims: usize, lo: f64, hi: f64) -> Self {
        assert!(hi > lo);
        L1 {
            bound: Some(dims as f64 * (hi - lo)),
        }
    }
}

impl Metric<[f32]> for L1 {
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b).map(|(x, y)| ((*x - *y) as f64).abs()).sum()
    }
    fn upper_bound(&self) -> Option<f64> {
        self.bound
    }
}

/// Chebyshev metric, `d(x,y) = max |x_i-y_i|`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Linf {
    bound: Option<f64>,
}

impl Linf {
    /// Unbounded L∞ metric.
    pub fn new() -> Self {
        Linf { bound: None }
    }

    /// L∞ metric on the box `[lo, hi]^dims`.
    pub fn bounded(_dims: usize, lo: f64, hi: f64) -> Self {
        assert!(hi > lo);
        Linf {
            bound: Some(hi - lo),
        }
    }
}

impl Metric<[f32]> for Linf {
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| ((*x - *y) as f64).abs())
            .fold(0.0, f64::max)
    }
    fn upper_bound(&self) -> Option<f64> {
        self.bound
    }
}

/// General Minkowski metric of order `p >= 1`,
/// `d(x,y) = (sum |x_i-y_i|^p)^(1/p)`.
#[derive(Clone, Copy, Debug)]
pub struct Lp {
    p: f64,
    bound: Option<f64>,
}

impl Lp {
    /// Unbounded `L_p` metric. Panics if `p < 1` (not a metric below 1).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "L_p is only a metric for p >= 1");
        Lp { p, bound: None }
    }

    /// `L_p` metric on the box `[lo, hi]^dims`.
    pub fn bounded(p: f64, dims: usize, lo: f64, hi: f64) -> Self {
        assert!(p >= 1.0, "L_p is only a metric for p >= 1");
        assert!(hi > lo);
        Lp {
            p,
            bound: Some((dims as f64).powf(1.0 / p) * (hi - lo)),
        }
    }

    /// The order of this metric.
    pub fn order(&self) -> f64 {
        self.p
    }
}

impl Metric<[f32]> for Lp {
    fn distance(&self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        let sum: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| ((*x - *y) as f64).abs().powf(self.p))
            .sum();
        sum.powf(1.0 / self.p)
    }
    fn upper_bound(&self) -> Option<f64> {
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::check_axioms;

    const A: [f32; 3] = [0.0, 0.0, 0.0];
    const B: [f32; 3] = [3.0, 4.0, 0.0];
    const C: [f32; 3] = [1.0, 1.0, 1.0];

    #[test]
    fn l2_known_values() {
        let m = L2::new();
        assert_eq!(m.distance(&A, &B), 5.0);
        assert_eq!(m.distance(&A, &A), 0.0);
        assert!((m.distance(&A, &C) - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn l1_known_values() {
        let m = L1::new();
        assert_eq!(m.distance(&A, &B), 7.0);
        assert_eq!(m.distance(&A, &C), 3.0);
    }

    #[test]
    fn linf_known_values() {
        let m = Linf::new();
        assert_eq!(m.distance(&A, &B), 4.0);
        assert_eq!(m.distance(&A, &C), 1.0);
    }

    #[test]
    fn lp_interpolates() {
        // p=1 and p=2 must agree with the dedicated implementations.
        let p1 = Lp::new(1.0);
        let p2 = Lp::new(2.0);
        assert!((p1.distance(&A, &B) - 7.0).abs() < 1e-9);
        assert!((p2.distance(&A, &B) - 5.0).abs() < 1e-9);
        // L_p is monotonically non-increasing in p.
        let p3 = Lp::new(3.0);
        assert!(p3.distance(&A, &B) <= p2.distance(&A, &B));
        assert_eq!(p3.order(), 3.0);
    }

    #[test]
    fn bounded_constructors() {
        // Paper's synthetic setup: 100 dims in [0,100] → L2 bound 1000.
        let m = L2::bounded(100, 0.0, 100.0);
        assert_eq!(m.upper_bound(), Some(1000.0));
        let m = L1::bounded(100, 0.0, 100.0);
        assert_eq!(m.upper_bound(), Some(10_000.0));
        let m = Linf::bounded(100, 0.0, 100.0);
        assert_eq!(m.upper_bound(), Some(100.0));
        let m = Lp::bounded(2.0, 100, 0.0, 100.0);
        assert!((m.upper_bound().unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn axioms_on_fixed_triples() {
        for m in [&L2::new() as &dyn Metric<[f32]>, &L1::new(), &Linf::new()] {
            check_axioms(&m, &A[..], &B[..], &C[..], 1e-9).unwrap();
        }
        check_axioms(&Lp::new(2.5), &A[..], &B[..], &C[..], 1e-9).unwrap();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let m = L2::new();
        let _ = m.distance(&[1.0f32, 2.0][..], &[1.0f32][..]);
    }

    #[test]
    #[should_panic(expected = "only a metric")]
    fn sub_one_order_rejected() {
        let _ = Lp::new(0.5);
    }
}
