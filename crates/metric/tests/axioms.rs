//! Property-based verification of the metric axioms for every shipped
//! metric. The landmark index's correctness argument (contractive mapping,
//! superset range results) rests entirely on the triangle inequality, so
//! these are the load-bearing invariants of the whole reproduction.

use metric::space::{check_axioms, Discrete};
use metric::{Angular, Bounded, EditDistance, Hausdorff, Linf, Lp, Metric, SparseVector, L1, L2};
use proptest::prelude::*;

const DIM: usize = 8;

fn vec_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, DIM)
}

fn sparse_strategy() -> impl Strategy<Value = SparseVector> {
    prop::collection::vec((0u32..50, 0.01f32..10.0), 1..12).prop_map(SparseVector::new)
}

fn string_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ACGT]{0,24}").unwrap()
}

fn pointset_strategy() -> impl Strategy<Value = metric::hausdorff::PointSet> {
    prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..8).prop_map(|pts| {
        metric::hausdorff::PointSet::new(pts.into_iter().map(|(x, y)| [x, y]).collect())
    })
}

proptest! {
    #[test]
    fn l2_axioms(x in vec_strategy(), y in vec_strategy(), z in vec_strategy()) {
        check_axioms(&L2::new(), &x[..], &y[..], &z[..], 1e-4).unwrap();
    }

    #[test]
    fn l1_axioms(x in vec_strategy(), y in vec_strategy(), z in vec_strategy()) {
        check_axioms(&L1::new(), &x[..], &y[..], &z[..], 1e-4).unwrap();
    }

    #[test]
    fn linf_axioms(x in vec_strategy(), y in vec_strategy(), z in vec_strategy()) {
        check_axioms(&Linf::new(), &x[..], &y[..], &z[..], 1e-4).unwrap();
    }

    #[test]
    fn lp3_axioms(x in vec_strategy(), y in vec_strategy(), z in vec_strategy()) {
        check_axioms(&Lp::new(3.0), &x[..], &y[..], &z[..], 1e-4).unwrap();
    }

    #[test]
    fn bounded_l2_axioms(x in vec_strategy(), y in vec_strategy(), z in vec_strategy()) {
        let m = Bounded::new(L2::new());
        check_axioms(&m, &x[..], &y[..], &z[..], 1e-6).unwrap();
        prop_assert!(m.distance(&x[..], &y[..]) < 1.0);
    }

    #[test]
    fn edit_axioms(x in string_strategy(), y in string_strategy(), z in string_strategy()) {
        check_axioms(&EditDistance, x.as_str(), y.as_str(), z.as_str(), 0.0).unwrap();
    }

    #[test]
    fn edit_reflexive_only_when_equal(x in string_strategy(), y in string_strategy()) {
        let d: f64 = Metric::<str>::distance(&EditDistance, &x, &y);
        prop_assert_eq!(d == 0.0, x == y);
    }

    #[test]
    fn angular_axioms(x in sparse_strategy(), y in sparse_strategy(), z in sparse_strategy()) {
        // acos near 1.0 is numerically touchy; 1e-3 absorbs it while still
        // catching genuine violations (which would be O(0.1)).
        check_axioms(&Angular::new(), &x, &y, &z, 1e-3).unwrap();
    }

    #[test]
    fn hausdorff_axioms(x in pointset_strategy(), y in pointset_strategy(), z in pointset_strategy()) {
        check_axioms(&Hausdorff::new(), &x, &y, &z, 1e-9).unwrap();
    }

    #[test]
    fn discrete_axioms(x in 0u64..5, y in 0u64..5, z in 0u64..5) {
        check_axioms(&Discrete, &x, &y, &z, 0.0).unwrap();
    }

    #[test]
    fn lp_monotone_in_p(x in vec_strategy(), y in vec_strategy()) {
        // Standard fact: for fixed vectors, L_p norm decreases in p.
        let d1 = Lp::new(1.0).distance(&x[..], &y[..]);
        let d2 = Lp::new(2.0).distance(&x[..], &y[..]);
        let d4 = Lp::new(4.0).distance(&x[..], &y[..]);
        prop_assert!(d1 + 1e-6 >= d2);
        prop_assert!(d2 + 1e-6 >= d4);
    }

    #[test]
    fn edit_distance_bounds(x in string_strategy(), y in string_strategy()) {
        let d = EditDistance::levenshtein(x.as_bytes(), y.as_bytes());
        prop_assert!(d <= x.len().max(y.len()));
        prop_assert!(d >= x.len().abs_diff(y.len()));
    }
}
