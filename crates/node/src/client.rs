//! Client-side operations: connect to a running node, publish a
//! corpus, issue queries, and *verify* answers against the exact
//! expected-result model — the checks the loopback smoke job runs.
//!
//! Every check recomputes the ground truth locally from the corpus file
//! with the same arithmetic the cluster uses ([`Scenario::expected_range`]
//! / [`Scenario::expected_knn`]), then polls the origin node until its
//! merged result list matches exactly. Recall below 1.0 is therefore a
//! hard failure (nonzero exit), not a statistic.

use crate::runtime::connect_retry;
use crate::scenario::{parse_spec, read_corpus, RangeQuery, Scenario, KNN_K};
use crate::wire::{self, Frame, Member, StatsReport};
use serde_json::Value;
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long checks wait for the cluster to converge on the expected
/// answer before declaring failure.
const CHECK_PATIENCE: Duration = Duration::from_secs(60);

/// Poll interval while waiting on query results or publish barriers.
const POLL_EVERY: Duration = Duration::from_millis(50);

/// Origin-side query state as returned by the server.
#[derive(Clone, Debug)]
pub struct Report {
    /// Result messages received so far.
    pub responses: u32,
    /// Maximum delivery path length over responders so far.
    pub max_hops: u32,
    /// True when any responder flagged possible data loss.
    pub degraded: bool,
    /// Merged `(object, distance)` results, ascending distance.
    pub merged: Vec<(u32, f64)>,
}

/// One client connection, speaking sequential request/reply.
pub struct Client {
    stream: TcpStream,
    addr: String,
}

impl Client {
    /// Connect and identify as a client, retrying while the node is
    /// still bootstrapping. A bootstrapping seed consumes the hello in
    /// its join-collection loop and rejects it, so the connection is
    /// only considered established once a probe request round-trips —
    /// every returned `Client` is guaranteed to be past bootstrap.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let deadline = Instant::now() + Duration::from_secs(15);
        let mut last_error;
        loop {
            let mut stream = connect_retry(addr, Duration::from_secs(15))?;
            let handshake = wire::write_frame(
                &mut stream,
                &Frame::Hello {
                    role: wire::Role::Client,
                    index: 0,
                },
            )
            .and_then(|()| wire::write_frame(&mut stream, &Frame::MembersRequest))
            .map_err(|e| format!("hello to {addr} failed: {e}"))
            .and_then(|()| match wire::read_frame(&mut stream) {
                Ok(Some(Frame::Members { .. })) => Ok(()),
                Ok(Some(Frame::Error { reason })) => {
                    Err(format!("{addr} rejected the client handshake: {reason}"))
                }
                Ok(Some(other)) => Err(format!(
                    "{addr} answered the client handshake with {}",
                    other.kind()
                )),
                Ok(None) => Err(format!("{addr} closed the connection during handshake")),
                Err(e) => Err(format!("handshake reply from {addr} failed: {e}")),
            });
            match handshake {
                Ok(()) => {
                    return Ok(Client {
                        stream,
                        addr: addr.to_string(),
                    })
                }
                Err(e) => last_error = e,
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "could not establish a client session with {addr}: {last_error}"
                ));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// One request/reply round trip. A [`Frame::Error`] reply becomes
    /// an `Err` with the server's reason.
    pub fn request(&mut self, req: &Frame) -> Result<Frame, String> {
        wire::write_frame(&mut self.stream, req)
            .map_err(|e| format!("request to {} failed: {e}", self.addr))?;
        match wire::read_frame(&mut self.stream) {
            Ok(Some(Frame::Error { reason })) => {
                Err(format!("{} rejected the request: {reason}", self.addr))
            }
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(format!(
                "{} closed the connection instead of replying",
                self.addr
            )),
            Err(e) => Err(format!("reply from {} failed: {e}", self.addr)),
        }
    }

    /// The cluster membership in agent-index order.
    pub fn members(&mut self) -> Result<Vec<Member>, String> {
        match self.request(&Frame::MembersRequest)? {
            Frame::Members { members } => Ok(members),
            other => Err(format!(
                "{} answered members-request with {}",
                self.addr,
                other.kind()
            )),
        }
    }

    /// Publish one object's point through the connected node.
    pub fn publish(&mut self, index: u8, obj: u32, point: &[f64]) -> Result<(), String> {
        match self.request(&Frame::ClientPublish {
            index,
            obj,
            point: point.to_vec(),
        })? {
            Frame::PublishAck => Ok(()),
            other => Err(format!(
                "{} answered publish with {}",
                self.addr,
                other.kind()
            )),
        }
    }

    /// Issue a range query at the connected node (fire-and-poll).
    pub fn query(
        &mut self,
        qid: u32,
        index: u8,
        center: &[f64],
        radius: f64,
    ) -> Result<Report, String> {
        let frame = Frame::ClientQuery {
            qid,
            index,
            center: center.to_vec(),
            radius,
        };
        self.request(&frame).and_then(expect_report)
    }

    /// Current origin-side state of a query.
    pub fn status(&mut self, qid: u32) -> Result<Report, String> {
        self.request(&Frame::QueryStatus { qid })
            .and_then(expect_report)
    }

    /// The node's telemetry snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, String> {
        match self.request(&Frame::StatsRequest)? {
            Frame::StatsReport(r) => Ok(r),
            other => Err(format!(
                "{} answered stats-request with {}",
                self.addr,
                other.kind()
            )),
        }
    }

    /// Ask the node to exit; waits for the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Frame::Shutdown)? {
            Frame::ShutdownAck => Ok(()),
            other => Err(format!(
                "{} answered shutdown with {}",
                self.addr,
                other.kind()
            )),
        }
    }
}

fn expect_report(frame: Frame) -> Result<Report, String> {
    match frame {
        Frame::QueryReport {
            responses,
            max_hops,
            degraded,
            merged,
            ..
        } => Ok(Report {
            responses,
            max_hops,
            degraded,
            merged,
        }),
        other => Err(format!("expected a query report, got {}", other.kind())),
    }
}

/// A scenario stand-in for ad-hoc client operations: only `dims`,
/// `depth` and the corpus size matter to the expected-answer model.
fn adhoc_scenario(dims: usize, n_nodes: usize, n_objects: usize) -> Scenario {
    Scenario {
        n_nodes: n_nodes.max(1),
        dims,
        depth: 12,
        n_objects,
        seed: 0,
    }
}

/// Publish a whole corpus file: object `i` (line `i`) enters through
/// member `i mod n`, mirroring the parity scenario's placement. Blocks
/// until every entry is stored somewhere (the sum of member loads
/// reaches the corpus size), so follow-up queries see a complete index.
pub fn publish_file(connect: &str, corpus_path: &str) -> Result<(), String> {
    let corpus = read_corpus(corpus_path)?;
    if corpus.is_empty() {
        return Err(format!("corpus {corpus_path} is empty"));
    }
    let mut entry_client = Client::connect(connect)?;
    let members = entry_client.members()?;
    let n = members.len();
    let mut per_member: HashMap<usize, Client> = HashMap::new();
    for (obj, point) in corpus.iter().enumerate() {
        let at = obj % n;
        if let std::collections::hash_map::Entry::Vacant(e) = per_member.entry(at) {
            e.insert(Client::connect(&members[at].addr)?);
        }
        per_member
            .get_mut(&at)
            .expect("client just inserted")
            .publish(0, obj as u32, point)?;
    }
    // Barrier: with no replication every object is stored exactly once,
    // so total load == corpus size means all publishes completed.
    let deadline = Instant::now() + CHECK_PATIENCE;
    loop {
        let mut stored = 0u64;
        for m in &members {
            let at = m.index as usize;
            if let std::collections::hash_map::Entry::Vacant(e) = per_member.entry(at) {
                e.insert(Client::connect(&m.addr)?);
            }
            stored += per_member
                .get_mut(&at)
                .expect("client just inserted")
                .stats()?
                .load;
        }
        if stored as usize >= corpus.len() {
            println!("published {} objects ({} stored)", corpus.len(), stored);
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "publish barrier timed out: {stored}/{} entries stored",
                corpus.len()
            ));
        }
        std::thread::sleep(POLL_EVERY);
    }
}

fn render_results(results: &[(u32, f64)]) -> String {
    let parts: Vec<String> = results.iter().map(|(o, d)| format!("{o}@{d:.6}")).collect();
    format!("[{}]", parts.join(", "))
}

/// Poll `qid` at `client` until its merged results *start with*
/// `expected` (same objects, same order, bit-identical distances).
/// The tail beyond the prefix is allowed: the L∞ pruning bound admits
/// points just outside the metric radius, and an expanding k-nearest
/// search accumulates them behind the certified nearest entries.
fn await_prefix(
    client: &mut Client,
    qid: u32,
    expected: &[(u32, f64)],
    what: &str,
) -> Result<Report, String> {
    let deadline = Instant::now() + CHECK_PATIENCE;
    let mut last = client.status(qid)?;
    while !last.merged.starts_with(expected) {
        if Instant::now() >= deadline {
            return Err(format!(
                "{what} qid={qid}: expected a {} prefix, still seeing {} after \
                 {CHECK_PATIENCE:?} ({} responses)",
                render_results(expected),
                render_results(&last.merged),
                last.responses
            ));
        }
        std::thread::sleep(POLL_EVERY);
        last = client.status(qid)?;
    }
    Ok(last)
}

/// Poll `qid` at `client` until its merged results equal `expected`
/// exactly (same objects, same order, bit-identical distances).
fn await_expected(
    client: &mut Client,
    qid: u32,
    expected: &[(u32, f64)],
    what: &str,
) -> Result<Report, String> {
    let deadline = Instant::now() + CHECK_PATIENCE;
    let mut last = client.status(qid)?;
    while last.merged != expected {
        if Instant::now() >= deadline {
            return Err(format!(
                "{what} qid={qid}: expected {}, still seeing {} after {CHECK_PATIENCE:?} \
                 ({} responses)",
                render_results(expected),
                render_results(&last.merged),
                last.responses
            ));
        }
        std::thread::sleep(POLL_EVERY);
        last = client.status(qid)?;
    }
    Ok(last)
}

/// Issue a range query and fail unless the cluster converges on the
/// exact expected result set (recall 1.0 with exact distances).
pub fn check_range(connect: &str, spec: &str, qid: u32, corpus_path: &str) -> Result<(), String> {
    let (center, radius) = parse_spec(spec)?;
    let corpus = read_corpus(corpus_path)?;
    let sc = adhoc_scenario(center.len(), 1, corpus.len());
    let grid = sc.grid();
    let q = RangeQuery {
        origin: 0,
        center: center.clone(),
        radius,
    };
    let expected = sc.expected_range(&grid, &corpus, &q);
    let mut client = Client::connect(connect)?;
    client.query(qid, 0, &center, radius)?;
    let report = await_expected(&mut client, qid, &expected, "range")?;
    println!(
        "range qid={qid}: {} results, recall 1.000, max_hops={}, responses={}",
        report.merged.len(),
        report.max_hops,
        report.responses
    );
    Ok(())
}

/// Run the expanding-ring k-nearest search from the client (the same
/// round structure as the simulator's `run_knn`: grow the radius
/// geometrically, reusing one query id so results accumulate) and fail
/// unless the k nearest objects come back exactly.
pub fn check_knn(connect: &str, spec: &str, qid: u32, corpus_path: &str) -> Result<(), String> {
    let (center, k_raw) = parse_spec(spec)?;
    let k = k_raw as usize;
    if k == 0 || k_raw.fract() != 0.0 {
        return Err(format!("k-nearest count {k_raw} is not a positive integer"));
    }
    if k > KNN_K {
        return Err(format!(
            "k={k} exceeds the system merge cap of {KNN_K} results per query"
        ));
    }
    let corpus = read_corpus(corpus_path)?;
    let sc = adhoc_scenario(center.len(), 1, corpus.len());
    let expected = sc.expected_knn(&corpus, &center, k);
    let needed_radius = expected
        .last()
        .map(|&(_, d)| d)
        .ok_or_else(|| format!("corpus {corpus_path} has fewer than {k} objects"))?;
    let mut client = Client::connect(connect)?;
    let mut radius = 0.05f64;
    let growth = 2.0f64;
    for round in 0..16 {
        client.query(qid, 0, &center, radius)?;
        if radius >= needed_radius {
            // This radius provably covers the k nearest; wait for them
            // to surface at the head of the merged list (the tail may
            // hold admitted-but-farther points from earlier rounds).
            let report = await_prefix(&mut client, qid, &expected, "knn")?;
            println!(
                "knn qid={qid}: k={k} certified at radius {radius:.4} (round {round}), \
                 recall 1.000, responses={}",
                report.responses
            );
            return Ok(());
        }
        // Not certifiable yet — wait for this round to add what it can,
        // then expand. Every object within this round's radius is among
        // the k nearest (radius < needed_radius), and anything nearer
        // sorts ahead of the round's admitted extras, so the covered
        // entries form a stable prefix of the merged list.
        let covered: Vec<(u32, f64)> = expected
            .iter()
            .copied()
            .filter(|&(_, d)| d <= radius)
            .collect();
        await_prefix(&mut client, qid, &covered, "knn round")?;
        radius *= growth;
    }
    Err(format!(
        "knn qid={qid}: radius never reached {needed_radius:.4} in 16 rounds"
    ))
}

/// Shut down every member of the cluster reachable from `connect`.
pub fn shutdown_cluster(connect: &str) -> Result<(), String> {
    let mut client = Client::connect(connect)?;
    let members = client.members()?;
    for m in &members {
        Client::connect(&m.addr)?.shutdown()?;
        println!("node {} ({}) acknowledged shutdown", m.index, m.addr);
    }
    Ok(())
}

/// Print one node's stats snapshot as JSON (human consumption; the
/// wire format itself is binary because the vendored JSON crate is
/// write-only).
pub fn print_stats(connect: &str) -> Result<(), String> {
    let stats = Client::connect(connect)?.stats()?;
    let counters: std::collections::BTreeMap<String, Value> = stats
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
        .collect();
    let histograms: std::collections::BTreeMap<String, Value> = stats
        .histograms
        .iter()
        .map(|h| {
            (
                h.name.clone(),
                serde_json::json!({
                    "count": Value::UInt(h.count),
                    "sum": Value::UInt(h.sum),
                    "max": Value::UInt(h.max),
                }),
            )
        })
        .collect();
    let json = serde_json::json!({
        "load": Value::UInt(stats.load),
        "queries": Value::UInt(stats.queries.len() as u64),
        "counters": Value::Object(counters),
        "histograms": Value::Object(histograms),
    });
    println!("{json}");
    Ok(())
}

/// Print the membership list.
pub fn print_members(connect: &str) -> Result<(), String> {
    for m in Client::connect(connect)?.members()? {
        println!("{} {}", m.index, m.addr);
    }
    Ok(())
}
