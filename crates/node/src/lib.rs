//! # node — the real-socket driver for the sans-io search protocol
//!
//! The simulator (`simnet` + `simsearch`) is one driver of the
//! [`sansio`] protocol core; this crate is the second: the same
//! [`simsearch::SearchNode`] state machine, byte-for-byte, driven by a
//! `std::net` TCP event loop instead of a discrete-event queue. One
//! process hosts one node; a shell script (or the loopback CI smoke
//! job) composes processes into a cluster.
//!
//! * [`wire`] — the length-prefixed frame codec. Tags 0–9 carry the ten
//!   [`simsearch::SearchMsg`] variants; higher tags are bootstrap and
//!   client control frames. The codec's physical frame sizes are pinned
//!   to the paper's §4.1 `msg_bytes` pricing model by a documented
//!   per-variant delta ([`wire::model_delta`]).
//! * [`scenario`] — the deterministic shared scenario (ring ids, grid,
//!   corpus, query script) every process and the simulator derive from
//!   one seed, making sim-vs-socket parity checkable.
//! * [`runtime`] — the node process: bootstrap join dance, per-peer
//!   writer threads, shared timer wheel, and the single-threaded event
//!   loop that owns the protocol state.
//! * [`client`] — client-side operations with exact expected-answer
//!   verification (used by the CLI and the smoke script).
//!
//! See `DESIGN.md` §16 for the sans-io layering contract both drivers
//! implement, and the README quickstart for running a local cluster.

pub mod client;
pub mod runtime;
pub mod scenario;
pub mod wire;
