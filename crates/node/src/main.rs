//! The `node` binary: run one cluster node, or act as a client against
//! a running cluster. See the README quickstart for a worked example.

use node::client;
use node::runtime::{run_server, ServerOpts};
use node::scenario::{write_corpus, Scenario};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  node --listen ADDR [--join ADDR] --expect N [--dims D] [--depth B] [--objects N] [--seed S]
      Run one cluster node. The seed node omits --join; every node must
      agree on --expect and the scenario flags. `--listen 127.0.0.1:0`
      picks a free port and prints `listening on <addr>`.

  node --gen-corpus PATH --objects N [--dims D] [--seed S]
      Write the deterministic corpus (one point per line) to PATH.

  node --connect ADDR <operation>
      operations:
        --publish-file PATH                  publish the corpus, wait until stored
        --query SPEC --qid N                 issue a range query (SPEC = x,y,..@radius)
        --check-range SPEC --qid N --corpus PATH   query + assert exact expected results
        --check-knn SPEC --qid N --corpus PATH     expanding-ring kNN (SPEC = x,y,..@k)
        --stats                              print the node's telemetry as JSON
        --members                            print the membership list
        --shutdown                           stop the connected node
        --shutdown-cluster                   stop every member
";

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: Vec<String>) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = argv.into_iter().peekable();
        while let Some(arg) = it.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {arg:?} (flags start with --)"))?
                .to_string();
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked")),
                _ => None,
            };
            flags.push((name, value));
        }
        Ok(Args { flags })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} requires a value"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|e| format!("--{name} {v:?}: {e}")),
        }
    }
}

fn scenario_from(args: &Args, n_nodes: usize) -> Result<Scenario, String> {
    let defaults = Scenario::new(n_nodes);
    Ok(Scenario {
        n_nodes,
        dims: args.parse_num("dims", defaults.dims)?,
        depth: args.parse_num("depth", defaults.depth)?,
        n_objects: args.parse_num("objects", defaults.n_objects)?,
        seed: args.parse_num("seed", defaults.seed)?,
    })
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv)?;
    if args.has("help") || args.flags.is_empty() {
        print!("{USAGE}");
        return Ok(());
    }
    if args.has("listen") {
        let expect: usize = args.parse_num("expect", 0)?;
        if expect == 0 {
            return Err("--listen requires --expect N (total cluster size)".to_string());
        }
        let opts = ServerOpts {
            listen: args.require("listen")?.to_string(),
            join: args.get("join").map(String::from),
            expect,
            scenario: scenario_from(&args, expect)?,
        };
        return run_server(&opts);
    }
    if args.has("gen-corpus") {
        let path = args.require("gen-corpus")?;
        if !args.has("objects") {
            return Err("--gen-corpus requires --objects N".to_string());
        }
        let sc = scenario_from(&args, 1)?;
        write_corpus(path, &sc.corpus())?;
        println!("wrote {} {}-dim points to {path}", sc.n_objects, sc.dims);
        return Ok(());
    }
    if args.has("connect") {
        let addr = args.require("connect")?;
        let qid = || -> Result<u32, String> {
            args.require("qid")?
                .parse::<u32>()
                .map_err(|e| format!("--qid: {e}"))
        };
        if args.has("publish-file") {
            return client::publish_file(addr, args.require("publish-file")?);
        }
        if args.has("check-range") {
            return client::check_range(
                addr,
                args.require("check-range")?,
                qid()?,
                args.require("corpus")?,
            );
        }
        if args.has("check-knn") {
            return client::check_knn(
                addr,
                args.require("check-knn")?,
                qid()?,
                args.require("corpus")?,
            );
        }
        if args.has("query") {
            let (center, radius) = node::scenario::parse_spec(args.require("query")?)?;
            let mut c = client::Client::connect(addr)?;
            let report = c.query(qid()?, 0, &center, radius)?;
            println!(
                "issued; {} responses so far (poll with --check-range for verification)",
                report.responses
            );
            return Ok(());
        }
        if args.has("stats") {
            return client::print_stats(addr);
        }
        if args.has("members") {
            return client::print_members(addr);
        }
        if args.has("shutdown-cluster") {
            return client::shutdown_cluster(addr);
        }
        if args.has("shutdown") {
            return client::Client::connect(addr)?.shutdown();
        }
        return Err("--connect needs an operation (see --help)".to_string());
    }
    Err("no mode selected: use --listen, --gen-corpus, or --connect (see --help)".to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("node: {e}");
            ExitCode::FAILURE
        }
    }
}
