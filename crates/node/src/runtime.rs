//! The real-socket driver: a `std::net` TCP event loop around the
//! sans-io [`SearchNode`] core.
//!
//! One process hosts one node. The protocol state machine runs on the
//! main thread, exactly as in the simulator: every inbound frame and
//! every expired timer becomes one [`sansio::Input`], every resulting
//! [`sansio::Output::Send`] goes to a per-peer writer thread, and every
//! [`sansio::Output::Timer`] is armed on a shared timer wheel the event
//! loop sleeps against. The core never sees a socket.
//!
//! ## Threads
//!
//! * **event loop** (main thread) — owns the [`SearchNode`]; the only
//!   thread that touches protocol state.
//! * **accept thread** — takes new connections, classifies them by
//!   their first frame ([`Frame::Hello`]) and spawns a reader per
//!   connection.
//! * **peer readers** — decode [`Frame::Search`] frames and forward
//!   them to the event loop over an mpsc channel.
//! * **peer writers** — one lazily-started thread per outbound peer,
//!   owning that peer's [`TcpStream`]; the event loop never blocks on a
//!   slow peer.
//! * **client handlers** — sequential request/reply loops; requests are
//!   serviced by the event loop via a per-connection reply channel.
//!
//! ## Bootstrap
//!
//! There is no dynamic membership (the simulator's worlds are static
//! too): the seed node collects one [`Frame::JoinRequest`] per expected
//! joiner, sorts all listen addresses, assigns agent indices in sorted
//! order and broadcasts the [`Frame::Members`] list. Every process then
//! recomputes the identical evenly-spaced ring ids and Chord tables
//! from the shared [`Scenario`] — no further coordination needed.
//!
//! ## The distance oracle
//!
//! The simulator's drivers hold the whole dataset, so their
//! distance oracle is a closure over global knowledge. A real
//! node only ever learns points and query centers from the frames it
//! handles, so the runtime sniffs every inbound message (publishes
//! carry points, subqueries carry the query ball) into a process-local
//! map *before* dispatching it; the oracle answers from that map with
//! the same [`l2`] arithmetic the expected-answer model uses.

use crate::scenario::{l2, rotation, Scenario, KNN_K};
use crate::wire::{self, Frame, HistogramSummary, Member, Role, StatsReport};
use lph::Rect;
use metric::ObjectId;
use sansio::{dispatch, Input, Links, Output, ProtoCtx};
use simnet::{AgentId, SimDuration, SimTime, TimerTag};
use simsearch::msg::DistanceOracle;
use simsearch::node::IndexState;
use simsearch::{Entry, QueryBall, QueryId, SearchMsg, SearchNode, Store, SubQueryMsg, Telemetry};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Round-trip estimate the runtime reports for every peer. The
/// resilience layer (off in this driver) would use it for timeout
/// sizing only — never for correctness — so a constant is fine.
const PEER_RTT: SimDuration = SimDuration(10_000_000);

/// How long to keep retrying an outbound TCP connect before giving up.
const CONNECT_PATIENCE: Duration = Duration::from_secs(15);

/// Server configuration, straight off the CLI.
#[derive(Clone, Debug)]
pub struct ServerOpts {
    /// Address to listen on (`127.0.0.1:0` picks a free port; the
    /// resolved address is printed to stdout as `listening on ...`).
    pub listen: String,
    /// Seed address to join through; `None` makes this node the seed.
    pub join: Option<String>,
    /// Total cluster size, identical on every node.
    pub expect: usize,
    /// The shared deterministic scenario (`n_nodes` must equal
    /// `expect`).
    pub scenario: Scenario,
}

/// Query centers and object points learned from observed frames — the
/// raw material of the node's [`QueryDistance`] oracle.
#[derive(Default)]
struct OracleData {
    centers: HashMap<QueryId, Arc<[f64]>>,
    points: HashMap<u32, Box<[f64]>>,
}

impl OracleData {
    /// Harvest whatever oracle knowledge `msg` carries. Must run before
    /// the message is dispatched: the handler may rank against the
    /// oracle immediately.
    fn sniff(&mut self, msg: &SearchMsg) {
        match msg {
            SearchMsg::Route(subs) | SearchMsg::RefineBatch(subs) => {
                for sq in subs {
                    self.sniff_subquery(sq);
                }
            }
            SearchMsg::Refine(sq) | SearchMsg::Issue(sq) => self.sniff_subquery(sq),
            SearchMsg::Publish { entry, .. } | SearchMsg::Replicate { entry, .. } => {
                self.points
                    .entry(entry.obj.0)
                    .or_insert_with(|| entry.point.clone());
            }
            SearchMsg::ResultsOpt { items } => {
                for it in items {
                    if let Some(cached) = &it.cached {
                        for (obj, point) in cached {
                            self.points.entry(obj.0).or_insert_with(|| point.clone());
                        }
                    }
                }
            }
            SearchMsg::Tracked { inner, .. } => self.sniff(inner),
            SearchMsg::Results { .. } | SearchMsg::Ack { .. } => {}
        }
    }

    fn sniff_subquery(&mut self, sq: &SubQueryMsg) {
        if let Some(ball) = &sq.ball {
            self.centers
                .entry(sq.qid)
                .or_insert_with(|| ball.center.clone());
        }
    }
}

/// Constant-latency [`Links`] oracle.
struct ConstLinks(SimDuration);

impl Links for ConstLinks {
    fn rtt_to(&self, _other: AgentId) -> SimDuration {
        self.0
    }
}

/// The shared timer wheel: armed one-shot timers ordered by deadline,
/// with arm order breaking ties — mirroring the simulator's
/// `(time, seq)` event ordering.
#[derive(Default)]
struct TimerWheel {
    heap: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    tags: HashMap<u64, TimerTag>,
    seq: u64,
}

impl TimerWheel {
    fn schedule(&mut self, at: Instant, tag: TimerTag) {
        let seq = self.seq;
        self.seq += 1;
        self.tags.insert(seq, tag);
        self.heap.push(std::cmp::Reverse((at, seq)));
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|std::cmp::Reverse((at, _))| *at)
    }

    fn pop_due(&mut self, now: Instant) -> Option<TimerTag> {
        let &std::cmp::Reverse((at, seq)) = self.heap.peek()?;
        if at > now {
            return None;
        }
        self.heap.pop();
        Some(
            self.tags
                .remove(&seq)
                .expect("timer wheel entry lost its tag"),
        )
    }
}

/// One stimulus for the event loop.
enum Event {
    /// A search frame arrived from peer `from`.
    Peer { from: usize, msg: SearchMsg },
    /// A client request; the response goes back over `reply`.
    Client {
        req: Frame,
        reply: mpsc::Sender<Frame>,
    },
    /// A client finished writing its shutdown ack — exit the loop.
    Stop,
}

/// Outbound peer connections: one lazily-started writer thread per
/// destination, each owning its socket.
struct Peers {
    me: usize,
    members: Vec<Member>,
    senders: Vec<Option<mpsc::Sender<SearchMsg>>>,
}

impl Peers {
    fn new(me: usize, members: Vec<Member>) -> Peers {
        let senders = members.iter().map(|_| None).collect();
        Peers {
            me,
            members,
            senders,
        }
    }

    fn send(&mut self, to: usize, msg: SearchMsg) {
        if self.senders[to].is_none() {
            match self.connect(to) {
                Ok(tx) => self.senders[to] = Some(tx),
                Err(e) => {
                    eprintln!("node {}: dropping message to peer {to}: {e}", self.me);
                    return;
                }
            }
        }
        let tx = self.senders[to].as_ref().expect("sender just installed");
        if tx.send(msg).is_err() {
            // The writer thread died (peer closed mid-write). Drop the
            // stale sender so the next send reconnects.
            eprintln!(
                "node {}: writer for peer {to} is gone; will reconnect on next send",
                self.me
            );
            self.senders[to] = None;
        }
    }

    fn connect(&self, to: usize) -> Result<mpsc::Sender<SearchMsg>, String> {
        let addr = self.members[to].addr.clone();
        let mut stream = connect_retry(&addr, CONNECT_PATIENCE)?;
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                role: Role::Peer,
                index: self.me as u64,
            },
        )
        .map_err(|e| format!("hello to peer {to} ({addr}) failed: {e}"))?;
        let (tx, rx) = mpsc::channel::<SearchMsg>();
        let me = self.me;
        thread::spawn(move || {
            for msg in rx {
                if let Err(e) = wire::write_frame(&mut stream, &Frame::Search(msg)) {
                    eprintln!("node {me}: write to peer {to} ({addr}) failed: {e}");
                    return;
                }
            }
        });
        Ok(tx)
    }
}

/// Keep attempting a TCP connect until it succeeds or patience runs out
/// (peers come up in arbitrary order; a refused connect is normal early
/// in a cluster's life).
pub(crate) fn connect_retry(addr: &str, patience: Duration) -> Result<TcpStream, String> {
    let start = Instant::now();
    loop {
        let last_error = match TcpStream::connect(addr) {
            Ok(stream) => {
                // Frames are small and latency-sensitive.
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => e,
        };
        if start.elapsed() >= patience {
            return Err(format!(
                "could not connect to {addr} within {patience:?}: {last_error}"
            ));
        }
        thread::sleep(Duration::from_millis(100));
    }
}

/// Static-membership bootstrap. The seed collects one join per expected
/// peer and assigns indices by sorted listen address; joiners block
/// until the membership arrives. Duplicate addresses (a node joining
/// twice) are rejected with a descriptive [`Frame::Error`].
fn bootstrap(
    listener: &TcpListener,
    my_addr: &str,
    join: Option<&str>,
    expect: usize,
) -> Result<Vec<Member>, String> {
    match join {
        None => {
            let mut joined: Vec<(String, TcpStream)> = Vec::new();
            while joined.len() < expect - 1 {
                let (mut conn, _) = listener
                    .accept()
                    .map_err(|e| format!("accept failed during bootstrap: {e}"))?;
                match wire::read_frame(&mut conn) {
                    Ok(Some(Frame::JoinRequest { addr })) => {
                        if addr == my_addr || joined.iter().any(|(a, _)| *a == addr) {
                            let _ = wire::write_frame(
                                &mut conn,
                                &Frame::Error {
                                    reason: format!(
                                        "listen address {addr} is already a member (double join)"
                                    ),
                                },
                            );
                            continue;
                        }
                        joined.push((addr, conn));
                    }
                    Ok(Some(other)) => {
                        let _ = wire::write_frame(
                            &mut conn,
                            &Frame::Error {
                                reason: format!(
                                    "cluster is bootstrapping; {} frames not accepted yet",
                                    other.kind()
                                ),
                            },
                        );
                    }
                    Ok(None) => {} // probe connection; ignore
                    Err(e) => eprintln!("seed: malformed join attempt: {e}"),
                }
            }
            let mut addrs: Vec<String> = joined.iter().map(|(a, _)| a.clone()).collect();
            addrs.push(my_addr.to_string());
            addrs.sort();
            let members: Vec<Member> = addrs
                .into_iter()
                .enumerate()
                .map(|(i, addr)| Member {
                    index: i as u64,
                    addr,
                })
                .collect();
            for (addr, mut conn) in joined {
                wire::write_frame(
                    &mut conn,
                    &Frame::Members {
                        members: members.clone(),
                    },
                )
                .map_err(|e| format!("failed to send membership to joiner {addr}: {e}"))?;
            }
            Ok(members)
        }
        Some(seed) => {
            let mut conn = connect_retry(seed, CONNECT_PATIENCE)?;
            wire::write_frame(
                &mut conn,
                &Frame::JoinRequest {
                    addr: my_addr.to_string(),
                },
            )
            .map_err(|e| format!("join request to seed {seed} failed: {e}"))?;
            match wire::read_frame(&mut conn) {
                Ok(Some(Frame::Members { members })) => {
                    if members.len() != expect {
                        return Err(format!(
                            "seed {seed} announced {} members, expected {expect}",
                            members.len()
                        ));
                    }
                    if !members.iter().any(|m| m.addr == my_addr) {
                        return Err(format!(
                            "seed {seed} membership does not include this node ({my_addr})"
                        ));
                    }
                    Ok(members)
                }
                Ok(Some(Frame::Error { reason })) => {
                    Err(format!("join rejected by seed {seed}: {reason}"))
                }
                Ok(Some(other)) => Err(format!(
                    "seed {seed} answered the join with an unexpected {} frame",
                    other.kind()
                )),
                Ok(None) => Err(format!(
                    "seed {seed} closed the connection before sending the membership"
                )),
                Err(e) => Err(format!("failed to read membership from seed {seed}: {e}")),
            }
        }
    }
}

/// Everything the event loop owns.
struct Runtime {
    me: usize,
    node: SearchNode,
    peers: Peers,
    wheel: TimerWheel,
    /// Self-addressed sends, drained before anything else — matching
    /// the simulator, where a self-send is just the earliest event.
    local: VecDeque<(usize, SearchMsg)>,
    start: Instant,
    data: Arc<Mutex<OracleData>>,
    telemetry: Telemetry,
    grid_dims: usize,
    members: Vec<Member>,
}

impl Runtime {
    /// Drive one input through the sans-io core and act on its outputs
    /// in emission order — the whole driver contract in one method.
    fn feed(&mut self, input: Input<SearchMsg>) {
        if let Input::Message { msg, .. } = &input {
            self.data
                .lock()
                .expect("oracle data lock poisoned")
                .sniff(msg);
        }
        let now = SimTime(self.start.elapsed().as_nanos() as u64);
        let links = ConstLinks(PEER_RTT);
        let outputs = {
            let mut ctx = ProtoCtx::new(AgentId(self.me), now, self.members.len(), &links);
            dispatch(&mut self.node, &mut ctx, input);
            ctx.into_outputs()
        };
        for out in outputs {
            match out {
                Output::Send { to, msg, bytes: _ } => {
                    if to.0 == self.me {
                        self.local.push_back((self.me, msg));
                    } else {
                        self.peers.send(to.0, msg);
                    }
                }
                Output::Timer { delay, tag } => {
                    self.wheel
                        .schedule(Instant::now() + Duration::from_nanos(delay.0), tag);
                }
            }
        }
    }

    /// Current origin-side view of a query, as a wire frame.
    fn report(&self, qid: QueryId) -> Frame {
        match self.node.issued.get(&qid) {
            Some(iq) => Frame::QueryReport {
                qid,
                responses: iq.responses,
                max_hops: iq.max_hops,
                degraded: iq.degraded,
                merged: iq.merged.iter().map(|&(o, d)| (o.0, d)).collect(),
            },
            None => Frame::QueryReport {
                qid,
                responses: 0,
                max_hops: 0,
                degraded: false,
                merged: Vec::new(),
            },
        }
    }

    /// Snapshot this node's telemetry share.
    fn stats(&self) -> StatsReport {
        let st = self.telemetry.lock();
        let counters = st
            .registry
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let histograms = st
            .registry
            .histograms()
            .map(|(k, h)| HistogramSummary {
                name: k.to_string(),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
            })
            .collect();
        let queries = st
            .traces
            .iter()
            .map(|(&qid, t)| (qid, t.summary()))
            .collect();
        drop(st);
        StatsReport {
            counters,
            histograms,
            queries,
            load: self.node.load() as u64,
        }
    }

    /// Service one client request. Returns the reply frame; the caller
    /// sends it back over the connection's reply channel.
    fn handle_client(&mut self, req: Frame) -> Frame {
        match req {
            Frame::ClientPublish { index, obj, point } => {
                if index as usize >= self.node.indexes.len() {
                    return Frame::Error {
                        reason: format!(
                            "publish into index {index}, but only {} index(es) exist",
                            self.node.indexes.len()
                        ),
                    };
                }
                if point.len() != self.grid_dims {
                    return Frame::Error {
                        reason: format!(
                            "publish of a {}-dim point into a {}-dim index",
                            point.len(),
                            self.grid_dims
                        ),
                    };
                }
                let point = point.into_boxed_slice();
                self.data
                    .lock()
                    .expect("oracle data lock poisoned")
                    .points
                    .entry(obj)
                    .or_insert_with(|| point.clone());
                let ring_key = self.node.indexes[index as usize].grid.hash(&point);
                let entry = Entry {
                    ring_key,
                    obj: ObjectId(obj),
                    point,
                };
                self.feed(Input::Message {
                    from: AgentId(self.me),
                    msg: SearchMsg::Publish {
                        index,
                        entry,
                        hops: 0,
                    },
                });
                Frame::PublishAck
            }
            Frame::ClientQuery {
                qid,
                index,
                center,
                radius,
            } => {
                if index as usize >= self.node.indexes.len() {
                    return Frame::Error {
                        reason: format!(
                            "query against index {index}, but only {} index(es) exist",
                            self.node.indexes.len()
                        ),
                    };
                }
                if center.len() != self.grid_dims {
                    return Frame::Error {
                        reason: format!(
                            "{}-dim query center against a {}-dim index",
                            center.len(),
                            self.grid_dims
                        ),
                    };
                }
                if !(radius.is_finite() && radius >= 0.0) {
                    return Frame::Error {
                        reason: format!(
                            "query radius {radius} is not a finite non-negative number"
                        ),
                    };
                }
                let center: Arc<[f64]> = center.into();
                self.data
                    .lock()
                    .expect("oracle data lock poisoned")
                    .centers
                    .insert(qid, center.clone());
                let grid = self.node.indexes[index as usize].grid.clone();
                let rect = Rect::ball(&center, radius, grid.bounds());
                let prefix = grid.enclosing_prefix(&rect);
                self.feed(Input::Message {
                    from: AgentId(self.me),
                    msg: SearchMsg::Issue(SubQueryMsg {
                        qid,
                        index,
                        rect,
                        prefix,
                        hops: 0,
                        origin: AgentId(self.me),
                        ball: Some(QueryBall { center, radius }),
                        shortcut: false,
                    }),
                });
                self.report(qid)
            }
            Frame::QueryStatus { qid } => self.report(qid),
            Frame::StatsRequest => Frame::StatsReport(self.stats()),
            Frame::MembersRequest => Frame::Members {
                members: self.members.clone(),
            },
            Frame::Shutdown => Frame::ShutdownAck,
            other => Frame::Error {
                reason: format!("unexpected {} request on a client connection", other.kind()),
            },
        }
    }
}

/// Per-connection service: classify by the first frame, then either
/// pump search frames into the event loop (peer) or run a sequential
/// request/reply session (client). Errors are returned, logged by the
/// caller, and kill only this connection — never the node.
fn serve_conn(mut conn: TcpStream, events: mpsc::Sender<Event>) -> Result<(), String> {
    let _ = conn.set_nodelay(true);
    match wire::read_frame(&mut conn) {
        Ok(Some(Frame::Hello {
            role: Role::Peer,
            index,
        })) => {
            let from = index as usize;
            loop {
                match wire::read_frame(&mut conn) {
                    Ok(Some(Frame::Search(msg))) => {
                        if events.send(Event::Peer { from, msg }).is_err() {
                            return Ok(()); // node is shutting down
                        }
                    }
                    Ok(Some(other)) => {
                        return Err(format!(
                            "peer {from} sent an unexpected {} frame on a search connection",
                            other.kind()
                        ));
                    }
                    Ok(None) => return Ok(()), // clean close between frames
                    Err(e) => {
                        return Err(format!("connection from peer {from} failed: {e}"));
                    }
                }
            }
        }
        Ok(Some(Frame::Hello {
            role: Role::Client, ..
        })) => {
            let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
            loop {
                let req = match wire::read_frame(&mut conn) {
                    Ok(Some(f)) => f,
                    Ok(None) => return Ok(()),
                    Err(e) => return Err(format!("client connection failed: {e}")),
                };
                let shutting_down = matches!(req, Frame::Shutdown);
                if events
                    .send(Event::Client {
                        req,
                        reply: reply_tx.clone(),
                    })
                    .is_err()
                {
                    return Ok(()); // node is shutting down
                }
                let resp = reply_rx
                    .recv()
                    .map_err(|_| "event loop dropped a client request".to_string())?;
                wire::write_frame(&mut conn, &resp)
                    .map_err(|e| format!("client reply failed: {e}"))?;
                if shutting_down {
                    // The ack is on the wire; now let the loop exit.
                    let _ = events.send(Event::Stop);
                    return Ok(());
                }
            }
        }
        Ok(Some(Frame::JoinRequest { .. })) => {
            let _ = wire::write_frame(
                &mut conn,
                &Frame::Error {
                    reason: "cluster already formed; joins are closed".to_string(),
                },
            );
            Ok(())
        }
        Ok(Some(other)) => Err(format!(
            "connection opened with {} instead of hello",
            other.kind()
        )),
        Ok(None) => Ok(()), // probe connection
        Err(e) => Err(format!("handshake failed: {e}")),
    }
}

/// Run one node to completion: bind, bootstrap, serve until a client
/// sends [`Frame::Shutdown`].
pub fn run_server(opts: &ServerOpts) -> Result<(), String> {
    if opts.expect != opts.scenario.n_nodes {
        return Err(format!(
            "--expect {} disagrees with the scenario's {} nodes",
            opts.expect, opts.scenario.n_nodes
        ));
    }
    if opts.expect == 0 {
        return Err("--expect must be at least 1".to_string());
    }
    let listener = TcpListener::bind(&opts.listen)
        .map_err(|e| format!("failed to bind {}: {e}", opts.listen))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| format!("bound socket has no local address: {e}"))?
        .to_string();
    // The harness parses this line to learn auto-assigned ports.
    println!("listening on {my_addr}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("failed to flush the listen announcement: {e}"))?;

    let members = bootstrap(&listener, &my_addr, opts.join.as_deref(), opts.expect)?;
    let me = members
        .iter()
        .position(|m| m.addr == my_addr)
        .ok_or_else(|| format!("membership is missing this node's address {my_addr}"))?;
    eprintln!("node {me}: membership complete ({} nodes)", members.len());

    let sc = opts.scenario;
    let ring = sc.ring();
    let table = ring
        .build_all_tables(16, None, 16)
        .into_iter()
        .nth(me)
        .expect("build_all_tables returned a table per member");

    let data = Arc::new(Mutex::new(OracleData::default()));
    let oracle_data = Arc::clone(&data);
    let oracle: DistanceOracle = Arc::new(move |qid: QueryId, obj: ObjectId| {
        let d = oracle_data.lock().expect("oracle data lock poisoned");
        let center = d
            .centers
            .get(&qid)
            .unwrap_or_else(|| panic!("distance oracle: query {qid} has no sniffed ball center"));
        let point = d.points.get(&obj.0).unwrap_or_else(|| {
            panic!("distance oracle: object {} was never published here", obj.0)
        });
        l2(center, point)
    });

    let grid = Arc::new(sc.grid());
    let grid_dims = grid.dims();
    let mut node = SearchNode::new(
        table,
        vec![IndexState {
            grid,
            rotation: rotation(),
            store: Store::new(),
        }],
        oracle,
        KNN_K,
        None,
    );
    let telemetry = Telemetry::new();
    node.attach_telemetry(telemetry.clone());

    let (events_tx, events_rx) = mpsc::channel::<Event>();
    let accept_tx = events_tx.clone();
    thread::spawn(move || {
        for conn in listener.incoming() {
            match conn {
                Ok(conn) => {
                    let tx = accept_tx.clone();
                    thread::spawn(move || {
                        if let Err(e) = serve_conn(conn, tx) {
                            eprintln!("node: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("node: accept failed: {e}"),
            }
        }
    });

    let mut rt = Runtime {
        me,
        node,
        peers: Peers::new(me, members.clone()),
        wheel: TimerWheel::default(),
        local: VecDeque::new(),
        start: Instant::now(),
        data,
        telemetry,
        grid_dims,
        members,
    };
    rt.feed(Input::Start);

    loop {
        // Self-sends first, then due timers, then the wire — the same
        // priority a simulator event at the current instant would get.
        if let Some((from, msg)) = rt.local.pop_front() {
            rt.feed(Input::Message {
                from: AgentId(from),
                msg,
            });
            continue;
        }
        if let Some(tag) = rt.wheel.pop_due(Instant::now()) {
            rt.feed(Input::Timer(tag));
            continue;
        }
        let event = match rt.wheel.next_deadline() {
            Some(at) => {
                let wait = at.saturating_duration_since(Instant::now());
                match events_rx.recv_timeout(wait) {
                    Ok(ev) => ev,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err("event channel closed while timers were pending".to_string());
                    }
                }
            }
            None => events_rx
                .recv()
                .map_err(|_| "event channel closed unexpectedly".to_string())?,
        };
        match event {
            Event::Peer { from, msg } => rt.feed(Input::Message {
                from: AgentId(from),
                msg,
            }),
            Event::Client { req, reply } => {
                let resp = rt.handle_client(req);
                // A dropped reply receiver just means the client hung up.
                let _ = reply.send(resp);
            }
            Event::Stop => break,
        }
    }
    eprintln!("node {me}: clean shutdown", me = rt.me);
    Ok(())
}
