//! The shared deterministic scenario both drivers run.
//!
//! Sim-vs-socket parity only means something if both sides execute *the
//! same* workload over *the same* overlay. This module derives
//! everything from `(n_nodes, dims, depth, n_objects, seed)` with the
//! simulator's own [`SimRng`] streams, so the in-process simulator, the
//! parity integration test and every `node` process in a real cluster
//! reconstruct identical ring ids, routing tables, corpora and query
//! lists without exchanging any of them.
//!
//! The landmark mapping is the identity: objects *are* their index
//! points in `[0, 1]^dims` and the metric is L2. The system's ball
//! pruning is the L∞ lower bound — sound but not tight under L2, so a
//! range answer is the top-k *by true distance* of every object the
//! bound admits (which can include points just outside the metric
//! radius). [`Scenario::expected_range`] reproduces that admit rule
//! exactly, which is what lets it predict the cluster's answers from
//! the corpus alone.

use chord::{ChordId, NodeRef, OracleRing};
use lph::{Grid, Prefix, Rect, Rotation};
use metric::ObjectId;
use simnet::{AgentId, SimRng};
use simsearch::msg::{QueryBall, SearchMsg, SubQueryMsg};
use simsearch::store::Entry;
use std::sync::Arc;

/// Merged result lists are truncated to this many entries at the origin
/// (the simulator's `knn_k`); both drivers must agree on it.
pub const KNN_K: usize = 10;

/// One range query of the scripted workload.
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// Node the query is issued at.
    pub origin: usize,
    /// Query point.
    pub center: Vec<f64>,
    /// Metric search radius.
    pub radius: f64,
}

/// Deterministic cluster + workload description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Cluster size.
    pub n_nodes: usize,
    /// Index-space dimensionality (number of landmarks).
    pub dims: usize,
    /// Grid depth in bits.
    pub depth: u32,
    /// Corpus size.
    pub n_objects: usize,
    /// Root seed for all derived randomness.
    pub seed: u64,
}

impl Scenario {
    /// The defaults every driver uses unless overridden on the CLI.
    pub fn new(n_nodes: usize) -> Scenario {
        Scenario {
            n_nodes,
            dims: 3,
            depth: 12,
            n_objects: 120,
            seed: 42,
        }
    }

    /// Ring identifiers, evenly spaced over the full 64-bit ring in
    /// agent-index order. Every process recomputes the same ids, so no
    /// id exchange is needed at bootstrap.
    pub fn ring_ids(&self) -> Vec<u64> {
        (0..self.n_nodes)
            .map(|i| (((i as u128) << 64) / self.n_nodes as u128) as u64)
            .collect()
    }

    /// The oracle ring over those ids (agent `i` owns id `i`'s arc).
    pub fn ring(&self) -> OracleRing {
        OracleRing::new(
            self.ring_ids()
                .into_iter()
                .enumerate()
                .map(|(i, id)| NodeRef::new(id, i))
                .collect(),
        )
    }

    /// The index grid over `[0, 1]^dims`.
    pub fn grid(&self) -> Grid {
        Grid::new(Rect::cube(self.dims, 0.0, 1.0), self.depth)
    }

    /// The corpus: object `i`'s index point, strictly interior to the
    /// unit cube so grid hashing never sits on the boundary.
    pub fn corpus(&self) -> Vec<Vec<f64>> {
        let mut rng = SimRng::new(self.seed).fork(1);
        (0..self.n_objects)
            .map(|_| (0..self.dims).map(|_| 0.001 + 0.998 * rng.f64()).collect())
            .collect()
    }

    /// The scripted range queries (query `q` uses qid `q`).
    pub fn queries(&self) -> Vec<RangeQuery> {
        let mut rng = SimRng::new(self.seed).fork(2);
        (0..6)
            .map(|_| {
                let center: Vec<f64> = (0..self.dims).map(|_| 0.2 + 0.6 * rng.f64()).collect();
                let radius = 0.08 + 0.22 * rng.f64();
                let origin = rng.index(self.n_nodes);
                RangeQuery {
                    origin,
                    center,
                    radius,
                }
            })
            .collect()
    }

    /// Which node a publish for `obj` is injected at.
    pub fn publish_origin(&self, obj: u32) -> usize {
        obj as usize % self.n_nodes
    }

    /// The store entry for an object (identity mapping: the object's
    /// point is its index point).
    pub fn entry(&self, grid: &Grid, obj: u32, point: &[f64]) -> Entry {
        Entry {
            ring_key: grid.hash(point),
            obj: ObjectId(obj),
            point: point.to_vec().into_boxed_slice(),
        }
    }

    /// The agent that owns `key` on the ring.
    pub fn owner_of(&self, ring: &OracleRing, key: u64) -> AgentId {
        ring.owner_of(ChordId(key)).addr
    }

    /// The `Issue` message both drivers inject for a range query.
    pub fn issue_msg(&self, grid: &Grid, qid: u32, q: &RangeQuery) -> SearchMsg {
        let rect = Rect::ball(&q.center, q.radius, grid.bounds());
        let prefix: Prefix = grid.enclosing_prefix(&rect);
        SearchMsg::Issue(SubQueryMsg {
            qid,
            index: 0,
            rect,
            prefix,
            hops: 0,
            origin: AgentId(q.origin),
            ball: Some(QueryBall {
                center: q.center.clone().into(),
                radius: q.radius,
            }),
            shortcut: false,
        })
    }

    /// Model answer for a range query: every corpus object the system's
    /// own pruning admits — inside the ball's bounding rect and not
    /// rejected by the [`QueryBall::excludes`] L∞ lower bound — ranked
    /// the way the origin merges results (ascending true distance,
    /// object id breaking ties), truncated to [`KNN_K`]. There is
    /// deliberately no `d <= radius` cut: the system ranks whatever the
    /// bound admits, so the model must too. Uses the same [`l2`]
    /// arithmetic as the runtime, so distances are bit-identical, not
    /// merely close.
    pub fn expected_range(
        &self,
        grid: &Grid,
        corpus: &[Vec<f64>],
        q: &RangeQuery,
    ) -> Vec<(u32, f64)> {
        let rect = Rect::ball(&q.center, q.radius, grid.bounds());
        let ball = QueryBall {
            center: q.center.clone().into(),
            radius: q.radius,
        };
        let mut hits: Vec<(u32, f64)> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains_point(p) && !ball.excludes(p, grid.bounds()))
            .map(|(i, p)| (i as u32, l2(&q.center, p)))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        hits.truncate(KNN_K);
        hits
    }

    /// Model answer for a k-nearest query: the `k` corpus objects
    /// closest to `center`, same ranking as [`Self::expected_range`].
    pub fn expected_knn(&self, corpus: &[Vec<f64>], center: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = corpus
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, l2(center, p)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// Euclidean distance — the scenario's object-space metric. Both the
/// runtime's distance oracle and the expected-answer model call this
/// one function, so both sides do the identical float arithmetic.
pub fn l2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Identity rotation shared by every index instance the drivers build.
pub fn rotation() -> Rotation {
    Rotation::IDENTITY
}

/// Serialize a corpus as one whitespace-separated point per line.
pub fn write_corpus(path: &str, corpus: &[Vec<f64>]) -> Result<(), String> {
    let mut out = String::new();
    for p in corpus {
        // `{}` prints the shortest decimal that parses back to the
        // exact same f64 — the round-trip the checks depend on.
        let line: Vec<String> = p.iter().map(|x| format!("{x}")).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("failed to write corpus {path}: {e}"))
}

/// Parse a corpus file written by [`write_corpus`]; object ids are line
/// numbers. All lines must share one dimensionality.
pub fn read_corpus(path: &str) -> Result<Vec<Vec<f64>>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("failed to read corpus {path}: {e}"))?;
    let mut corpus = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let point: Vec<f64> = line
            .split_whitespace()
            .map(|t| {
                t.parse::<f64>()
                    .map_err(|e| format!("{path}:{}: bad coordinate {t:?}: {e}", lineno + 1))
            })
            .collect::<Result<_, _>>()?;
        if let Some(first) = corpus.first() {
            let first: &Vec<f64> = first;
            if first.len() != point.len() {
                return Err(format!(
                    "{path}:{}: {}-dim point in a {}-dim corpus",
                    lineno + 1,
                    point.len(),
                    first.len()
                ));
            }
        }
        corpus.push(point);
    }
    Ok(corpus)
}

/// Parse `x,y,..@r` (query spec) into `(center, r)`.
pub fn parse_spec(spec: &str) -> Result<(Vec<f64>, f64), String> {
    let (coords, tail) = spec
        .split_once('@')
        .ok_or_else(|| format!("query spec {spec:?} is missing '@'"))?;
    let center: Vec<f64> = coords
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad coordinate {t:?} in query spec: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if center.is_empty() {
        return Err(format!("query spec {spec:?} has no coordinates"));
    }
    let r = tail
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("bad radius/count {tail:?} in query spec: {e}"))?;
    Ok((center, r))
}

/// The [`QueryBall`] lower-bound pruning helper reused by the model —
/// re-exported so `expected_range` and the runtime visibly share it.
pub fn ball(center: &[f64], radius: f64) -> QueryBall {
    QueryBall {
        center: Arc::from(center.to_vec()),
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_reproducible() {
        let s = Scenario::new(16);
        assert_eq!(s.corpus(), s.corpus());
        assert_eq!(s.ring_ids(), s.ring_ids());
        let (qa, qb) = (s.queries(), s.queries());
        assert_eq!(qa.len(), qb.len());
        for (a, b) in qa.iter().zip(&qb) {
            assert_eq!(
                (a.origin, &a.center, a.radius),
                (b.origin, &b.center, b.radius)
            );
        }
    }

    #[test]
    fn corpus_roundtrips_through_files() {
        let s = Scenario::new(4);
        let corpus = s.corpus();
        let path = std::env::temp_dir().join("node-scenario-corpus-test.txt");
        let path = path.to_str().expect("temp path is valid UTF-8");
        write_corpus(path, &corpus).expect("write corpus");
        assert_eq!(read_corpus(path).expect("read corpus"), corpus);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn spec_parsing() {
        let (c, r) = parse_spec("0.5, 0.25,0.75@0.2").expect("valid spec");
        assert_eq!(c, vec![0.5, 0.25, 0.75]);
        assert_eq!(r, 0.2);
        assert!(parse_spec("0.5,0.5").is_err());
        assert!(parse_spec("x@1").is_err());
    }
}
