//! Length-prefixed frame codec for the real-socket driver.
//!
//! Every frame on the wire is `u32` little-endian length, then a one-byte
//! tag, then the tag's body. The length covers tag + body (not itself)
//! and is capped at [`MAX_FRAME_BYTES`]; a peer announcing more is
//! treated as malformed and disconnected, never buffered.
//!
//! Tags 0–9 encode the ten [`SearchMsg`] variants one-to-one (the
//! protocol plane); tags 16+ are control frames the runtime and client
//! use for bootstrap, publishing, querying and stats (the driver plane).
//! Control frames never reach the sans-io core.
//!
//! Integers are little-endian; `f64` travels as its IEEE-754 bit pattern
//! (`to_bits`/`from_bits`), so round-trips are exact for every value,
//! NaN payloads included. Strings are `u16` length + UTF-8 bytes.
//!
//! ## Relation to the §4.1 byte model
//!
//! The simulator prices messages with the paper's *abstract* model
//! ([`simsearch::msg::msg_bytes`]): e.g. a query message is
//! `20 + 4 + n·(4k + 9)` bytes — 2-byte coordinates, no explicit rect or
//! ball. The physical codec carries the full structures (8-byte
//! coordinates, prefix, rect, optional ball, origin address), so every
//! encoded frame is larger than its modelled price by a per-variant,
//! structurally-determined delta. [`model_delta`] documents and computes
//! that delta exactly; the codec tests assert
//! `encoded_len == msg_bytes + model_delta` for every variant, which
//! pins the physical encoding to the pricing model.

use lph::{Prefix, Rect};
use metric::ObjectId;
use simnet::AgentId;
use simsearch::msg::ResultItem;
use simsearch::msg::{QueryBall, SearchMsg, SubQueryMsg};
use simsearch::store::Entry;
use simsearch::telemetry::QuerySummary;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Hard cap on a frame's announced length (tag + body). Generously above
/// anything the protocol produces; anything larger is a corrupt or
/// hostile peer.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Maximum nesting depth of [`SearchMsg::Tracked`] envelopes the decoder
/// accepts. The protocol never nests them at all; the cap keeps a
/// malicious frame from recursing the decoder.
const MAX_TRACKED_DEPTH: u8 = 4;

/// Decode-side failure: what was wrong with the bytes. Every malformed
/// input maps to an error — the decoder never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before a field was complete.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
        /// Bytes the field needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The 4-byte length prefix announced more than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced length.
        len: u32,
    },
    /// A frame body was longer than its tag's fields consumed.
    TrailingGarbage {
        /// The frame kind that decoded cleanly before the excess.
        frame: &'static str,
        /// Unconsumed bytes at the end of the body.
        extra: usize,
    },
    /// A zero-length frame (no tag byte).
    EmptyFrame,
    /// An unassigned tag byte.
    UnknownTag(u8),
    /// A boolean / enum byte outside its legal values.
    BadFlag {
        /// The field.
        what: &'static str,
        /// The illegal byte.
        value: u8,
    },
    /// A prefix whose key has bits set beyond its length, or a length
    /// over 64 — constructing it would panic, so it is rejected here.
    BadPrefix {
        /// The offending left-aligned key.
        key: u64,
        /// The offending length.
        len: u32,
    },
    /// A rect with zero dimensions or `lo > hi` (NaN included) on some
    /// dimension — constructing it would panic, so it is rejected here.
    BadRect {
        /// The first offending dimension (or 0 for a zero-dim rect).
        dim: usize,
    },
    /// A string field that was not valid UTF-8.
    BadUtf8 {
        /// The field.
        what: &'static str,
    },
    /// [`SearchMsg::Tracked`] envelopes nested deeper than the protocol
    /// can produce.
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, need, have } => {
                write!(
                    f,
                    "truncated frame: {what} needs {need} bytes, {have} remain"
                )
            }
            WireError::Oversized { len } => {
                write!(
                    f,
                    "oversized length prefix: {len} bytes (cap {MAX_FRAME_BYTES})"
                )
            }
            WireError::TrailingGarbage { frame, extra } => {
                write!(
                    f,
                    "trailing garbage: {extra} bytes after a complete {frame} frame"
                )
            }
            WireError::EmptyFrame => write!(f, "empty frame: no tag byte"),
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::BadFlag { what, value } => {
                write!(f, "illegal {what} byte {value}")
            }
            WireError::BadPrefix { key, len } => {
                write!(f, "malformed prefix: key {key:#x} / length {len}")
            }
            WireError::BadRect { dim } => write!(f, "malformed rect at dimension {dim}"),
            WireError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            WireError::TooDeep => write!(f, "tracked envelopes nested too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// Which side of the runtime a connecting socket speaks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Another cluster node; the connection carries [`SearchMsg`] frames.
    Peer,
    /// A client; the connection carries request/reply control frames.
    Client,
}

/// One cluster member as assigned by the bootstrap seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// The member's agent index (its [`AgentId`]).
    pub index: u64,
    /// The member's listen address, e.g. `127.0.0.1:46101`.
    pub addr: String,
}

/// `(count, sum, max)` summary of one named histogram — enough for the
/// sim-vs-socket parity digest without shipping bucket vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Histogram name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

/// One node's telemetry snapshot, shipped in reply to
/// [`Frame::StatsRequest`]. Counters and summaries are partial (this
/// node's share); summing counters and [`QuerySummary::merge`]-folding
/// the per-query roll-ups across all nodes reproduces the simulator's
/// global view — the parity digest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// Every named counter this node recorded.
    pub counters: Vec<(String, u64)>,
    /// Every named histogram, summarized.
    pub histograms: Vec<HistogramSummary>,
    /// Per-query trace roll-ups recorded at this node.
    pub queries: Vec<(u32, QuerySummary)>,
    /// Entries currently stored (the node's load).
    pub load: u64,
}

/// Everything that travels on a socket.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Protocol plane: one index-layer message (tags 0–9).
    Search(SearchMsg),
    /// First frame on every non-bootstrap connection: who is calling.
    /// Peers announce their agent index; clients send 0.
    Hello {
        /// Caller's role.
        role: Role,
        /// Caller's agent index (peers only).
        index: u64,
    },
    /// Bootstrap: a joiner registers its listen address with the seed.
    JoinRequest {
        /// The joiner's advertised listen address.
        addr: String,
    },
    /// Bootstrap and client plane: the full membership in index order.
    Members {
        /// All cluster members.
        members: Vec<Member>,
    },
    /// Generic failure reply (join rejected, bad request).
    Error {
        /// Human-readable reason.
        reason: String,
    },
    /// Client: publish one object's index point via the connected node.
    ClientPublish {
        /// Target index scheme.
        index: u8,
        /// The object id.
        obj: u32,
        /// The object's index-space point.
        point: Vec<f64>,
    },
    /// Reply to [`Frame::ClientPublish`]: accepted and routed (storage
    /// completion is observed via stats, not this ack).
    PublishAck,
    /// Client: issue a range query at the connected node.
    ClientQuery {
        /// Query id (client-chosen, cluster-unique).
        qid: u32,
        /// Target index scheme.
        index: u8,
        /// Query point in index space.
        center: Vec<f64>,
        /// Metric search radius.
        radius: f64,
    },
    /// Client: ask for the current state of an issued query.
    QueryStatus {
        /// The query.
        qid: u32,
    },
    /// Reply to [`Frame::QueryStatus`] (and [`Frame::ClientQuery`]).
    QueryReport {
        /// The query.
        qid: u32,
        /// Result messages received so far.
        responses: u32,
        /// Maximum delivery path length over responders so far.
        max_hops: u32,
        /// True when any responder flagged possible data loss.
        degraded: bool,
        /// Merged `(object, distance)` results, ascending distance.
        merged: Vec<(u32, f64)>,
    },
    /// Client: ask for the node's telemetry snapshot.
    StatsRequest,
    /// Reply to [`Frame::StatsRequest`].
    StatsReport(StatsReport),
    /// Client: ask for the membership list.
    MembersRequest,
    /// Client: ask the node to exit cleanly.
    Shutdown,
    /// Reply to [`Frame::Shutdown`], written before the node exits.
    ShutdownAck,
}

impl Frame {
    /// The frame's kind, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Search(_) => "search",
            Frame::Hello { .. } => "hello",
            Frame::JoinRequest { .. } => "join-request",
            Frame::Members { .. } => "members",
            Frame::Error { .. } => "error",
            Frame::ClientPublish { .. } => "client-publish",
            Frame::PublishAck => "publish-ack",
            Frame::ClientQuery { .. } => "client-query",
            Frame::QueryStatus { .. } => "query-status",
            Frame::QueryReport { .. } => "query-report",
            Frame::StatsRequest => "stats-request",
            Frame::StatsReport(_) => "stats-report",
            Frame::MembersRequest => "members-request",
            Frame::Shutdown => "shutdown",
            Frame::ShutdownAck => "shutdown-ack",
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field too long");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_points(out: &mut Vec<u8>, pts: &[f64]) {
    put_u16(out, pts.len() as u16);
    for &x in pts {
        put_f64(out, x);
    }
}

fn put_subquery(out: &mut Vec<u8>, sq: &SubQueryMsg) {
    put_u32(out, sq.qid);
    out.push(sq.index);
    put_u32(out, sq.hops);
    put_u64(out, sq.origin.0 as u64);
    out.push(sq.shortcut as u8);
    put_u64(out, sq.prefix.key());
    put_u32(out, sq.prefix.len());
    put_u16(out, sq.rect.dims() as u16);
    for d in 0..sq.rect.dims() {
        put_f64(out, sq.rect.lo()[d]);
    }
    for d in 0..sq.rect.dims() {
        put_f64(out, sq.rect.hi()[d]);
    }
    match &sq.ball {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_f64(out, b.radius);
            put_points(out, &b.center);
        }
    }
}

fn put_entry(out: &mut Vec<u8>, e: &Entry) {
    put_u64(out, e.ring_key);
    put_u32(out, e.obj.0);
    put_points(out, &e.point);
}

fn put_result_item(out: &mut Vec<u8>, it: &ResultItem) {
    put_u32(out, it.qid);
    put_u32(out, it.hops);
    out.push(it.degraded as u8);
    out.push(it.index);
    put_u64(out, it.owner);
    put_u16(out, it.entries.len() as u16);
    for &(o, d) in &it.entries {
        put_u32(out, o.0);
        put_f64(out, d);
    }
    put_u16(out, it.covered.len() as u16);
    for &(a, b) in &it.covered {
        put_u64(out, a);
        put_u64(out, b);
    }
    match &it.cached {
        None => out.push(0),
        Some(pts) => {
            out.push(1);
            put_u32(out, pts.len() as u32);
            for (o, p) in pts {
                put_u32(out, o.0);
                put_points(out, p);
            }
        }
    }
}

fn put_search(out: &mut Vec<u8>, msg: &SearchMsg) {
    match msg {
        SearchMsg::Route(subs) => {
            out.push(0);
            put_u16(out, subs.len() as u16);
            for sq in subs {
                put_subquery(out, sq);
            }
        }
        SearchMsg::Refine(sq) => {
            out.push(1);
            put_subquery(out, sq);
        }
        SearchMsg::RefineBatch(subs) => {
            out.push(2);
            put_u16(out, subs.len() as u16);
            for sq in subs {
                put_subquery(out, sq);
            }
        }
        SearchMsg::Results {
            qid,
            hops,
            entries,
            degraded,
        } => {
            out.push(3);
            put_u32(out, *qid);
            put_u32(out, *hops);
            out.push(*degraded as u8);
            put_u16(out, entries.len() as u16);
            for &(o, d) in entries {
                put_u32(out, o.0);
                put_f64(out, d);
            }
        }
        SearchMsg::ResultsOpt { items } => {
            out.push(4);
            put_u16(out, items.len() as u16);
            for it in items {
                put_result_item(out, it);
            }
        }
        SearchMsg::Issue(sq) => {
            out.push(5);
            put_subquery(out, sq);
        }
        SearchMsg::Publish { index, entry, hops } => {
            out.push(6);
            out.push(*index);
            put_u32(out, *hops);
            put_entry(out, entry);
        }
        SearchMsg::Replicate {
            index,
            owner,
            entry,
        } => {
            out.push(7);
            out.push(*index);
            put_u64(out, *owner);
            put_entry(out, entry);
        }
        SearchMsg::Tracked { seq, dead, inner } => {
            out.push(8);
            put_u64(out, *seq);
            put_u16(out, dead.len() as u16);
            for &d in dead {
                put_u64(out, d);
            }
            put_search(out, inner);
        }
        SearchMsg::Ack { seq } => {
            out.push(9);
            put_u64(out, *seq);
        }
    }
}

/// Encode a frame's tag + body, without the length prefix.
pub fn encode_body(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Search(msg) => put_search(&mut out, msg),
        Frame::Hello { role, index } => {
            out.push(16);
            out.push(match role {
                Role::Peer => 0,
                Role::Client => 1,
            });
            put_u64(&mut out, *index);
        }
        Frame::JoinRequest { addr } => {
            out.push(17);
            put_str(&mut out, addr);
        }
        Frame::Members { members } => {
            out.push(18);
            put_u16(&mut out, members.len() as u16);
            for m in members {
                put_u64(&mut out, m.index);
                put_str(&mut out, &m.addr);
            }
        }
        Frame::Error { reason } => {
            out.push(19);
            put_str(&mut out, reason);
        }
        Frame::ClientPublish { index, obj, point } => {
            out.push(20);
            out.push(*index);
            put_u32(&mut out, *obj);
            put_points(&mut out, point);
        }
        Frame::PublishAck => out.push(21),
        Frame::ClientQuery {
            qid,
            index,
            center,
            radius,
        } => {
            out.push(22);
            put_u32(&mut out, *qid);
            out.push(*index);
            put_f64(&mut out, *radius);
            put_points(&mut out, center);
        }
        Frame::QueryStatus { qid } => {
            out.push(23);
            put_u32(&mut out, *qid);
        }
        Frame::QueryReport {
            qid,
            responses,
            max_hops,
            degraded,
            merged,
        } => {
            out.push(24);
            put_u32(&mut out, *qid);
            put_u32(&mut out, *responses);
            put_u32(&mut out, *max_hops);
            out.push(*degraded as u8);
            put_u16(&mut out, merged.len() as u16);
            for &(o, d) in merged {
                put_u32(&mut out, o);
                put_f64(&mut out, d);
            }
        }
        Frame::StatsRequest => out.push(25),
        Frame::StatsReport(r) => {
            out.push(26);
            put_u16(&mut out, r.counters.len() as u16);
            for (name, v) in &r.counters {
                put_str(&mut out, name);
                put_u64(&mut out, *v);
            }
            put_u16(&mut out, r.histograms.len() as u16);
            for h in &r.histograms {
                put_str(&mut out, &h.name);
                put_u64(&mut out, h.count);
                put_u64(&mut out, h.sum);
                put_u64(&mut out, h.max);
            }
            put_u32(&mut out, r.queries.len() as u32);
            for (qid, s) in &r.queries {
                put_u32(&mut out, *qid);
                put_u32(&mut out, s.hops);
                put_u32(&mut out, s.splits);
                put_u32(&mut out, s.shared_paths);
                put_u32(&mut out, s.forwards);
                put_u32(&mut out, s.handoffs);
                put_u32(&mut out, s.refines);
                put_u32(&mut out, s.peels);
                put_u32(&mut out, s.answers);
                put_u64(&mut out, s.scanned);
                put_u64(&mut out, s.matched);
                put_u64(&mut out, s.returned);
                put_u64(&mut out, s.query_bytes);
                put_u64(&mut out, s.result_bytes);
            }
            put_u64(&mut out, r.load);
        }
        Frame::MembersRequest => out.push(27),
        Frame::Shutdown => out.push(28),
        Frame::ShutdownAck => out.push(29),
    }
    out
}

/// Encode a complete frame: 4-byte little-endian length, tag, body.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let body = encode_body(frame);
    assert!(
        body.len() <= MAX_FRAME_BYTES as usize,
        "outbound {} frame exceeds MAX_FRAME_BYTES",
        frame.kind()
    );
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadFlag { what, value: v }),
        }
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.u16(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    fn points(&mut self, what: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.u16(what)? as usize;
        let mut pts = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            pts.push(self.f64(what)?);
        }
        Ok(pts)
    }
}

fn dec_prefix(d: &mut Dec<'_>) -> Result<Prefix, WireError> {
    let key = d.u64("prefix key")?;
    let len = d.u32("prefix length")?;
    let low_mask = u64::MAX.checked_shr(len).unwrap_or(0);
    if len > 64 || key & low_mask != 0 {
        return Err(WireError::BadPrefix { key, len });
    }
    Ok(Prefix::new(key, len))
}

fn dec_rect(d: &mut Dec<'_>) -> Result<Rect, WireError> {
    let dims = d.u16("rect dims")? as usize;
    if dims == 0 {
        return Err(WireError::BadRect { dim: 0 });
    }
    let mut lo = Vec::with_capacity(dims.min(4096));
    for _ in 0..dims {
        lo.push(d.f64("rect lo")?);
    }
    let mut hi = Vec::with_capacity(dims.min(4096));
    for _ in 0..dims {
        hi.push(d.f64("rect hi")?);
    }
    for i in 0..dims {
        // An incomparable pair (NaN bound) must be rejected too —
        // Rect::new asserts against it, and malformed input has to come
        // back as an error instead of a panic.
        let ordered = matches!(
            lo[i].partial_cmp(&hi[i]),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !ordered {
            return Err(WireError::BadRect { dim: i });
        }
    }
    Ok(Rect::new(lo, hi))
}

fn dec_subquery(d: &mut Dec<'_>) -> Result<SubQueryMsg, WireError> {
    let qid = d.u32("subquery qid")?;
    let index = d.u8("subquery index")?;
    let hops = d.u32("subquery hops")?;
    let origin = d.u64("subquery origin")? as usize;
    let shortcut = d.bool("subquery shortcut flag")?;
    let prefix = dec_prefix(d)?;
    let rect = dec_rect(d)?;
    let ball = if d.bool("ball flag")? {
        let radius = d.f64("ball radius")?;
        let center: Arc<[f64]> = d.points("ball center")?.into();
        Some(QueryBall { center, radius })
    } else {
        None
    };
    Ok(SubQueryMsg {
        qid,
        index,
        rect,
        prefix,
        hops,
        origin: AgentId(origin),
        ball,
        shortcut,
    })
}

fn dec_entry(d: &mut Dec<'_>) -> Result<Entry, WireError> {
    let ring_key = d.u64("entry ring key")?;
    let obj = ObjectId(d.u32("entry object")?);
    let point = d.points("entry point")?.into_boxed_slice();
    Ok(Entry {
        ring_key,
        obj,
        point,
    })
}

fn dec_ranked(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<(ObjectId, f64)>, WireError> {
    let n = d.u16(what)? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let o = ObjectId(d.u32(what)?);
        let dist = d.f64(what)?;
        out.push((o, dist));
    }
    Ok(out)
}

fn dec_result_item(d: &mut Dec<'_>) -> Result<ResultItem, WireError> {
    let qid = d.u32("item qid")?;
    let hops = d.u32("item hops")?;
    let degraded = d.bool("item degraded flag")?;
    let index = d.u8("item index")?;
    let owner = d.u64("item owner")?;
    let entries = dec_ranked(d, "item entries")?;
    let n_cov = d.u16("item covered")? as usize;
    let mut covered = Vec::with_capacity(n_cov.min(4096));
    for _ in 0..n_cov {
        let a = d.u64("item covered")?;
        let b = d.u64("item covered")?;
        covered.push((a, b));
    }
    let cached = if d.bool("item cached flag")? {
        let n = d.u32("item cached")? as usize;
        let mut pts = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let o = ObjectId(d.u32("item cached")?);
            let p = d.points("item cached point")?.into_boxed_slice();
            pts.push((o, p));
        }
        Some(pts)
    } else {
        None
    };
    Ok(ResultItem {
        qid,
        hops,
        entries,
        degraded,
        index,
        owner,
        covered,
        cached,
    })
}

fn dec_search(d: &mut Dec<'_>, tag: u8, depth: u8) -> Result<SearchMsg, WireError> {
    if depth > MAX_TRACKED_DEPTH {
        return Err(WireError::TooDeep);
    }
    match tag {
        0 | 2 => {
            let n = d.u16("subquery count")? as usize;
            let mut subs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                subs.push(dec_subquery(d)?);
            }
            Ok(if tag == 0 {
                SearchMsg::Route(subs)
            } else {
                SearchMsg::RefineBatch(subs)
            })
        }
        1 => Ok(SearchMsg::Refine(dec_subquery(d)?)),
        3 => {
            let qid = d.u32("results qid")?;
            let hops = d.u32("results hops")?;
            let degraded = d.bool("results degraded flag")?;
            let entries = dec_ranked(d, "results entries")?;
            Ok(SearchMsg::Results {
                qid,
                hops,
                entries,
                degraded,
            })
        }
        4 => {
            let n = d.u16("item count")? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(dec_result_item(d)?);
            }
            Ok(SearchMsg::ResultsOpt { items })
        }
        5 => Ok(SearchMsg::Issue(dec_subquery(d)?)),
        6 => {
            let index = d.u8("publish index")?;
            let hops = d.u32("publish hops")?;
            let entry = dec_entry(d)?;
            Ok(SearchMsg::Publish { index, entry, hops })
        }
        7 => {
            let index = d.u8("replicate index")?;
            let owner = d.u64("replicate owner")?;
            let entry = dec_entry(d)?;
            Ok(SearchMsg::Replicate {
                index,
                owner,
                entry,
            })
        }
        8 => {
            let seq = d.u64("tracked seq")?;
            let n = d.u16("tracked dead list")? as usize;
            let mut dead = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                dead.push(d.u64("tracked dead list")?);
            }
            let inner_tag = d.u8("tracked inner tag")?;
            let inner = dec_search(d, inner_tag, depth + 1)?;
            Ok(SearchMsg::Tracked {
                seq,
                dead,
                inner: Box::new(inner),
            })
        }
        9 => Ok(SearchMsg::Ack {
            seq: d.u64("ack seq")?,
        }),
        t => Err(WireError::UnknownTag(t)),
    }
}

/// Decode one frame body (tag + fields, no length prefix). The body must
/// be consumed exactly: leftover bytes are [`WireError::TrailingGarbage`].
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut d = Dec::new(body);
    if body.is_empty() {
        return Err(WireError::EmptyFrame);
    }
    let tag = d.u8("frame tag")?;
    let frame = match tag {
        0..=9 => Frame::Search(dec_search(&mut d, tag, 0)?),
        16 => {
            let role = match d.u8("hello role")? {
                0 => Role::Peer,
                1 => Role::Client,
                v => {
                    return Err(WireError::BadFlag {
                        what: "hello role",
                        value: v,
                    })
                }
            };
            let index = d.u64("hello index")?;
            Frame::Hello { role, index }
        }
        17 => Frame::JoinRequest {
            addr: d.string("join address")?,
        },
        18 => {
            let n = d.u16("member count")? as usize;
            let mut members = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let index = d.u64("member index")?;
                let addr = d.string("member address")?;
                members.push(Member { index, addr });
            }
            Frame::Members { members }
        }
        19 => Frame::Error {
            reason: d.string("error reason")?,
        },
        20 => {
            let index = d.u8("publish index")?;
            let obj = d.u32("publish object")?;
            let point = d.points("publish point")?;
            Frame::ClientPublish { index, obj, point }
        }
        21 => Frame::PublishAck,
        22 => {
            let qid = d.u32("query qid")?;
            let index = d.u8("query index")?;
            let radius = d.f64("query radius")?;
            let center = d.points("query center")?;
            Frame::ClientQuery {
                qid,
                index,
                center,
                radius,
            }
        }
        23 => Frame::QueryStatus {
            qid: d.u32("status qid")?,
        },
        24 => {
            let qid = d.u32("report qid")?;
            let responses = d.u32("report responses")?;
            let max_hops = d.u32("report hops")?;
            let degraded = d.bool("report degraded flag")?;
            let n = d.u16("report results")? as usize;
            let mut merged = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let o = d.u32("report results")?;
                let dist = d.f64("report results")?;
                merged.push((o, dist));
            }
            Frame::QueryReport {
                qid,
                responses,
                max_hops,
                degraded,
                merged,
            }
        }
        25 => Frame::StatsRequest,
        26 => {
            let nc = d.u16("stats counters")? as usize;
            let mut counters = Vec::with_capacity(nc.min(4096));
            for _ in 0..nc {
                let name = d.string("counter name")?;
                let v = d.u64("counter value")?;
                counters.push((name, v));
            }
            let nh = d.u16("stats histograms")? as usize;
            let mut histograms = Vec::with_capacity(nh.min(4096));
            for _ in 0..nh {
                histograms.push(HistogramSummary {
                    name: d.string("histogram name")?,
                    count: d.u64("histogram count")?,
                    sum: d.u64("histogram sum")?,
                    max: d.u64("histogram max")?,
                });
            }
            let nq = d.u32("stats queries")? as usize;
            let mut queries = Vec::with_capacity(nq.min(4096));
            for _ in 0..nq {
                let qid = d.u32("summary qid")?;
                let s = QuerySummary {
                    hops: d.u32("summary hops")?,
                    splits: d.u32("summary splits")?,
                    shared_paths: d.u32("summary shared_paths")?,
                    forwards: d.u32("summary forwards")?,
                    handoffs: d.u32("summary handoffs")?,
                    refines: d.u32("summary refines")?,
                    peels: d.u32("summary peels")?,
                    answers: d.u32("summary answers")?,
                    scanned: d.u64("summary scanned")?,
                    matched: d.u64("summary matched")?,
                    returned: d.u64("summary returned")?,
                    query_bytes: d.u64("summary query_bytes")?,
                    result_bytes: d.u64("summary result_bytes")?,
                };
                queries.push((qid, s));
            }
            let load = d.u64("stats load")?;
            Frame::StatsReport(StatsReport {
                counters,
                histograms,
                queries,
                load,
            })
        }
        27 => Frame::MembersRequest,
        28 => Frame::Shutdown,
        29 => Frame::ShutdownAck,
        t => return Err(WireError::UnknownTag(t)),
    };
    if d.remaining() != 0 {
        return Err(WireError::TrailingGarbage {
            frame: frame.kind(),
            extra: d.remaining(),
        });
    }
    Ok(frame)
}

/// Try to decode one length-prefixed frame from the front of `buf`.
/// `Ok(None)` means the buffer does not yet hold a complete frame;
/// `Ok(Some((frame, consumed)))` yields the frame and how many bytes it
/// spanned (prefix included). Oversized length prefixes fail immediately
/// — they are never waited for.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = decode_body(&buf[4..total])?;
    Ok(Some((frame, total)))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Read one frame from a stream. `Ok(None)` is a clean end-of-stream
/// (the peer closed between frames); EOF mid-frame and every decode
/// failure map to `io::ErrorKind::InvalidData`/`UnexpectedEof` errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("connection closed inside a frame header ({got}/4 bytes)"),
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized { len },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("connection closed inside a {len}-byte frame body"),
            )
        } else {
            e
        }
    })?;
    decode_body(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

// ---------------------------------------------------------------------
// §4.1 model cross-check
// ---------------------------------------------------------------------

/// How many bytes the physical frame of `msg` (length prefix included)
/// exceeds the paper's [`simsearch::msg::msg_bytes`] price — the
/// documented per-variant delta the codec tests pin the encoder to.
///
/// The delta exists because the model abstracts: it prices a subquery at
/// `4k + 9` bytes (2-byte coordinates, key, flags byte) while the codec
/// carries the full 8-byte-coordinate rect, the prefix, the origin
/// address and the optional ball. Per structure (all little-endian
/// encodings as implemented above):
///
/// * frame overhead: 4 (length) + 1 (tag) = **5** per frame, vs the
///   model's 20-byte header already included in `msg_bytes` — so the
///   frame-level delta starts at `5 - modelled_header` and the
///   per-structure terms below are added on top;
/// * subquery: physical `42 + 16·d` (+ `11 + 8·c` with a ball) vs
///   modelled `4k + 9`;
/// * ranked entry `(object, distance)`: physical 12 vs modelled 6;
/// * publish entry: physical `14 + 8·p` + fixed fields vs modelled
///   `8 + 4 + 8·p` + 20-byte header.
///
/// Returned as `i64`: sparse frames (an empty `Results`) can be cheaper
/// physically than the model's flat header.
pub fn model_delta(msg: &SearchMsg, k_of_index: impl Fn(u8) -> usize + Copy) -> i64 {
    fn sub_physical(sq: &SubQueryMsg) -> i64 {
        // qid 4 + index 1 + hops 4 + origin 8 + shortcut 1 + prefix 12
        // + rect (2 + 16·d) + ball flag 1 [+ radius 8 + center 2 + 8·c]
        let mut n = 4 + 1 + 4 + 8 + 1 + 12 + 2 + 16 * sq.rect.dims() as i64 + 1;
        if let Some(b) = &sq.ball {
            n += 8 + 2 + 8 * b.center.len() as i64;
        }
        n
    }
    fn item_physical(it: &ResultItem) -> i64 {
        // qid 4 + hops 4 + degraded 1 + index 1 + owner 8 + entries
        // (2 + 12·e) + covered (2 + 16·c) + cached flag 1 [+ count 4 +
        // per point (4 + 2 + 8·k)]
        let mut n = 4
            + 4
            + 1
            + 1
            + 8
            + 2
            + 12 * it.entries.len() as i64
            + 2
            + 16 * it.covered.len() as i64
            + 1;
        if let Some(pts) = &it.cached {
            n += 4;
            for (_, p) in pts {
                n += 4 + 2 + 8 * p.len() as i64;
            }
        }
        n
    }
    fn entry_physical(e: &Entry) -> i64 {
        8 + 4 + 2 + 8 * e.point.len() as i64
    }
    // Physical tag+body size, computed structurally (mirrors the
    // encoder), plus the 4-byte length prefix.
    fn physical(msg: &SearchMsg) -> i64 {
        let body = match msg {
            SearchMsg::Route(subs) | SearchMsg::RefineBatch(subs) => {
                2 + subs.iter().map(sub_physical).sum::<i64>()
            }
            SearchMsg::Refine(sq) | SearchMsg::Issue(sq) => sub_physical(sq),
            SearchMsg::Results { entries, .. } => 4 + 4 + 1 + 2 + 12 * entries.len() as i64,
            SearchMsg::ResultsOpt { items } => 2 + items.iter().map(item_physical).sum::<i64>(),
            SearchMsg::Publish { entry, .. } => 1 + 4 + entry_physical(entry),
            SearchMsg::Replicate { entry, .. } => 1 + 8 + entry_physical(entry),
            SearchMsg::Tracked { dead, inner, .. } => {
                // seq + dead count + ids + nested tag byte + nested body
                // (the nested physical() already includes prefix+tag: 5;
                // subtract its 4-byte prefix, keep its tag).
                8 + 2 + 8 * dead.len() as i64 + (physical(inner) - 4)
            }
            SearchMsg::Ack { .. } => 8,
        };
        4 + 1 + body
    }
    physical(msg) - simsearch::msg::msg_bytes(msg, k_of_index) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lph::Prefix;

    fn sq(ball: bool) -> SubQueryMsg {
        SubQueryMsg {
            qid: 7,
            index: 0,
            rect: Rect::new(vec![0.25, 0.5], vec![0.75, 1.0]),
            prefix: Prefix::of_key(0xDEAD_BEEF_0000_0000, 16),
            hops: 3,
            origin: AgentId(4),
            ball: ball.then(|| QueryBall {
                center: vec![0.5, 0.75].into(),
                radius: 0.25,
            }),
            shortcut: true,
        }
    }

    #[test]
    fn frame_roundtrip_spot_checks() {
        let frames = [
            Frame::Search(SearchMsg::Route(vec![sq(true), sq(false)])),
            Frame::Hello {
                role: Role::Peer,
                index: 11,
            },
            Frame::Members {
                members: vec![Member {
                    index: 0,
                    addr: "127.0.0.1:9000".into(),
                }],
            },
            Frame::ClientQuery {
                qid: 3,
                index: 0,
                center: vec![0.1, 0.9],
                radius: 0.2,
            },
            Frame::Shutdown,
        ];
        for f in &frames {
            let bytes = encode_frame(f);
            let (back, used) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(
                encode_frame(&back),
                bytes,
                "re-encode differs: {}",
                f.kind()
            );
        }
    }

    #[test]
    fn incomplete_buffers_wait_oversized_fails_fast() {
        let bytes = encode_frame(&Frame::PublishAck);
        for cut in 0..bytes.len() {
            assert!(matches!(decode_frame(&bytes[..cut]), Ok(None)));
        }
        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(matches!(
            decode_frame(&huge),
            Err(WireError::Oversized { len }) if len == MAX_FRAME_BYTES + 1
        ));
    }

    #[test]
    fn malformed_prefix_and_rect_are_errors_not_panics() {
        // A Refine body whose prefix has low bits set beyond its length.
        let mut body = Vec::new();
        body.push(1u8); // Refine
        put_u32(&mut body, 0);
        body.push(0);
        put_u32(&mut body, 0);
        put_u64(&mut body, 0);
        body.push(0);
        put_u64(&mut body, 0xFF); // key with low bits set
        put_u32(&mut body, 8); // len 8: key must be left-aligned
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadPrefix { .. })
        ));
        // A rect with lo > hi.
        let mut sqb = Vec::new();
        put_subquery(&mut sqb, &sq(false));
        // lo[0] sits right after the fixed 30 bytes + 2-byte dims.
        let lo_at = 4 + 1 + 4 + 8 + 1 + 12 + 2;
        sqb[lo_at..lo_at + 8].copy_from_slice(&f64::to_bits(9.0).to_le_bytes());
        let mut body = vec![1u8];
        body.extend_from_slice(&sqb);
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadRect { dim: 0 })
        ));
    }
}
