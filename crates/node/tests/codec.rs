//! Codec tests: proptest round-trips over every message variant,
//! malformed-input rejection (errors, never panics), and the pin of the
//! physical frame length to the paper's §4.1 `msg_bytes` pricing model
//! via the documented per-variant delta.
//!
//! The vendored proptest stand-in has no combinators beyond `prop_map`,
//! so the generators here are written directly against its [`TestRng`]
//! and wrapped in one tiny function-pointer [`Strategy`].

use lph::{Prefix, Rect};
use metric::ObjectId;
use node::wire::{
    decode_body, decode_frame, encode_frame, model_delta, read_frame, Frame, HistogramSummary,
    Member, Role, StatsReport, WireError, MAX_FRAME_BYTES,
};
use proptest::prelude::*;
use proptest::TestRng;
use simnet::AgentId;
use simsearch::msg::{msg_bytes, QueryBall, ResultItem, SearchMsg, SubQueryMsg};
use simsearch::store::Entry;
use simsearch::telemetry::QuerySummary;

/// Adapter: any `fn(&mut TestRng) -> T` is a strategy.
struct Gen<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

fn usize_below(rng: &mut TestRng, bound: usize) -> usize {
    rng.below_u128(bound as u128) as usize
}

fn coord(rng: &mut TestRng) -> f64 {
    (rng.unit_f64() - 0.5) * 2.0e6
}

fn point(rng: &mut TestRng, dims: usize) -> Vec<f64> {
    (0..dims).map(|_| coord(rng)).collect()
}

fn gen_prefix(rng: &mut TestRng) -> Prefix {
    let len = rng.below_u128(65) as u32;
    Prefix::of_key(rng.next_u64(), len)
}

fn gen_rect(rng: &mut TestRng) -> Rect {
    let dims = 1 + usize_below(rng, 3);
    let a = point(rng, dims);
    let b = point(rng, dims);
    let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
    let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
    Rect::new(lo, hi)
}

fn gen_subquery(rng: &mut TestRng) -> SubQueryMsg {
    let ball = if rng.next_u64().is_multiple_of(2) {
        Some(QueryBall {
            center: point(rng, 3).into(),
            radius: rng.unit_f64() * 10.0,
        })
    } else {
        None
    };
    SubQueryMsg {
        qid: rng.next_u64() as u32,
        index: (rng.next_u64() % 4) as u8,
        rect: gen_rect(rng),
        prefix: gen_prefix(rng),
        hops: rng.next_u64() as u32,
        origin: AgentId(usize_below(rng, 1000)),
        ball,
        shortcut: rng.next_u64().is_multiple_of(2),
    }
}

fn gen_entry(rng: &mut TestRng) -> Entry {
    Entry {
        ring_key: rng.next_u64(),
        obj: ObjectId(rng.next_u64() as u32),
        point: point(rng, 3).into_boxed_slice(),
    }
}

fn gen_ranked(rng: &mut TestRng) -> Vec<(ObjectId, f64)> {
    (0..usize_below(rng, 8))
        .map(|_| (ObjectId(rng.next_u64() as u32), rng.unit_f64() * 100.0))
        .collect()
}

fn gen_item(rng: &mut TestRng) -> ResultItem {
    let cached = if rng.next_u64().is_multiple_of(2) {
        Some(
            (0..usize_below(rng, 4))
                .map(|_| {
                    (
                        ObjectId(rng.next_u64() as u32),
                        point(rng, 3).into_boxed_slice(),
                    )
                })
                .collect(),
        )
    } else {
        None
    };
    ResultItem {
        qid: rng.next_u64() as u32,
        hops: rng.next_u64() as u32,
        entries: gen_ranked(rng),
        degraded: rng.next_u64().is_multiple_of(2),
        index: (rng.next_u64() % 4) as u8,
        owner: rng.next_u64(),
        covered: (0..usize_below(rng, 4))
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect(),
        cached,
    }
}

/// One of the nine non-tracked `SearchMsg` variants.
fn gen_flat_search(rng: &mut TestRng) -> SearchMsg {
    match rng.next_u64() % 9 {
        0 => SearchMsg::Route(
            (0..usize_below(rng, 4))
                .map(|_| gen_subquery(rng))
                .collect(),
        ),
        1 => SearchMsg::Refine(gen_subquery(rng)),
        2 => SearchMsg::RefineBatch(
            (0..usize_below(rng, 4))
                .map(|_| gen_subquery(rng))
                .collect(),
        ),
        3 => SearchMsg::Results {
            qid: rng.next_u64() as u32,
            hops: rng.next_u64() as u32,
            entries: gen_ranked(rng),
            degraded: rng.next_u64().is_multiple_of(2),
        },
        4 => SearchMsg::ResultsOpt {
            items: (0..usize_below(rng, 4)).map(|_| gen_item(rng)).collect(),
        },
        5 => SearchMsg::Issue(gen_subquery(rng)),
        6 => SearchMsg::Publish {
            index: (rng.next_u64() % 4) as u8,
            entry: gen_entry(rng),
            hops: rng.next_u64() as u32,
        },
        7 => SearchMsg::Replicate {
            index: (rng.next_u64() % 4) as u8,
            owner: rng.next_u64(),
            entry: gen_entry(rng),
        },
        _ => SearchMsg::Ack {
            seq: rng.next_u64(),
        },
    }
}

/// All ten variants; `Tracked` wraps a non-tracked inner message, as
/// the protocol produces.
fn gen_search(rng: &mut TestRng) -> SearchMsg {
    if rng.next_u64().is_multiple_of(10) {
        SearchMsg::Tracked {
            seq: rng.next_u64(),
            dead: (0..usize_below(rng, 4)).map(|_| rng.next_u64()).collect(),
            inner: Box::new(gen_flat_search(rng)),
        }
    } else {
        gen_flat_search(rng)
    }
}

fn gen_summary(rng: &mut TestRng) -> QuerySummary {
    QuerySummary {
        hops: rng.next_u64() as u32,
        splits: rng.next_u64() as u32,
        shared_paths: rng.next_u64() as u32,
        forwards: rng.next_u64() as u32,
        handoffs: rng.next_u64() as u32,
        refines: rng.next_u64() as u32,
        peels: rng.next_u64() as u32,
        answers: rng.next_u64() as u32,
        scanned: rng.next_u64(),
        matched: rng.next_u64(),
        returned: rng.next_u64(),
        query_bytes: rng.next_u64(),
        result_bytes: rng.next_u64(),
    }
}

fn gen_string(rng: &mut TestRng) -> String {
    let alphabet: Vec<char> = "abcxyz0189.:-/ é✓".chars().collect();
    (0..usize_below(rng, 20))
        .map(|_| alphabet[usize_below(rng, alphabet.len())])
        .collect()
}

fn gen_members(rng: &mut TestRng) -> Vec<Member> {
    (0..usize_below(rng, 5))
        .map(|_| Member {
            index: rng.next_u64(),
            addr: gen_string(rng),
        })
        .collect()
}

/// Every control frame kind.
fn gen_control(rng: &mut TestRng) -> Frame {
    match rng.next_u64() % 14 {
        0 => Frame::Hello {
            role: if rng.next_u64().is_multiple_of(2) {
                Role::Peer
            } else {
                Role::Client
            },
            index: rng.next_u64(),
        },
        1 => Frame::JoinRequest {
            addr: gen_string(rng),
        },
        2 => Frame::Members {
            members: gen_members(rng),
        },
        3 => Frame::Error {
            reason: gen_string(rng),
        },
        4 => Frame::ClientPublish {
            index: (rng.next_u64() % 4) as u8,
            obj: rng.next_u64() as u32,
            point: point(rng, 3),
        },
        5 => Frame::PublishAck,
        6 => Frame::ClientQuery {
            qid: rng.next_u64() as u32,
            index: (rng.next_u64() % 4) as u8,
            center: point(rng, 3),
            radius: rng.unit_f64() * 10.0,
        },
        7 => Frame::QueryStatus {
            qid: rng.next_u64() as u32,
        },
        8 => Frame::QueryReport {
            qid: rng.next_u64() as u32,
            responses: rng.next_u64() as u32,
            max_hops: rng.next_u64() as u32,
            degraded: rng.next_u64().is_multiple_of(2),
            merged: (0..usize_below(rng, 6))
                .map(|_| (rng.next_u64() as u32, rng.unit_f64() * 10.0))
                .collect(),
        },
        9 => Frame::StatsRequest,
        10 => Frame::StatsReport(StatsReport {
            counters: (0..usize_below(rng, 5))
                .map(|_| (gen_string(rng), rng.next_u64()))
                .collect(),
            histograms: (0..usize_below(rng, 4))
                .map(|_| HistogramSummary {
                    name: gen_string(rng),
                    count: rng.next_u64(),
                    sum: rng.next_u64(),
                    max: rng.next_u64(),
                })
                .collect(),
            queries: (0..usize_below(rng, 4))
                .map(|_| (rng.next_u64() as u32, gen_summary(rng)))
                .collect(),
            load: rng.next_u64(),
        }),
        11 => Frame::MembersRequest,
        12 => Frame::Shutdown,
        _ => Frame::ShutdownAck,
    }
}

fn gen_frame(rng: &mut TestRng) -> Frame {
    if rng.next_u64() % 5 < 2 {
        Frame::Search(gen_search(rng))
    } else {
        gen_control(rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode → decode → re-encode is the identity on bytes, for every
    /// protocol and control variant; the streaming reader agrees.
    #[test]
    fn roundtrip_all_variants(frame in Gen(gen_frame)) {
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes)
            .expect("well-formed frame must decode")
            .expect("complete frame must not be 'incomplete'");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(encode_frame(&decoded), bytes.clone());
        let mut cursor = std::io::Cursor::new(&bytes);
        let via_reader = read_frame(&mut cursor)
            .expect("reader accepts the frame")
            .expect("reader sees a frame, not EOF");
        prop_assert_eq!(encode_frame(&via_reader), bytes);
    }

    /// Every strict prefix of a frame body fails to decode with an
    /// error — never a panic, never a bogus success.
    #[test]
    fn truncation_is_an_error(frame in Gen(gen_frame)) {
        let bytes = encode_frame(&frame);
        let body = &bytes[4..];
        for cut in 0..body.len() {
            prop_assert!(decode_body(&body[..cut]).is_err());
        }
    }

    /// A frame body with bytes appended is trailing garbage.
    #[test]
    fn trailing_garbage_is_an_error(frame in Gen(gen_frame), extra in 1usize..5) {
        let bytes = encode_frame(&frame);
        let mut body = bytes[4..].to_vec();
        body.extend(std::iter::repeat_n(0xAA, extra));
        prop_assert!(matches!(
            decode_body(&body),
            Err(WireError::TrailingGarbage { .. })
        ));
    }

    /// The physical frame length equals the §4.1 model price plus the
    /// documented structural delta, for every protocol variant.
    #[test]
    fn physical_length_pins_to_byte_model(msg in Gen(gen_search)) {
        let k = |_: u8| 3usize;
        let encoded = encode_frame(&Frame::Search(msg.clone())).len() as i64;
        let model = msg_bytes(&msg, k) as i64;
        prop_assert_eq!(encoded, model + model_delta(&msg, k));
    }
}

// ------------------------------------------------------------------
// Deterministic malformed-input cases
// ------------------------------------------------------------------

#[test]
fn oversized_length_prefix_is_rejected_by_the_reader() {
    let mut bytes = (MAX_FRAME_BYTES + 7).to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 16]);
    let mut cursor = std::io::Cursor::new(&bytes);
    let err = read_frame(&mut cursor).expect_err("oversized prefix must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("oversized length prefix"));
}

#[test]
fn eof_mid_frame_is_a_described_error() {
    let bytes = encode_frame(&Frame::StatsRequest);
    // Header promises 1 body byte; deliver none.
    let mut cursor = std::io::Cursor::new(&bytes[..4]);
    let err = read_frame(&mut cursor).expect_err("EOF mid-frame must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // Cut inside the header.
    let mut cursor = std::io::Cursor::new(&bytes[..2]);
    let err = read_frame(&mut cursor).expect_err("EOF mid-header must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // Clean EOF before any byte is fine.
    let mut cursor = std::io::Cursor::new(&[] as &[u8]);
    assert!(read_frame(&mut cursor).expect("clean EOF is ok").is_none());
}

#[test]
fn unknown_and_reserved_tags_are_errors() {
    for tag in [10u8, 15, 30, 200, 255] {
        assert!(
            matches!(decode_body(&[tag]), Err(WireError::UnknownTag(t)) if t == tag),
            "tag {tag} must be rejected"
        );
    }
    assert!(matches!(decode_body(&[]), Err(WireError::EmptyFrame)));
}

#[test]
fn bad_utf8_in_strings_is_an_error() {
    // JoinRequest with a 2-byte string that is not UTF-8.
    let body = [17u8, 2, 0, 0xFF, 0xFE];
    assert!(matches!(decode_body(&body), Err(WireError::BadUtf8 { .. })));
}

#[test]
fn deep_tracked_nesting_is_bounded() {
    // Hand-roll 6 nested Tracked envelopes around an Ack; the decoder
    // caps recursion instead of following a hostile frame down.
    let mut body = vec![9u8];
    body.extend_from_slice(&7u64.to_le_bytes()); // Ack { seq: 7 }
    for _ in 0..6 {
        let mut outer = vec![8u8]; // Tracked
        outer.extend_from_slice(&1u64.to_le_bytes()); // seq
        outer.extend_from_slice(&0u16.to_le_bytes()); // empty dead list
        outer.extend_from_slice(&body);
        body = outer;
    }
    assert!(matches!(decode_body(&body), Err(WireError::TooDeep)));
}

#[test]
fn nan_coordinates_roundtrip_bit_exactly() {
    let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF); // NaN with payload
    let frame = Frame::ClientPublish {
        index: 0,
        obj: 1,
        point: vec![weird, f64::NEG_INFINITY, -0.0],
    };
    let bytes = encode_frame(&frame);
    let (decoded, _) = decode_frame(&bytes).unwrap().unwrap();
    match decoded {
        Frame::ClientPublish { point, .. } => {
            assert_eq!(point[0].to_bits(), weird.to_bits());
            assert_eq!(point[1], f64::NEG_INFINITY);
            assert_eq!(point[2].to_bits(), (-0.0f64).to_bits());
        }
        other => panic!("decoded into {}", other.kind()),
    }
}
