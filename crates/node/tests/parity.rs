//! Sim-vs-socket parity: the deterministic simulator and a real 16-process
//! loopback cluster run the *same* scenario through the *same* sans-io
//! core, and must land on identical telemetry — summed counters,
//! histogram roll-ups, per-query summaries, merged answer lists with
//! bit-identical distances, and total stored load. Wall-clock is the
//! only thing allowed to differ, and nothing in the digest derives
//! from it.
//!
//! This is the acceptance test of the driver contract: if either driver
//! reorders, drops, duplicates or mangles a single protocol message,
//! some commutative total in the digest moves and the comparison fails
//! with a field-level diff.

use node::client::Client;
use node::scenario::{l2, rotation, Scenario, KNN_K};
use simnet::{AgentId, Sim, SimTime, Topology};
use simsearch::msg::DistanceOracle;
use simsearch::node::IndexState;
use simsearch::telemetry::QuerySummary;
use simsearch::{QueryId, SearchMsg, SearchNode, Store, Telemetry};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 16;

/// How long the cluster side gets to bootstrap, publish, answer and
/// quiesce before the test gives up.
const CLUSTER_PATIENCE: Duration = Duration::from_secs(120);

/// Origin-side view of one query, with distances as raw bits so the
/// comparison is exact equality, not float tolerance.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ReportDigest {
    responses: u32,
    max_hops: u32,
    degraded: bool,
    merged: Vec<(u32, u64)>,
}

/// Everything both drivers must agree on. Derived only from protocol
/// events — no timestamps, no ports, no process ids.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Digest {
    counters: BTreeMap<String, u64>,
    /// name -> (count, sum, max)
    histograms: BTreeMap<String, (u64, u64, u64)>,
    queries: BTreeMap<u32, QuerySummary>,
    reports: BTreeMap<u32, ReportDigest>,
    load: u64,
}

fn merged_bits(merged: &[(u32, f64)]) -> Vec<(u32, u64)> {
    merged.iter().map(|&(o, d)| (o, d.to_bits())).collect()
}

// ------------------------------------------------------------------
// Driver 1: the deterministic simulator
// ------------------------------------------------------------------

fn sim_digest(sc: &Scenario) -> Digest {
    let corpus = sc.corpus();
    let queries = sc.queries();
    let grid = Arc::new(sc.grid());

    // The simulator driver may hold global knowledge; the oracle closes
    // over the whole corpus and query list, with the same `l2` the
    // cluster's sniffing oracle uses.
    let oracle_corpus = corpus.clone();
    let oracle_queries = queries.clone();
    let oracle: DistanceOracle = Arc::new(move |qid: QueryId, obj: metric::ObjectId| {
        l2(
            &oracle_queries[qid as usize].center,
            &oracle_corpus[obj.0 as usize],
        )
    });

    let telemetry = Telemetry::new();
    let agents: Vec<SearchNode> = sc
        .ring()
        .build_all_tables(16, None, 16)
        .into_iter()
        .map(|table| {
            let mut node = SearchNode::new(
                table,
                vec![IndexState {
                    grid: Arc::clone(&grid),
                    rotation: rotation(),
                    store: Store::new(),
                }],
                Arc::clone(&oracle),
                KNN_K,
                None,
            );
            node.attach_telemetry(telemetry.clone());
            node
        })
        .collect();

    let mut sim = Sim::new(
        Topology::uniform(sc.n_nodes, SimTime::from_millis(10)),
        agents,
        sc.seed,
    );

    // Phase 1: publish the corpus, each object entering at the same
    // node the cluster's publisher uses, and let routing drain.
    for (obj, point) in corpus.iter().enumerate() {
        sim.inject(
            SimTime::ZERO,
            AgentId(sc.publish_origin(obj as u32)),
            SearchMsg::Publish {
                index: 0,
                entry: sc.entry(&grid, obj as u32, point),
                hops: 0,
            },
        );
    }
    sim.run();

    // Phase 2: issue every scripted range query at its origin.
    let now = sim.now();
    for (qid, q) in queries.iter().enumerate() {
        sim.inject(now, AgentId(q.origin), sc.issue_msg(&grid, qid as u32, q));
    }
    sim.run();

    // Ground truth first: the sim's merged lists must equal the model's
    // expected answers exactly, otherwise "parity" would only prove
    // both drivers are wrong the same way.
    for (qid, q) in queries.iter().enumerate() {
        let iq = sim
            .agent(AgentId(q.origin))
            .issued
            .get(&(qid as u32))
            .unwrap_or_else(|| panic!("sim: origin {} never issued qid {qid}", q.origin));
        let merged: Vec<(u32, f64)> = iq.merged.iter().map(|&(o, d)| (o.0, d)).collect();
        let expected = sc.expected_range(&grid, &corpus, q);
        assert_eq!(
            merged_bits(&merged),
            merged_bits(&expected),
            "sim recall != 1.0 for qid {qid}"
        );
    }

    let st = telemetry.lock();
    Digest {
        counters: st
            .registry
            .counters()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        histograms: st
            .registry
            .histograms()
            .map(|(k, h)| (k.to_string(), (h.count(), h.sum(), h.max())))
            .collect(),
        queries: st
            .traces
            .iter()
            .map(|(&qid, t)| (qid, t.summary()))
            .collect(),
        reports: queries
            .iter()
            .enumerate()
            .map(|(qid, q)| {
                let iq = &sim.agent(AgentId(q.origin)).issued[&(qid as u32)];
                (
                    qid as u32,
                    ReportDigest {
                        responses: iq.responses,
                        max_hops: iq.max_hops,
                        degraded: iq.degraded,
                        merged: merged_bits(
                            &iq.merged.iter().map(|&(o, d)| (o.0, d)).collect::<Vec<_>>(),
                        ),
                    },
                )
            })
            .collect(),
        load: sim.agents().map(|n| n.load() as u64).sum(),
    }
}

// ------------------------------------------------------------------
// Driver 2: a real loopback cluster of `node` processes
// ------------------------------------------------------------------

/// Kills every child on drop so a failing assertion never leaks 16
/// orphan processes into the test environment.
struct Cluster {
    children: Vec<Child>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_node(join: Option<&str>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_node"));
    cmd.args(["--listen", "127.0.0.1:0", "--expect", &N.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if let Some(seed) = join {
        cmd.args(["--join", seed]);
    }
    let mut child = cmd.spawn().expect("spawn node process");
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the node's listen announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected node announcement: {line:?}"))
        .to_string();
    (child, addr)
}

fn cluster_digest(sc: &Scenario, sim: &Digest) -> Digest {
    let deadline = Instant::now() + CLUSTER_PATIENCE;
    let corpus = sc.corpus();
    let queries = sc.queries();

    let (seed_child, seed_addr) = spawn_node(None);
    let mut cluster = Cluster {
        children: vec![seed_child],
    };
    for _ in 1..N {
        let (child, _) = spawn_node(Some(&seed_addr));
        cluster.children.push(child);
    }

    let mut seed_client = Client::connect(&seed_addr).expect("connect to seed");
    let members = seed_client.members().expect("fetch membership");
    assert_eq!(members.len(), N, "cluster membership size");
    let mut clients: Vec<Client> = members
        .iter()
        .map(|m| Client::connect(&m.addr).expect("connect to member"))
        .collect();

    // Publish phase, same placement as the sim, then barrier on total
    // load (no replication: every object is stored exactly once).
    for (obj, point) in corpus.iter().enumerate() {
        clients[sc.publish_origin(obj as u32)]
            .publish(0, obj as u32, point)
            .expect("publish");
    }
    loop {
        let stored: u64 = clients
            .iter_mut()
            .map(|c| c.stats().expect("stats during publish barrier").load)
            .sum();
        if stored as usize == corpus.len() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "publish barrier timed out at {stored}/{} entries",
            corpus.len()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Query phase: issue at the scripted origins, then wait for each
    // origin's merged list to reach the sim's answer.
    for (qid, q) in queries.iter().enumerate() {
        clients[q.origin]
            .query(qid as u32, 0, &q.center, q.radius)
            .expect("issue query");
    }
    for (qid, q) in queries.iter().enumerate() {
        let want = &sim.reports[&(qid as u32)].merged;
        loop {
            let report = clients[q.origin].status(qid as u32).expect("query status");
            if &merged_bits(&report.merged) == want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "qid {qid} never converged: want {want:?}, still seeing {:?}",
                report.merged
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // Merged lists are complete, but stragglers (empty result frames
    // still in flight) can lag the counters; poll until the digest is
    // stable across two consecutive snapshots.
    let mut last = collect_digest(&mut clients, &queries, sc);
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let next = collect_digest(&mut clients, &queries, sc);
        if next == last {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cluster telemetry never went quiescent"
        );
        last = next;
    }

    for client in &mut clients {
        client.shutdown().expect("shutdown member");
    }
    for child in &mut cluster.children {
        let status = child.wait().expect("wait for node process");
        assert!(status.success(), "node process exited with {status}");
    }
    cluster.children.clear();
    last
}

fn collect_digest(
    clients: &mut [Client],
    queries: &[node::scenario::RangeQuery],
    _sc: &Scenario,
) -> Digest {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut summaries: BTreeMap<u32, QuerySummary> = BTreeMap::new();
    let mut load = 0u64;
    for client in clients.iter_mut() {
        let stats = client.stats().expect("stats snapshot");
        for (name, v) in stats.counters {
            *counters.entry(name).or_insert(0) += v;
        }
        for h in stats.histograms {
            let slot = histograms.entry(h.name).or_insert((0, 0, 0));
            slot.0 += h.count;
            slot.1 += h.sum;
            slot.2 = slot.2.max(h.max);
        }
        for (qid, summary) in stats.queries {
            summaries.entry(qid).or_default().merge(&summary);
        }
        load += stats.load;
    }
    let reports = queries
        .iter()
        .enumerate()
        .map(|(qid, q)| {
            let r = clients[q.origin].status(qid as u32).expect("query status");
            (
                qid as u32,
                ReportDigest {
                    responses: r.responses,
                    max_hops: r.max_hops,
                    degraded: r.degraded,
                    merged: merged_bits(&r.merged),
                },
            )
        })
        .collect();
    Digest {
        counters,
        histograms,
        queries: summaries,
        reports,
        load,
    }
}

// ------------------------------------------------------------------
// The comparison
// ------------------------------------------------------------------

#[test]
fn sim_and_loopback_cluster_agree_on_telemetry() {
    let sc = Scenario::new(N);
    let sim = sim_digest(&sc);
    assert_eq!(sim.load, sc.n_objects as u64, "sim stored the whole corpus");

    let cluster = cluster_digest(&sc, &sim);

    // Field-by-field first, so a failure names the divergent piece
    // instead of dumping two whole digests.
    assert_eq!(cluster.load, sim.load, "total stored load");
    assert_eq!(cluster.counters, sim.counters, "summed counters");
    assert_eq!(cluster.histograms, sim.histograms, "histogram roll-ups");
    assert_eq!(cluster.queries, sim.queries, "per-query summaries");
    assert_eq!(cluster.reports, sim.reports, "origin-side query reports");
    assert_eq!(cluster, sim);
}
