//! # pastry — a Pastry-style prefix-routing substrate
//!
//! The paper (§3): *"Techniques discussed in this paper are also
//! applicable to other DHTs such as Pastry and Tapestry."* This crate
//! makes that claim concrete: a second overlay whose routing state is
//! Pastry's — a **leaf set** of ring neighbors plus a **digit-indexed
//! routing table** (base `2^4 = 16`: row `l` holds, for each hex digit
//! `d`, a node sharing the first `l` digits of our identifier with digit
//! `d` at position `l`, chosen by proximity among the candidates, which
//! is Pastry's locality heuristic) — while *ownership* keeps the ring
//! semantics the index layer's Algorithms 3–5 are defined over (a node
//! owns `(predecessor, me]`; the surrogate of a key is its successor).
//!
//! Forwarding is clockwise-monotone: a hop goes to the known node in
//! `(me, key]` with the longest shared digit prefix with the key (ties:
//! cyclically closest to the key), so every hop strictly shrinks the
//! clockwise distance — the same termination argument as Chord — but
//! covers up to 4 identifier bits per hop instead of Chord's 1–2, which
//! is where Pastry's `O(log_16 N)` hop count comes from (measured in
//! `benches/ablation_overlay.rs`).

pub mod table;

pub use table::{build_all_tables, PastryTable, DIGIT_BITS, LEAF_HALF};
