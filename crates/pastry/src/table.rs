//! Pastry routing state: leaf set + digit table, with ring ownership.

use chord::{ChordId, NodeRef, OracleRing, RouteDecision};
use simnet::Topology;

/// Bits per routing digit (`b = 4`, hexadecimal digits — Pastry's usual
/// configuration).
pub const DIGIT_BITS: u32 = 4;

/// Digits in a 64-bit identifier.
pub const DIGITS: usize = (64 / DIGIT_BITS) as usize;

/// Entries per leaf-set side (Pastry's `L/2`, with `L = 16`).
pub const LEAF_HALF: usize = 8;

/// The `i`-th hex digit of `id` (0 = most significant).
#[inline]
pub fn digit(id: u64, i: usize) -> usize {
    debug_assert!(i < DIGITS);
    ((id >> (64 - DIGIT_BITS as u64 * (i as u64 + 1))) & 0xF) as usize
}

/// Length of the shared digit prefix of two identifiers (0..=16).
#[inline]
pub fn shared_digits(a: u64, b: u64) -> usize {
    let x = a ^ b;
    if x == 0 {
        DIGITS
    } else {
        (x.leading_zeros() / DIGIT_BITS) as usize
    }
}

/// A node's Pastry state.
#[derive(Clone, Debug)]
pub struct PastryTable {
    me: NodeRef,
    /// Clockwise-preceding ring neighbors, nearest first (left leaf set).
    left: Vec<NodeRef>,
    /// Clockwise-following ring neighbors, nearest first (right leaf set).
    right: Vec<NodeRef>,
    /// `rows[l][d]`: a node sharing `l` digits with `me` whose digit `l`
    /// is `d`. `None` when no such node exists (or it is `me`'s own
    /// digit).
    rows: Vec<[Option<NodeRef>; 16]>,
}

impl PastryTable {
    /// This node's identity.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// The ring predecessor (nearest left leaf).
    pub fn predecessor(&self) -> Option<NodeRef> {
        self.left.first().copied()
    }

    /// The ring successor (nearest right leaf).
    pub fn successor(&self) -> Option<NodeRef> {
        self.right.first().copied()
    }

    /// Routing-table entry at `(row, digit)`.
    pub fn row_entry(&self, row: usize, d: usize) -> Option<NodeRef> {
        self.rows[row][d]
    }

    /// Every distinct node this table knows (leaf sets + routing rows).
    pub fn known_nodes(&self) -> Vec<NodeRef> {
        let mut all: Vec<NodeRef> = self
            .left
            .iter()
            .chain(self.right.iter())
            .copied()
            .chain(self.rows.iter().flatten().flatten().copied())
            .collect();
        all.sort_unstable_by_key(|n| n.id);
        all.dedup_by_key(|n| n.id);
        all
    }

    /// True when this node owns `key` (`key ∈ (predecessor, me]` — the
    /// ring semantics the index layer requires).
    pub fn owns(&self, key: ChordId) -> bool {
        match self.predecessor() {
            Some(p) => key.in_half_open(p.id, self.me.id),
            None => true,
        }
    }

    /// Route toward `key` with Chord-compatible semantics: deliver
    /// locally when owned, hand to the successor when it owns the key,
    /// otherwise forward to the known node in `(me, key)` with the
    /// longest shared digit prefix with the key (cyclically closest on
    /// ties). Clockwise-monotone, hence loop-free.
    pub fn route(&self, key: ChordId) -> RouteDecision {
        if self.owns(key) {
            return RouteDecision::Local;
        }
        if let Some(succ) = self.successor() {
            if key.in_half_open(self.me.id, succ.id) {
                return RouteDecision::Surrogate(succ);
            }
        } else {
            return RouteDecision::Local; // lone node
        }
        let mut best: Option<(usize, u64, NodeRef)> = None;
        for n in self
            .left
            .iter()
            .chain(self.right.iter())
            .copied()
            .chain(self.rows.iter().flatten().flatten().copied())
        {
            if !n.id.in_open(self.me.id, key) {
                continue; // only clockwise progress keeps routing loop-free
            }
            let pfx = shared_digits(n.id.0, key.0);
            let dist = n.id.cw_dist(key);
            let better = match best {
                None => true,
                Some((bp, bd, _)) => pfx > bp || (pfx == bp && dist < bd),
            };
            if better {
                best = Some((pfx, dist, n));
            }
        }
        match best {
            Some((_, _, n)) => RouteDecision::Forward(n),
            // The successor is always in (me, key) here, so this arm is
            // unreachable with a non-empty leaf set; keep it total.
            None => RouteDecision::Surrogate(self.successor().expect("non-empty leaf set")),
        }
    }
}

/// Build the converged Pastry state for the node at sorted ring position
/// `i`. `topo` enables Pastry's proximity heuristic: each routing-table
/// slot picks the lowest-RTT node among the first `prox_candidates`
/// valid candidates.
pub fn build_table(
    ring: &OracleRing,
    i: usize,
    leaf_half: usize,
    topo: Option<&Topology>,
    prox_candidates: usize,
) -> PastryTable {
    let nodes = ring.nodes();
    let n = nodes.len();
    let me = nodes[i];
    let left = (1..=leaf_half.min(n - 1))
        .map(|s| nodes[(i + n - s) % n])
        .collect();
    let right = (1..=leaf_half.min(n - 1))
        .map(|s| nodes[(i + s) % n])
        .collect();

    // Bucket every other node by (shared prefix with me, next digit).
    let mut rows: Vec<[Option<NodeRef>; 16]> = vec![[None; 16]; DIGITS];
    let mut best_rtt: Vec<[Option<simnet::SimDuration>; 16]> = vec![[None; 16]; DIGITS];
    let mut seen: Vec<[usize; 16]> = vec![[0; 16]; DIGITS];
    for other in nodes {
        if other.id == me.id {
            continue;
        }
        let l = shared_digits(me.id.0, other.id.0);
        if l >= DIGITS {
            continue;
        }
        let d = digit(other.id.0, l);
        debug_assert_ne!(d, digit(me.id.0, l));
        match topo {
            None => {
                // First candidate wins (deterministic: ring order).
                if rows[l][d].is_none() {
                    rows[l][d] = Some(*other);
                }
            }
            Some(topo) => {
                if seen[l][d] >= prox_candidates {
                    continue;
                }
                seen[l][d] += 1;
                let rtt = topo.rtt(me.addr.0, other.addr.0);
                if best_rtt[l][d].is_none_or(|b| rtt < b) {
                    best_rtt[l][d] = Some(rtt);
                    rows[l][d] = Some(*other);
                }
            }
        }
    }
    PastryTable {
        me,
        left,
        right,
        rows,
    }
}

/// Converged tables for every node, indexed by agent address.
pub fn build_all_tables(
    ring: &OracleRing,
    leaf_half: usize,
    topo: Option<&Topology>,
    prox_candidates: usize,
) -> Vec<PastryTable> {
    let mut by_addr: Vec<Option<PastryTable>> = vec![None; ring.len()];
    for i in 0..ring.len() {
        let t = build_table(ring, i, leaf_half, topo, prox_candidates);
        let addr = t.me().addr.0;
        by_addr[addr] = Some(t);
    }
    by_addr.into_iter().map(|t| t.expect("addr gap")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimRng;

    #[test]
    fn digit_extraction() {
        let id = 0x1234_5678_9ABC_DEF0u64;
        assert_eq!(digit(id, 0), 0x1);
        assert_eq!(digit(id, 1), 0x2);
        assert_eq!(digit(id, 15), 0x0);
        assert_eq!(digit(id, 14), 0xF);
    }

    #[test]
    fn shared_digit_counts() {
        assert_eq!(shared_digits(0, 0), DIGITS);
        assert_eq!(shared_digits(0x1234 << 48, 0x1235 << 48), 3);
        assert_eq!(shared_digits(0x1234 << 48, 0x2234 << 48), 0);
        assert_eq!(shared_digits(1, 0), 15);
    }

    fn world(n: usize, seed: u64) -> (OracleRing, Vec<PastryTable>) {
        let mut rng = SimRng::new(seed);
        let ring = OracleRing::with_random_ids(n, &mut rng);
        let tables = build_all_tables(&ring, LEAF_HALF, None, 16);
        (ring, tables)
    }

    #[test]
    fn leaf_sets_are_ring_neighbors() {
        let (ring, tables) = world(40, 1);
        for (i, node) in ring.nodes().iter().enumerate() {
            let t = &tables[node.addr.0];
            assert_eq!(t.predecessor().unwrap(), ring.prev_of(i));
            assert_eq!(t.successor().unwrap(), ring.next_of(i));
            assert_eq!(
                t.known_nodes().iter().filter(|n| n.id == node.id).count(),
                0
            );
        }
    }

    #[test]
    fn routing_rows_hold_correct_prefixes() {
        let (ring, tables) = world(64, 2);
        for node in ring.nodes() {
            let t = &tables[node.addr.0];
            for l in 0..DIGITS {
                for d in 0..16 {
                    if let Some(e) = t.row_entry(l, d) {
                        assert_eq!(shared_digits(node.id.0, e.id.0), l, "row {l} digit {d}");
                        assert_eq!(digit(e.id.0, l), d);
                    }
                }
            }
        }
    }

    #[test]
    fn routing_reaches_owner_with_few_hops() {
        let (ring, tables) = world(256, 3);
        let mut rng = SimRng::new(9);
        let mut total_hops = 0u32;
        for _ in 0..200 {
            use rand::RngCore;
            let key = ChordId(rng.next_u64());
            let mut cur = &tables[rng.index(256)];
            let mut hops = 0;
            let owner = loop {
                match cur.route(key) {
                    RouteDecision::Local => break cur.me(),
                    RouteDecision::Surrogate(s) => {
                        hops += 1;
                        break s;
                    }
                    RouteDecision::Forward(next) => {
                        hops += 1;
                        assert!(hops < 64, "loop routing {key:?}");
                        cur = &tables[next.addr.0];
                    }
                }
            };
            assert_eq!(owner, ring.owner_of(key));
            total_hops += hops;
        }
        // Digit routing: ~log16(256) = 2 prefix hops + leaf hops; far
        // under Chord's ~half log2(256) = 4+.
        let mean = total_hops as f64 / 200.0;
        assert!(mean < 4.0, "mean hops {mean}");
    }

    #[test]
    fn proximity_rows_prefer_low_rtt() {
        let n = 128;
        let mut rng = SimRng::new(5);
        let ring = OracleRing::with_random_ids(n, &mut rng);
        let topo = Topology::king_like(n, 6, 180.0);
        let plain = build_all_tables(&ring, LEAF_HALF, None, 16);
        let prox = build_all_tables(&ring, LEAF_HALF, Some(&topo), 16);
        let mut plain_sum = 0u128;
        let mut prox_sum = 0u128;
        for node in ring.nodes() {
            let (tp, tq) = (&plain[node.addr.0], &prox[node.addr.0]);
            for l in 0..DIGITS {
                for d in 0..16 {
                    if let (Some(a), Some(b)) = (tp.row_entry(l, d), tq.row_entry(l, d)) {
                        plain_sum += topo.rtt(node.addr.0, a.addr.0).0 as u128;
                        prox_sum += topo.rtt(node.addr.0, b.addr.0).0 as u128;
                    }
                }
            }
        }
        assert!(
            prox_sum < plain_sum,
            "proximity rows should cut RTT: {prox_sum} vs {plain_sum}"
        );
    }

    #[test]
    fn ownership_matches_ring() {
        let (ring, tables) = world(32, 7);
        let mut rng = SimRng::new(11);
        for _ in 0..200 {
            use rand::RngCore;
            let key = ChordId(rng.next_u64());
            let owner = ring.owner_of(key);
            for node in ring.nodes() {
                let t = &tables[node.addr.0];
                assert_eq!(
                    t.owns(key),
                    node.id == owner.id,
                    "key {key:?} node {node:?}"
                );
            }
        }
    }

    #[test]
    fn single_node_world() {
        let ring = OracleRing::new(vec![NodeRef::new(42, 0)]);
        let t = build_table(&ring, 0, LEAF_HALF, None, 16);
        assert!(t.predecessor().is_none());
        assert_eq!(t.route(ChordId(7)), RouteDecision::Local);
    }
}
