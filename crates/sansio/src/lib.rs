//! # sansio — the transport-agnostic protocol core contract
//!
//! The protocol logic of this repository (the landmark search nodes in
//! `simsearch::node` and the Chord maintenance in `chord::protocol`) is
//! written against this crate instead of against a concrete transport:
//! a protocol is a **pure state machine** that consumes one [`Input`] —
//! an inbound message, a timer firing — at a known instant, and emits a
//! buffered sequence of [`Output`]s (sends with destinations and
//! modelled byte sizes, timer registrations). It never blocks, never
//! touches a socket, and never references `simnet::Sim`.
//!
//! Two drivers exist:
//!
//! * the deterministic discrete-event simulator ([`simnet`]) — the thin
//!   adapter is [`drive`], which buffers the outputs of one callback and
//!   replays them through `simnet::Ctx` **in exact call order**, so the
//!   event queue's `(time, seq)` ordering (and therefore every golden
//!   snapshot) is byte-identical to the historical direct-call code;
//! * the real-socket node runtime (`crates/node`) — a `std::net` TCP
//!   loop that feeds inbound frames and expired timers in as [`Input`]s
//!   and pushes each [`Output::Send`] to the per-peer writer thread.
//!
//! ## Driver contract
//!
//! A driver must, for each input, construct a [`ProtoCtx`] carrying the
//! current time, the node's own id, the population size, and a
//! [`Links`] latency oracle; dispatch exactly one protocol callback;
//! then consume [`ProtoCtx::into_outputs`] and act on every output **in
//! order**: `Send` before `Timer` only if the protocol emitted them in
//! that order. Timer semantics are one-shot: each [`Output::Timer`]
//! arms one future [`Input::Timer`] firing with the same tag after
//! `delay`; protocols that want periodic timers re-arm from the firing.
//! Timers are never cancelled by the driver — protocols tolerate stale
//! firings by checking their own state (and, in the simulator, a
//! crashed host's pending timers are silently discarded).
//!
//! Because the time types are the simulation clock's integer-nanosecond
//! [`SimTime`]/[`SimDuration`] values, both drivers share one notion of
//! time; the socket runtime maps them onto a monotonic wall clock.

use simnet::{AgentId, Ctx, SimDuration, SimTime, TimerTag};

/// One stimulus for a protocol state machine.
#[derive(Clone, Debug)]
pub enum Input<M> {
    /// The node has just come up for the first time (time zero in the
    /// simulator; process start in the socket runtime).
    Start,
    /// An inbound message from `from` has arrived.
    Message {
        /// The sender's id.
        from: AgentId,
        /// The message payload.
        msg: M,
    },
    /// A timer previously armed via [`Output::Timer`] has expired.
    Timer(TimerTag),
    /// The node has come back up after a crash (its timers were lost).
    Restart,
}

/// One effect a protocol state machine wants its driver to perform.
#[derive(Clone, Debug, PartialEq)]
pub enum Output<M> {
    /// Transmit `msg` to `to`; `bytes` is the modelled wire size from
    /// the paper's §4.1 pricing (`simsearch::msg`/`chord::protocol`
    /// `msg_bytes`) and feeds bandwidth accounting in the simulator and
    /// the frame-length cross-check in the socket codec.
    Send {
        /// Destination node.
        to: AgentId,
        /// The message payload.
        msg: M,
        /// Modelled wire size in bytes.
        bytes: u32,
    },
    /// Arm a one-shot timer: deliver [`Input::Timer`] with `tag` after
    /// `delay`.
    Timer {
        /// How far in the future the timer fires.
        delay: SimDuration,
        /// Opaque tag handed back at firing time.
        tag: TimerTag,
    },
}

/// A driver-supplied latency oracle: the round-trip time from the node
/// being driven to `other`. The simulator answers from its topology
/// matrix; the socket runtime answers with a measured or constant
/// estimate. Protocols use it for proximity neighbor selection and for
/// sizing retransmission timeouts — never for correctness.
pub trait Links {
    /// Round-trip time from the current node to `other`.
    fn rtt_to(&self, other: AgentId) -> SimDuration;
}

/// The capability handle a driver passes to protocol callbacks: read
/// access to the clock/identity/topology, plus an output buffer. The
/// mirror of `simnet::Ctx`, minus everything that would couple the
/// protocol to the simulator (no RNG, no direct queue access).
pub struct ProtoCtx<'a, M> {
    me: AgentId,
    now: SimTime,
    n_agents: usize,
    links: &'a dyn Links,
    out: Vec<Output<M>>,
}

impl<'a, M> ProtoCtx<'a, M> {
    /// Build a context for one callback dispatch.
    pub fn new(me: AgentId, now: SimTime, n_agents: usize, links: &'a dyn Links) -> Self {
        ProtoCtx {
            me,
            now,
            n_agents,
            links,
            out: Vec::new(),
        }
    }

    /// Current time (simulated or wall-mapped, depending on the driver).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback is running on.
    pub fn me(&self) -> AgentId {
        self.me
    }

    /// Total number of nodes in the deployment.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// Round-trip time between this node and `other`.
    pub fn rtt_to(&self, other: AgentId) -> SimDuration {
        self.links.rtt_to(other)
    }

    /// Buffer a send of `msg` to `dst`; `bytes` is the modelled wire
    /// size. Outputs are replayed by the driver in emission order.
    pub fn send(&mut self, dst: AgentId, msg: M, bytes: u32) {
        self.out.push(Output::Send {
            to: dst,
            msg,
            bytes,
        });
    }

    /// Buffer a one-shot timer registration firing after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, tag: TimerTag) {
        self.out.push(Output::Timer { delay, tag });
    }

    /// Consume the context, yielding the buffered outputs in the exact
    /// order the protocol emitted them.
    pub fn into_outputs(self) -> Vec<Output<M>> {
        self.out
    }
}

/// A sans-io protocol state machine. The shape mirrors `simnet::Agent`
/// callback for callback, but over [`ProtoCtx`], so the same state and
/// logic runs unchanged under any driver.
pub trait Protocol {
    /// The message type exchanged between nodes of this protocol.
    type Msg;

    /// Called once when the node first comes up.
    fn on_start(&mut self, _ctx: &mut ProtoCtx<'_, Self::Msg>) {}

    /// Called for each inbound message.
    fn on_message(&mut self, ctx: &mut ProtoCtx<'_, Self::Msg>, from: AgentId, msg: Self::Msg);

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, _ctx: &mut ProtoCtx<'_, Self::Msg>, _tag: TimerTag) {}

    /// Called when the host crashes. No context: a crashed node cannot
    /// send or schedule; its armed timers are lost.
    fn on_crash(&mut self) {}

    /// Called when a crashed host comes back up.
    fn on_restart(&mut self, _ctx: &mut ProtoCtx<'_, Self::Msg>) {}
}

/// Adapts a `simnet::Ctx` into a [`Links`] oracle for the node the
/// callback is running on.
struct CtxLinks<'b, 'a, M>(&'b Ctx<'a, M>);

impl<M> Links for CtxLinks<'_, '_, M> {
    fn rtt_to(&self, other: AgentId) -> SimDuration {
        self.0.rtt_to(other)
    }
}

/// Dispatch `input` to the matching [`Protocol`] callback.
pub fn dispatch<P: Protocol>(p: &mut P, ctx: &mut ProtoCtx<'_, P::Msg>, input: Input<P::Msg>) {
    match input {
        Input::Start => p.on_start(ctx),
        Input::Message { from, msg } => p.on_message(ctx, from, msg),
        Input::Timer(tag) => p.on_timer(ctx, tag),
        Input::Restart => p.on_restart(ctx),
    }
}

/// The simulator driver: run one protocol callback under `ctx`,
/// buffering its outputs, then replay them through the simulator in
/// exact emission order. Because the simulator's event queue orders
/// simultaneous events by push sequence, and a callback's pushes were
/// always contiguous (the event loop is single-threaded), this buffered
/// replay produces the *identical* event sequence — and therefore
/// byte-identical telemetry — as the historical code that called
/// `ctx.send`/`ctx.schedule` directly from protocol methods.
pub fn drive<P: Protocol>(p: &mut P, ctx: &mut Ctx<'_, P::Msg>, input: Input<P::Msg>)
where
    P::Msg: Clone,
{
    let outputs = {
        let links = CtxLinks(&*ctx);
        let mut pctx = ProtoCtx::new(ctx.me(), ctx.now(), ctx.n_agents(), &links);
        dispatch(p, &mut pctx, input);
        pctx.into_outputs()
    };
    for out in outputs {
        match out {
            Output::Send { to, msg, bytes } => ctx.send(to, msg, bytes),
            Output::Timer { delay, tag } => ctx.schedule(delay, tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatLinks;
    impl Links for FlatLinks {
        fn rtt_to(&self, _other: AgentId) -> SimDuration {
            SimDuration::from_millis(10)
        }
    }

    /// Emits one send and one timer per message, in that order.
    struct Echo;
    impl Protocol for Echo {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut ProtoCtx<'_, u32>, from: AgentId, msg: u32) {
            ctx.send(from, msg + 1, 20);
            ctx.schedule(ctx.rtt_to(from), TimerTag(7));
        }
    }

    #[test]
    fn outputs_preserve_emission_order() {
        let links = FlatLinks;
        let mut ctx = ProtoCtx::new(AgentId(0), SimTime::from_secs(1), 4, &links);
        assert_eq!(ctx.me(), AgentId(0));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        assert_eq!(ctx.n_agents(), 4);
        Echo.on_message(&mut ctx, AgentId(3), 41);
        let out = ctx.into_outputs();
        assert_eq!(
            out,
            vec![
                Output::Send {
                    to: AgentId(3),
                    msg: 42,
                    bytes: 20
                },
                Output::Timer {
                    delay: SimDuration::from_millis(10),
                    tag: TimerTag(7)
                },
            ]
        );
    }

    #[test]
    fn dispatch_routes_every_input() {
        struct Tally {
            starts: u32,
            msgs: u32,
            timers: u32,
            restarts: u32,
        }
        impl Protocol for Tally {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut ProtoCtx<'_, ()>) {
                self.starts += 1;
            }
            fn on_message(&mut self, _ctx: &mut ProtoCtx<'_, ()>, _from: AgentId, _msg: ()) {
                self.msgs += 1;
            }
            fn on_timer(&mut self, _ctx: &mut ProtoCtx<'_, ()>, _tag: TimerTag) {
                self.timers += 1;
            }
            fn on_restart(&mut self, _ctx: &mut ProtoCtx<'_, ()>) {
                self.restarts += 1;
            }
        }
        let mut t = Tally {
            starts: 0,
            msgs: 0,
            timers: 0,
            restarts: 0,
        };
        let links = FlatLinks;
        for input in [
            Input::Start,
            Input::Message {
                from: AgentId(1),
                msg: (),
            },
            Input::Timer(TimerTag(0)),
            Input::Restart,
        ] {
            let mut ctx = ProtoCtx::new(AgentId(0), SimTime::ZERO, 1, &links);
            dispatch(&mut t, &mut ctx, input);
        }
        assert_eq!((t.starts, t.msgs, t.timers, t.restarts), (1, 1, 1, 1));
    }
}
