//! Declarative scenario engine for the landmark-index simulator.
//!
//! A scenario is a small TOML document (parsed by [`toml`], typed by
//! [`schema`]) describing a whole experiment: ring shape, co-hosted
//! index schemes over the `workloads` generators, per-tenant
//! Zipf-skewed publish/query mixes with optional flash-crowd windows,
//! fault and churn settings, a mid-run rebalance, and the invariants
//! the run must uphold (recall floor, hop ceiling, entry conservation,
//! migration and rotation-decorrelation bounds). The [`runner`]
//! executes any such file through the deterministic simulator with
//! exact per-index recall oracles and folds the run into a canonical
//! telemetry digest; the checked-in zoo under `scenarios/` gates those
//! digests byte-for-byte in CI.

pub mod runner;
pub mod schema;
pub mod toml;

pub use runner::{digest_json, run, RunReport};
pub use schema::Scenario;

/// Parse scenario TOML text into a validated [`Scenario`].
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    schema::Scenario::from_toml(text)
}
