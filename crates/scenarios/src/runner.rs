//! The scenario runner: execute any parsed [`Scenario`] through the
//! deterministic simulator with per-index recall oracles, and fold the
//! run into a canonical integer-only digest the zoo goldens gate.
//!
//! Execution model: every tenant's publish/query mix is pre-drawn from
//! seeded RNG forks (kinds shuffled, pool picks Zipf-skewed, flash
//! windows overriding the head item), the per-tenant sequences are
//! interleaved round-robin, and the resulting global op list is played
//! one op at a time, each run to quiescence before the next — a phase
//! barrier that keeps the exact-recall oracle valid even while tenants
//! publish new objects mid-run. Runtime-published objects are held out
//! of the build-time dataset, so their object ids (and the ground truth
//! that grows with them) are known before the system is built.

use std::collections::BTreeMap;
use std::sync::Arc;

use landmark::{boundary_from_metric, boundary_from_sample, greedy, kmeans, Mapper};
use metric::{Angular, EditDistance, Metric, ObjectId, SparseVector, L2};
use serde_json::Value;
use simnet::{AgentId, SimRng, SimTime};
use simsearch::{
    IndexSpec, LoadBalanceConfig, QueryDistance, QueryId, QuerySpec, ResilienceConfig,
    RoutingOptConfig, SearchSystem, SystemConfig,
};
use workloads::{
    ClusteredParams, ClusteredVectors, Corpus, CorpusParams, StringWorkload, StringWorkloadParams,
    TimeSeriesParams, TimeSeriesWorkload, Zipf,
};

use crate::schema::{LbDecl, Scenario, SchemeDecl, TenantDecl};

/// What one scenario run produced: the canonical digest (what goldens
/// byte-compare) and any invariant violations (empty on a passing run —
/// and checked into the digest itself, so a golden also locks the pass).
pub struct RunReport {
    /// Canonical integer/string-only digest.
    pub digest: Value,
    /// Human-readable invariant violations.
    pub violations: Vec<String>,
}

/// The digest as the exact bytes a golden file stores.
pub fn digest_json(digest: &Value) -> String {
    let mut s = serde_json::to_string_pretty(digest).expect("serialization is infallible");
    s.push('\n');
    s
}

/// Fixed-point float encoding for the digest (1.0 → 1_000_000).
fn micros(x: f64) -> u64 {
    (x * 1e6).round().max(0.0) as u64
}

/// One pre-built co-hosted index: the publishable spec plus everything
/// the oracle and the ground truth need.
struct BuiltIndex {
    name: String,
    /// Objects published at build time.
    base_n: usize,
    /// Base + held-out runtime publishes.
    total_n: usize,
    spec: IndexSpec,
    /// Mapped points of the held-out publish objects, in publish order.
    pub_points: Vec<Vec<f64>>,
    /// Mapped points of the tenant query pools, in qref order.
    pool_points: Vec<Vec<f64>>,
    /// Query radius in the original metric (= index-space L∞ radius).
    radius: f64,
    /// True distance from pool object `qref` to object `oid < total_n`.
    dist: TrueDist,
}

/// True distance from pool object `qref` to object `oid`.
type TrueDist = Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>;

/// What one scheme build yields: `(base_n, total_n, pub_points,
/// pool_points, boundary, points, radius, dist)`.
type SchemeBuild = (
    usize,
    usize,
    Vec<Vec<f64>>,
    Vec<Vec<f64>>,
    Vec<(f64, f64)>,
    Vec<Vec<f64>>,
    f64,
    TrueDist,
);

/// Derive a per-purpose RNG stream for one index.
fn index_seed(sc: &Scenario, data_seed: u64, stream: u64) -> u64 {
    sc.seed ^ data_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream
}

fn build_index(sc: &Scenario, pos: usize, pool_total: usize, publish_total: usize) -> BuiltIndex {
    let decl = &sc.indexes[pos];
    let dseed = index_seed(sc, decl.data_seed, 0x0DA7A);
    let qseed = index_seed(sc, decl.data_seed, 0x9001);
    let mut sel_rng = SimRng::new(index_seed(sc, decl.data_seed, 0x5E1));
    let (base_n, total_n, pub_points, pool_points, boundary, points, radius, dist): SchemeBuild =
        match decl.scheme {
            SchemeDecl::Clustered {
                objects,
                dims,
                clusters,
                deviation,
            } => {
                let total = objects + publish_total;
                let data = ClusteredVectors::generate(
                    ClusteredParams {
                        dims,
                        clusters,
                        deviation,
                        n_objects: total,
                        ..ClusteredParams::default()
                    },
                    dseed,
                );
                let pool: Vec<Vec<f32>> = data.queries(pool_total, qseed);
                let metric = L2::bounded(dims, 0.0, 100.0);
                let sample: Vec<Vec<f32>> = sel_rng
                    .sample_indices(total, decl.sample.min(total))
                    .into_iter()
                    .map(|i| data.objects[i].clone())
                    .collect();
                let landmarks =
                    kmeans::<_, [f32], _>(&metric, &sample, decl.landmarks, 8, &mut sel_rng);
                let mapper = Mapper::new(metric, landmarks);
                let all = mapper.map_all::<[f32], _>(&data.objects);
                let boundary = boundary_from_metric(&L2::bounded(dims, 0.0, 100.0), decl.landmarks)
                    .expect("bounded L2 has an upper bound")
                    .dims;
                let pool_points = pool
                    .iter()
                    .map(|p| mapper.map(p.as_slice()).into_vec())
                    .collect();
                let radius = decl.radius * data.max_distance();
                let objs = Arc::new(data.objects);
                let probes = Arc::new(pool);
                let dist = Arc::new(move |q: usize, oid: usize| {
                    L2::new().distance(probes[q].as_slice(), objs[oid].as_slice())
                });
                let (points, pubs) = split_points(all, objects);
                (
                    objects,
                    total,
                    pubs,
                    pool_points,
                    boundary,
                    points,
                    radius,
                    dist,
                )
            }
            SchemeDecl::Strings { families, members } => {
                let data = StringWorkload::generate(
                    StringWorkloadParams {
                        families,
                        members_per_family: members,
                        ..StringWorkloadParams::default()
                    },
                    dseed,
                );
                let objects = data.sequences.len().saturating_sub(publish_total);
                assert!(objects > 0, "strings scheme too small for its publishes");
                let pool: Vec<String> = data.queries(pool_total, qseed);
                let sample: Vec<String> = sel_rng
                    .sample_indices(data.sequences.len(), decl.sample.min(data.sequences.len()))
                    .into_iter()
                    .map(|i| data.sequences[i].clone())
                    .collect();
                let landmarks =
                    greedy::<_, str, _>(&EditDistance, &sample, decl.landmarks, &mut sel_rng);
                let mapper = Mapper::new(EditDistance, landmarks);
                let all = mapper.map_all::<str, _>(&data.sequences);
                let boundary = boundary_from_sample::<_, str, _>(&mapper, &sample, 0.05).dims;
                let pool_points = pool
                    .iter()
                    .map(|p| mapper.map(p.as_str()).into_vec())
                    .collect();
                let seqs = Arc::new(data.sequences);
                let probes = Arc::new(pool);
                let dist = Arc::new(move |q: usize, oid: usize| {
                    Metric::<str>::distance(&EditDistance, &probes[q], &seqs[oid])
                });
                let total = objects + publish_total;
                let (points, pubs) = split_points(all, objects);
                (
                    objects,
                    total,
                    pubs,
                    pool_points,
                    boundary,
                    points,
                    decl.radius,
                    dist,
                )
            }
            SchemeDecl::Docs { docs, vocab, areas } => {
                let total = docs + publish_total;
                let corpus = Corpus::generate(
                    CorpusParams {
                        n_docs: total,
                        vocab,
                        stopwords: (vocab / 25).max(50),
                        subject_areas: areas,
                        ..CorpusParams::default()
                    },
                    dseed,
                );
                // Query pool: the corpus's query topics, cycled.
                let pool: Vec<SparseVector> = (0..pool_total)
                    .map(|i| corpus.topics[i % corpus.topics.len()].clone())
                    .collect();
                let metric = Angular::new();
                let sample: Vec<SparseVector> = sel_rng
                    .sample_indices(total, decl.sample.min(total))
                    .into_iter()
                    .map(|i| corpus.docs[i].clone())
                    .collect();
                let landmarks = kmeans::<_, SparseVector, _>(
                    &metric,
                    &sample,
                    decl.landmarks,
                    10,
                    &mut sel_rng,
                );
                let mapper = Mapper::new(metric, landmarks);
                let all = mapper.map_all::<SparseVector, _>(&corpus.docs);
                let boundary =
                    boundary_from_sample::<_, SparseVector, _>(&mapper, &sample, 0.02).dims;
                let pool_points = pool.iter().map(|p| mapper.map(p).into_vec()).collect();
                let docs_arc = Arc::new(corpus.docs);
                let probes = Arc::new(pool);
                let dist = Arc::new(move |q: usize, oid: usize| {
                    Angular::new().distance(&probes[q], &docs_arc[oid])
                });
                let radius = decl.radius * std::f64::consts::FRAC_PI_2;
                let (points, pubs) = split_points(all, docs);
                (
                    docs,
                    total,
                    pubs,
                    pool_points,
                    boundary,
                    points,
                    radius,
                    dist,
                )
            }
            SchemeDecl::Timeseries {
                length,
                window,
                stride,
                motifs,
                repeats,
                noise,
            } => {
                let ts = TimeSeriesWorkload::generate(
                    TimeSeriesParams {
                        length,
                        window,
                        stride,
                        motifs,
                        motif_repeats: repeats,
                        noise,
                    },
                    dseed,
                );
                let objects = ts.windows.len().saturating_sub(publish_total);
                assert!(objects > 0, "timeseries scheme too small for its publishes");
                let pool: Vec<Vec<f32>> = ts
                    .queries(pool_total, qseed)
                    .into_iter()
                    .map(|(_, w)| w)
                    .collect();
                let metric = L2::new();
                let sample: Vec<Vec<f32>> = sel_rng
                    .sample_indices(ts.windows.len(), decl.sample.min(ts.windows.len()))
                    .into_iter()
                    .map(|i| ts.windows[i].clone())
                    .collect();
                let landmarks =
                    kmeans::<_, [f32], _>(&metric, &sample, decl.landmarks, 8, &mut sel_rng);
                let mapper = Mapper::new(metric, landmarks);
                let all = mapper.map_all::<[f32], _>(&ts.windows);
                let boundary = boundary_from_sample::<_, [f32], _>(&mapper, &sample, 0.05).dims;
                let pool_points = pool
                    .iter()
                    .map(|p| mapper.map(p.as_slice()).into_vec())
                    .collect();
                let wins = Arc::new(ts.windows);
                let probes = Arc::new(pool);
                let dist = Arc::new(move |q: usize, oid: usize| {
                    L2::new().distance(probes[q].as_slice(), wins[oid].as_slice())
                });
                let total = objects + publish_total;
                let (points, pubs) = split_points(all, objects);
                (
                    objects,
                    total,
                    pubs,
                    pool_points,
                    boundary,
                    points,
                    decl.radius,
                    dist,
                )
            }
        };
    BuiltIndex {
        name: decl.name.clone(),
        base_n,
        total_n,
        spec: IndexSpec {
            name: decl.name.clone(),
            boundary,
            points,
            rotate: decl.rotate,
            rotation: decl.rotation,
        },
        pub_points,
        pool_points,
        radius,
        dist,
    }
}

/// Split mapped points into build-time entries and held-out publishes.
fn split_points(mut all: Vec<Vec<f64>>, base_n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let pubs = all.split_off(base_n);
    (all, pubs)
}

/// One pre-drawn operation of the global sequence.
enum Op {
    Query {
        tenant: usize,
        index: usize,
        /// Index into the tenant's pool (0 = hottest item).
        pool_item: usize,
        origin: AgentId,
        qid: QueryId,
    },
    Publish {
        index: usize,
        /// Per-index publish sequence number (object id = base + seq).
        seq: usize,
        origin: AgentId,
    },
}

/// Per-tenant derived layout: which index position it targets and where
/// its pool slice starts in that index's qref space.
struct TenantLayout {
    index_pos: usize,
    pool_base: usize,
    /// Fixed issuing nodes (empty = roaming).
    origins: Vec<AgentId>,
}

/// Execute a scenario and fold the digest.
pub fn run(sc: &Scenario) -> RunReport {
    // --- layout: pool slices and publish totals per index ---
    let mut pool_total = vec![0usize; sc.indexes.len()];
    let mut publish_total = vec![0usize; sc.indexes.len()];
    let mut layouts: Vec<TenantLayout> = Vec::new();
    let mut origin_rng = SimRng::new(sc.seed).fork(0x0819);
    for t in &sc.tenants {
        let index_pos = sc
            .indexes
            .iter()
            .position(|i| i.name == t.index)
            .expect("validated by schema");
        let origins = origin_rng
            .sample_indices(sc.ring.nodes, t.origins.min(sc.ring.nodes))
            .into_iter()
            .map(AgentId)
            .collect();
        layouts.push(TenantLayout {
            index_pos,
            pool_base: pool_total[index_pos],
            origins,
        });
        pool_total[index_pos] += t.pool;
        publish_total[index_pos] += t.publishes;
    }

    // --- pre-draw every tenant's op sequence, then interleave ---
    let mut per_tenant_ops: Vec<Vec<Op>> = Vec::new();
    for (ti, t) in sc.tenants.iter().enumerate() {
        per_tenant_ops.push(draw_tenant_ops(sc, ti, t, &layouts[ti]));
    }
    let mut ops: Vec<Op> = Vec::new();
    let mut cursors: Vec<std::vec::IntoIter<Op>> =
        per_tenant_ops.into_iter().map(|v| v.into_iter()).collect();
    loop {
        let mut any = false;
        for c in &mut cursors {
            if let Some(op) = c.next() {
                ops.push(op);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    // Assign per-index publish sequence numbers and global query ids in
    // final op order (the order ground truth grows in).
    let mut pub_seq = vec![0usize; sc.indexes.len()];
    let mut next_qid: QueryId = 0;
    for op in &mut ops {
        match op {
            Op::Publish { index, seq, .. } => {
                *seq = pub_seq[*index];
                pub_seq[*index] += 1;
            }
            Op::Query { qid, .. } => {
                *qid = next_qid;
                next_qid += 1;
            }
        }
    }

    // --- build indexes and the qid → (index, qref) recall oracle ---
    let built: Vec<BuiltIndex> = (0..sc.indexes.len())
        .map(|i| build_index(sc, i, pool_total[i], publish_total[i]))
        .collect();
    let mut qid_probe: Vec<(usize, usize)> = Vec::new(); // (index, qref)
    for op in &ops {
        if let Op::Query {
            tenant, pool_item, ..
        } = op
        {
            let lay = &layouts[*tenant];
            qid_probe.push((lay.index_pos, lay.pool_base + pool_item));
        }
    }
    let dists: Vec<Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>> =
        built.iter().map(|b| Arc::clone(&b.dist)).collect();
    let probe_table = Arc::new(qid_probe.clone());
    let oracle_dists = dists.clone();
    let oracle: Arc<dyn QueryDistance> = Arc::new(move |qid: QueryId, obj: ObjectId| {
        let (ix, qref) = probe_table[qid as usize];
        (oracle_dists[ix])(qref, obj.0 as usize)
    });

    // --- build the system ---
    let cfg = SystemConfig {
        n_nodes: sc.ring.nodes,
        seed: sc.seed,
        n_successors: sc.ring.successors,
        pns_candidates: sc.ring.pns,
        knn_k: sc.ring.knn_k,
        depth: sc.ring.depth,
        lb: sc.ring.lb.map(lb_config),
        load_aware_join: sc.ring.load_aware_join,
        overlay: if sc.ring.overlay == "pastry" {
            simsearch::OverlayKind::Pastry
        } else {
            simsearch::OverlayKind::Chord
        },
        resilience: (sc.ring.replication > 1).then(|| ResilienceConfig {
            replication: sc.ring.replication,
            ..ResilienceConfig::default()
        }),
        routing_opt: sc.ring.routing_opt.then(RoutingOptConfig::default),
        index_telemetry: true,
        ..SystemConfig::default()
    };
    let specs: Vec<IndexSpec> = built.iter().map(|b| b.spec.clone()).collect();
    let mut system = SearchSystem::build(cfg, &specs, oracle);
    if sc.faults.loss > 0.0 {
        system.set_loss_rate(sc.faults.loss);
    }

    // Crash victims: the highest node addresses that are not fixed
    // origins (schema guarantees all tenants use fixed origins when
    // crashes are configured, so no op is ever issued from a dead node).
    let fixed: std::collections::BTreeSet<usize> = layouts
        .iter()
        .flat_map(|l| l.origins.iter().map(|a| a.0))
        .collect();
    let victims: Vec<AgentId> = (0..sc.ring.nodes)
        .rev()
        .filter(|a| !fixed.contains(a))
        .take(sc.faults.crashes)
        .map(AgentId)
        .collect();
    let crash_at = ops.len() / 3;
    let restart_at = (2 * ops.len()) / 3;
    let rebalance_at = sc
        .rebalance
        .map(|r| ((ops.len() as f64 * r.after_frac) as usize).min(ops.len()));

    // --- play the op sequence ---
    let mut published = vec![0usize; sc.indexes.len()];
    let mut runtime_migrations = 0u64;
    let mut runtime_rounds = 0u64;
    struct QueryRecord {
        tenant: usize,
        completed: bool,
        hops: u32,
        responses: u32,
        recall: f64,
    }
    let mut records: Vec<QueryRecord> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if !victims.is_empty() && i == crash_at {
            let at = step_time(&system);
            for &v in &victims {
                system.schedule_crash(at, v);
            }
        }
        if !victims.is_empty() && i == restart_at {
            let at = step_time(&system);
            for &v in &victims {
                system.schedule_restart(at, v);
            }
        }
        if rebalance_at == Some(i) {
            let decl = sc.rebalance.expect("gated on rebalance_at");
            let report = system.rebalance(&lb_config(decl.lb));
            runtime_migrations += report.migrations as u64;
            runtime_rounds += report.rounds as u64;
        }
        match *op {
            Op::Publish {
                index, seq, origin, ..
            } => {
                let b = &built[index];
                let at = step_time(&system);
                system.inject_publish(
                    at,
                    origin,
                    index as u8,
                    ObjectId((b.base_n + seq) as u32),
                    &b.pub_points[seq],
                );
                system.run_to_quiescence();
                published[index] += 1;
            }
            Op::Query {
                tenant,
                index,
                pool_item,
                origin,
                qid,
            } => {
                let b = &built[index];
                let qref = layouts[tenant].pool_base + pool_item;
                // Ground truth *now*: the k nearest among the objects
                // published so far that lie within the query radius (all
                // of which the contractive mapping guarantees are inside
                // the searched hypercube).
                let visible = b.base_n + published[index];
                let mut near: Vec<(ObjectId, f64)> = (0..visible)
                    .filter_map(|oid| {
                        let d = (b.dist)(qref, oid);
                        (d <= b.radius).then_some((ObjectId(oid as u32), d))
                    })
                    .collect();
                near.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                near.truncate(sc.ring.knn_k);
                let truth: Vec<ObjectId> = near.into_iter().map(|(id, _)| id).collect();
                let at = step_time(&system);
                system.inject_query(
                    at,
                    origin,
                    qid,
                    &QuerySpec {
                        index: index as u8,
                        point: b.pool_points[qref].clone(),
                        radius: b.radius,
                        truth: Vec::new(),
                    },
                );
                system.run_to_quiescence();
                let iq = system
                    .issued_query(origin, qid)
                    .expect("query was injected at a live origin");
                let hits = truth
                    .iter()
                    .filter(|t| iq.merged.iter().any(|&(o, _)| o == **t))
                    .count();
                let recall = if truth.is_empty() {
                    1.0
                } else {
                    hits as f64 / truth.len() as f64
                };
                records.push(QueryRecord {
                    tenant,
                    completed: iq.first_result.is_some(),
                    hops: iq.max_hops,
                    responses: iq.responses,
                    recall,
                });
            }
        }
    }

    // --- invariants ---
    let mut violations: Vec<String> = Vec::new();
    let e = &sc.expect;
    for (qi, r) in records.iter().enumerate() {
        let tname = &sc.tenants[r.tenant].name;
        if e.all_complete && !r.completed {
            violations.push(format!("query {qi} (tenant {tname}) never completed"));
        }
        if r.recall + 1e-9 < e.min_recall {
            violations.push(format!(
                "query {qi} (tenant {tname}) recall {:.4} < {:.4}",
                r.recall, e.min_recall
            ));
        }
        if u64::from(r.hops) > e.max_hops {
            violations.push(format!(
                "query {qi} (tenant {tname}) took {} hops > {}",
                r.hops, e.max_hops
            ));
        }
    }
    if e.conservation {
        for (i, b) in built.iter().enumerate() {
            let stored = system.total_entries(i);
            let expected = b.base_n + published[i];
            if stored != expected {
                violations.push(format!(
                    "index {} stores {stored} entries, expected {expected}",
                    b.name
                ));
            }
        }
    }
    let build_migrations = system.lb_report.as_ref().map_or(0, |r| r.migrations) as u64;
    let total_migrations = build_migrations + runtime_migrations;
    if let Some(min) = e.min_migrations {
        if total_migrations < min {
            violations.push(format!("{total_migrations} migrations < required {min}"));
        }
    }
    if let Some(max) = e.max_migrations {
        if total_migrations > max {
            violations.push(format!("{total_migrations} migrations > allowed {max}"));
        }
    }
    let snapshot = system.telemetry_snapshot();
    let cache_hits = snapshot["registry"]["counters"]["cache.hits"]
        .as_u64()
        .unwrap_or(0);
    if let Some(min) = e.min_cache_hits {
        if cache_hits < min {
            violations.push(format!("{cache_hits} cache hits < required {min}"));
        }
    }
    // The hottest node's share of the combined (cross-index) load — the
    // §3.4 rotation-staggering observable.
    let mut combined = vec![0u64; sc.ring.nodes];
    for i in 0..built.len() {
        for (node, load) in system.load_per_node(i).into_iter().enumerate() {
            combined[node] += load as u64;
        }
    }
    let combined_max = combined.iter().copied().max().unwrap_or(0);
    let combined_total: u64 = combined.iter().sum();
    let max_share = micros(combined_max as f64 / combined_total.max(1) as f64);
    if let Some(bound) = e.max_combined_load_micros {
        if max_share > bound {
            violations.push(format!(
                "hottest node holds {max_share} micro-share of combined load > {bound}"
            ));
        }
    }
    if let Some(bound) = e.min_combined_load_micros {
        if max_share < bound {
            violations.push(format!(
                "hottest node holds {max_share} micro-share of combined load < {bound} \
                 (control expected a pileup)"
            ));
        }
    }

    // --- digest ---
    let mut per_index: BTreeMap<String, Value> = BTreeMap::new();
    for (i, b) in built.iter().enumerate() {
        let loads = system.load_distribution(i);
        per_index.insert(
            b.name.clone(),
            serde_json::json!({
                "entries": Value::UInt(system.total_entries(i) as u64),
                "base": Value::UInt(b.base_n as u64),
                "published": Value::UInt(published[i] as u64),
                "held_out": Value::UInt((b.total_n - b.base_n) as u64),
                "rotation": Value::UInt(system.rotation(i).0),
                "load_max": Value::UInt(loads.first().copied().unwrap_or(0) as u64),
                "load_nonzero": Value::UInt(loads.iter().filter(|&&l| l > 0).count() as u64),
            }),
        );
    }
    let mut per_tenant: BTreeMap<String, Value> = BTreeMap::new();
    for (ti, t) in sc.tenants.iter().enumerate() {
        let recs: Vec<&QueryRecord> = records.iter().filter(|r| r.tenant == ti).collect();
        let n = recs.len();
        let recall_min = recs.iter().map(|r| r.recall).fold(1.0f64, f64::min);
        let recall_sum: f64 = recs.iter().map(|r| r.recall).sum();
        per_tenant.insert(
            t.name.clone(),
            serde_json::json!({
                "queries": Value::UInt(n as u64),
                "publishes": Value::UInt(t.publishes as u64),
                "completed": Value::UInt(recs.iter().filter(|r| r.completed).count() as u64),
                "recall_min_micros": Value::UInt(micros(recall_min)),
                "recall_mean_micros": Value::UInt(micros(if n == 0 {
                    1.0
                } else {
                    recall_sum / n as f64
                })),
                "hops_max": Value::UInt(recs.iter().map(|r| u64::from(r.hops)).max().unwrap_or(0)),
                "responses": Value::UInt(recs.iter().map(|r| u64::from(r.responses)).sum()),
            }),
        );
    }
    let digest = serde_json::json!({
        "scenario": serde_json::json!({
            "name": Value::String(sc.name.clone()),
            "seed": Value::UInt(sc.seed),
            "nodes": Value::UInt(sc.ring.nodes as u64),
            "indexes": Value::UInt(sc.indexes.len() as u64),
            "tenants": Value::UInt(sc.tenants.len() as u64),
            "ops": Value::UInt(ops.len() as u64),
        }),
        "indexes": Value::Object(per_index),
        "tenants": Value::Object(per_tenant),
        "balance": serde_json::json!({
            "build_migrations": Value::UInt(build_migrations),
            "runtime_migrations": Value::UInt(runtime_migrations),
            "runtime_rounds": Value::UInt(runtime_rounds),
        }),
        "combined": serde_json::json!({
            "load_max": Value::UInt(combined_max),
            "load_total": Value::UInt(combined_total),
            "max_share_micros": Value::UInt(max_share),
        }),
        "net": snapshot["net"].clone(),
        "faults": snapshot["faults"].clone(),
        "registry": snapshot["registry"].clone(),
        "violations": Value::Array(
            violations.iter().map(|v| Value::String(v.clone())).collect()
        ),
    });
    RunReport { digest, violations }
}

fn lb_config(decl: LbDecl) -> LoadBalanceConfig {
    LoadBalanceConfig {
        delta: decl.delta,
        probe_level: decl.probe_level,
        max_rounds: decl.max_rounds,
    }
}

/// The next op's injection time: strictly after everything that already
/// ran, so per-op quiescence phases never interleave.
fn step_time(system: &SearchSystem) -> SimTime {
    SimTime::from_secs_f64(system.now().as_secs_f64() + 0.05)
}

/// Pre-draw one tenant's op sequence (kinds, pool picks, origins, flash
/// overrides) from its own seeded forks.
fn draw_tenant_ops(sc: &Scenario, ti: usize, t: &TenantDecl, lay: &TenantLayout) -> Vec<Op> {
    let mut kind_rng = SimRng::new(sc.seed ^ 0xA11C_E000).fork(ti as u64);
    let mut pick_rng = SimRng::new(sc.seed ^ 0xB0B0_0000).fork(ti as u64);
    let zipf = Zipf::new(t.pool, t.zipf);
    let mut kinds: Vec<bool> = std::iter::repeat_n(true, t.queries)
        .chain(std::iter::repeat_n(false, t.publishes))
        .collect();
    kind_rng.shuffle(&mut kinds);
    let flash = t
        .flash_at
        .map(|at| (at, at.saturating_add(t.flash_len)))
        .unwrap_or((usize::MAX, usize::MAX));
    let mut ops = Vec::with_capacity(kinds.len());
    for (pos, is_query) in kinds.into_iter().enumerate() {
        let in_flash = pos >= flash.0 && pos < flash.1;
        let origin = if in_flash {
            lay.origins[0]
        } else if lay.origins.is_empty() {
            AgentId(pick_rng.index(sc.ring.nodes))
        } else {
            lay.origins[pos % lay.origins.len()]
        };
        if is_query {
            let pool_item = if in_flash {
                // The flash crowd hammers the hottest pool item. The
                // draw is still consumed so the post-flash sequence is
                // unchanged by the window.
                let _ = zipf.draw(&mut pick_rng);
                0
            } else {
                zipf.draw(&mut pick_rng)
            };
            ops.push(Op::Query {
                tenant: ti,
                index: lay.index_pos,
                pool_item,
                origin,
                qid: 0,
            });
        } else {
            ops.push(Op::Publish {
                index: lay.index_pos,
                seq: 0,
                origin,
            });
        }
    }
    ops
}
