//! The typed scenario schema: what a zoo file can say.
//!
//! A scenario declares a ring, one or more co-hosted index schemes, a
//! set of tenants issuing Zipf-skewed publish/query mixes against those
//! indexes, optional faults and a mid-run rebalance, and the invariants
//! the run must satisfy. Every knob has a default, so minimal files
//! stay minimal; unknown keys are rejected so a typo cannot silently
//! disable the invariant it was meant to tighten.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::toml;

/// A parsed, validated scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name — must match the file stem; keys the golden file.
    pub name: String,
    /// Free-text description (shows up in failure reports).
    pub description: String,
    /// Root seed for everything: data, pools, arrivals, ring ids.
    pub seed: u64,
    /// Overlay and system knobs.
    pub ring: RingSpec,
    /// Fault plane (loss + crash/restart window).
    pub faults: FaultSpec,
    /// Co-hosted index schemes, in declaration order.
    pub indexes: Vec<IndexDecl>,
    /// Traffic sources, in declaration order.
    pub tenants: Vec<TenantDecl>,
    /// Optional mid-run dynamic rebalance (§3.4 leave-and-rejoin).
    pub rebalance: Option<RebalanceDecl>,
    /// The invariants the runner enforces.
    pub expect: ExpectDecl,
}

/// `[ring]` — the overlay the scenario runs on.
#[derive(Clone, Debug)]
pub struct RingSpec {
    /// Node count.
    pub nodes: usize,
    /// Bisection depth of every index grid.
    pub depth: u32,
    /// Successor-list length.
    pub successors: usize,
    /// PNS candidates (0 = plain fingers).
    pub pns: usize,
    /// Top-k merged at the querier.
    pub knn_k: usize,
    /// `"chord"` or `"pastry"`.
    pub overlay: String,
    /// Join-time balancing on index 0's keys.
    pub load_aware_join: bool,
    /// Build-time dynamic load migration.
    pub lb: Option<LbDecl>,
    /// Routing-plane optimization layer (defaults when present).
    pub routing_opt: bool,
    /// Replication factor; > 1 switches on the resilience layer.
    pub replication: usize,
}

/// `[ring.lb]` / `[rebalance]` — dynamic-migration knobs.
#[derive(Clone, Copy, Debug)]
pub struct LbDecl {
    /// Trigger threshold factor δ.
    pub delta: f64,
    /// Probe level P_l.
    pub probe_level: u32,
    /// Maximum migration rounds.
    pub max_rounds: usize,
}

/// `[faults]` — message loss and a crash/restart window.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Independent per-message drop probability.
    pub loss: f64,
    /// Nodes crashed for the middle third of the op sequence.
    pub crashes: usize,
}

/// `[[index]]` — one co-hosted index scheme.
#[derive(Clone, Debug)]
pub struct IndexDecl {
    /// Index name (rotation-offset seed when `rotate`).
    pub name: String,
    /// The metric space + generator.
    pub scheme: SchemeDecl,
    /// Stagger this index's ring placement (§3.4 static rotation).
    pub rotate: bool,
    /// Explicit rotation offset override (ablation control).
    pub rotation: Option<u64>,
    /// Landmark count (index-space dimensionality).
    pub landmarks: usize,
    /// Sample size for landmark selection and boundary estimation.
    pub sample: usize,
    /// Query radius. Clustered: fraction of the box diameter; docs:
    /// fraction of π/2; strings: absolute edit operations; timeseries:
    /// absolute L2 distance.
    pub radius: f64,
    /// Extra seed XORed into the data generator — two indexes with the
    /// same scheme, params and `data_seed` host the *same* dataset
    /// (the rotation-ablation setup).
    pub data_seed: u64,
}

/// Which generator + metric an index hosts.
#[derive(Clone, Debug)]
pub enum SchemeDecl {
    /// Clustered Gaussian vectors under L2.
    Clustered {
        /// Object count.
        objects: usize,
        /// Dimensionality.
        dims: usize,
        /// Mixture components.
        clusters: usize,
        /// Within-cluster deviation.
        deviation: f64,
    },
    /// Mutation-family DNA strings under edit distance.
    Strings {
        /// Ancestor count.
        families: usize,
        /// Descendants per ancestor.
        members: usize,
    },
    /// TF-IDF documents under the angular (cosine) metric.
    Docs {
        /// Document count.
        docs: usize,
        /// Vocabulary size.
        vocab: usize,
        /// Subject areas documents cluster into.
        areas: usize,
    },
    /// Sliding windows of a motif-seeded series under L2.
    Timeseries {
        /// Series length.
        length: usize,
        /// Window size (dimensionality).
        window: usize,
        /// Window stride.
        stride: usize,
        /// Distinct motifs planted.
        motifs: usize,
        /// Occurrences per motif.
        repeats: usize,
        /// Per-sample plant noise.
        noise: f64,
    },
}

/// `[[tenant]]` — one traffic source.
#[derive(Clone, Debug)]
pub struct TenantDecl {
    /// Tenant name (keys the per-tenant digest section).
    pub name: String,
    /// Which `[[index]]` (by name) this tenant targets.
    pub index: String,
    /// Query ops issued.
    pub queries: usize,
    /// Publish ops issued (runtime insertions).
    pub publishes: usize,
    /// Distinct query objects the tenant draws from.
    pub pool: usize,
    /// Zipf skew over the pool (0 = uniform; larger = hotter head).
    pub zipf: f64,
    /// Fixed issuing nodes (0 = a fresh uniform origin per op). Fixed
    /// origins are what make per-origin caches observable.
    pub origins: usize,
    /// Flash crowd: from this op index (per-tenant) …
    pub flash_at: Option<usize>,
    /// … for this many ops, every draw is pool item 0 from the first
    /// fixed origin.
    pub flash_len: usize,
}

/// `[rebalance]` — one §3.4 dynamic-migration pass mid-run.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceDecl {
    /// Run the pass after this fraction of the op sequence.
    pub after_frac: f64,
    /// Migration knobs.
    pub lb: LbDecl,
}

/// `[expect]` — the invariants the runner enforces.
#[derive(Clone, Copy, Debug)]
pub struct ExpectDecl {
    /// Minimum recall over every query op.
    pub min_recall: f64,
    /// Maximum delivery path length over every query op.
    pub max_hops: u64,
    /// Every query op must complete (receive ≥ 1 result).
    pub all_complete: bool,
    /// Per-index entry conservation (base + published == stored).
    pub conservation: bool,
    /// Lower bound on `lb.migrations` (rebalance must trigger).
    pub min_migrations: Option<u64>,
    /// Upper bound on `lb.migrations` (rebalance must NOT trigger).
    pub max_migrations: Option<u64>,
    /// Lower bound on result-cache hits.
    pub min_cache_hits: Option<u64>,
    /// Upper bound on the hottest node's share of the *combined*
    /// (cross-index) stored load, in micro-units (1e6 = everything on
    /// one node). The rotation-staggering invariant.
    pub max_combined_load_micros: Option<u64>,
    /// Lower bound on the same share — the offsets-equal control must
    /// demonstrably pile up.
    pub min_combined_load_micros: Option<u64>,
}

/// Typed read helpers over the parsed TOML tree. Each consumes its key
/// so [`Ctx::finish`] can reject unknown leftovers.
struct Ctx {
    map: BTreeMap<String, Value>,
    at: String,
}

impl Ctx {
    fn new(v: Value, at: &str) -> Result<Ctx, String> {
        match v {
            Value::Object(map) => Ok(Ctx {
                map,
                at: at.to_string(),
            }),
            _ => Err(format!("{at}: expected a table")),
        }
    }

    fn take(&mut self, key: &str) -> Option<Value> {
        self.map.remove(key)
    }

    fn str(&mut self, key: &str) -> Result<Option<String>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::String(s)) => Ok(Some(s)),
            Some(_) => Err(format!("{}.{key}: expected a string", self.at)),
        }
    }

    fn u64(&mut self, key: &str) -> Result<Option<u64>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("{}.{key}: expected a non-negative integer", self.at)),
        }
    }

    fn usize(&mut self, key: &str) -> Result<Option<usize>, String> {
        Ok(self.u64(key)?.map(|v| v as usize))
    }

    fn f64(&mut self, key: &str) -> Result<Option<f64>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("{}.{key}: expected a number", self.at)),
        }
    }

    fn bool(&mut self, key: &str) -> Result<Option<bool>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Bool(b)) => Ok(Some(b)),
            Some(_) => Err(format!("{}.{key}: expected a boolean", self.at)),
        }
    }

    /// Error on any key nobody consumed: typos must not silently relax
    /// an invariant.
    fn finish(self) -> Result<(), String> {
        if let Some(key) = self.map.keys().next() {
            return Err(format!("{}: unknown key `{key}`", self.at));
        }
        Ok(())
    }
}

fn parse_lb(v: Value, at: &str) -> Result<LbDecl, String> {
    let mut c = Ctx::new(v, at)?;
    let lb = LbDecl {
        delta: c.f64("delta")?.unwrap_or(0.0),
        probe_level: c.u64("probe_level")?.unwrap_or(4) as u32,
        max_rounds: c.usize("max_rounds")?.unwrap_or(8),
    };
    c.finish()?;
    Ok(lb)
}

impl Scenario {
    /// Parse and validate a scenario document.
    pub fn from_toml(text: &str) -> Result<Scenario, String> {
        let root = toml::parse(text)?;
        let mut root = Ctx::new(root, "scenario file")?;

        let mut meta = Ctx::new(
            root.take("scenario")
                .ok_or("missing [scenario] table".to_string())?,
            "scenario",
        )?;
        let name = meta.str("name")?.ok_or("scenario.name is required")?;
        let description = meta.str("description")?.unwrap_or_default();
        let seed = meta.u64("seed")?.ok_or("scenario.seed is required")?;
        meta.finish()?;

        let mut ring = Ctx::new(
            root.take("ring")
                .ok_or("missing [ring] table".to_string())?,
            "ring",
        )?;
        let lb = ring
            .take("lb")
            .map(|v| parse_lb(v, "ring.lb"))
            .transpose()?;
        let ring = {
            let spec = RingSpec {
                nodes: ring.usize("nodes")?.ok_or("ring.nodes is required")?,
                depth: ring.u64("depth")?.unwrap_or(16) as u32,
                successors: ring.usize("successors")?.unwrap_or(16),
                pns: ring.usize("pns")?.unwrap_or(16),
                knn_k: ring.usize("knn_k")?.unwrap_or(10),
                overlay: ring.str("overlay")?.unwrap_or_else(|| "chord".into()),
                load_aware_join: ring.bool("load_aware_join")?.unwrap_or(false),
                lb,
                routing_opt: ring.bool("routing_opt")?.unwrap_or(false),
                replication: ring.usize("replication")?.unwrap_or(1),
            };
            ring.finish()?;
            spec
        };
        if ring.overlay != "chord" && ring.overlay != "pastry" {
            return Err(format!("ring.overlay: unknown overlay `{}`", ring.overlay));
        }

        let faults = match root.take("faults") {
            None => FaultSpec {
                loss: 0.0,
                crashes: 0,
            },
            Some(v) => {
                let mut c = Ctx::new(v, "faults")?;
                let f = FaultSpec {
                    loss: c.f64("loss")?.unwrap_or(0.0),
                    crashes: c.usize("crashes")?.unwrap_or(0),
                };
                c.finish()?;
                f
            }
        };
        if (faults.loss > 0.0 || faults.crashes > 0) && ring.replication < 2 {
            return Err("faults require ring.replication >= 2 (resilience layer)".into());
        }

        let indexes = match root.take("index") {
            Some(Value::Array(items)) => items
                .into_iter()
                .enumerate()
                .map(|(i, v)| parse_index(v, i))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("index: expected [[index]] tables".into()),
            None => return Err("at least one [[index]] is required".into()),
        };
        {
            let mut names: Vec<&str> = indexes.iter().map(|i| i.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            if names.len() != indexes.len() {
                return Err("index names must be unique".into());
            }
        }

        let tenants = match root.take("tenant") {
            Some(Value::Array(items)) => items
                .into_iter()
                .enumerate()
                .map(|(i, v)| parse_tenant(v, i))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("tenant: expected [[tenant]] tables".into()),
            None => return Err("at least one [[tenant]] is required".into()),
        };
        for t in &tenants {
            if !indexes.iter().any(|i| i.name == t.index) {
                return Err(format!(
                    "tenant `{}` targets unknown index `{}`",
                    t.name, t.index
                ));
            }
            if t.pool == 0 || t.queries + t.publishes == 0 {
                return Err(format!("tenant `{}` has no work (pool/ops)", t.name));
            }
            if t.flash_at.is_some() && t.origins == 0 {
                return Err(format!(
                    "tenant `{}`: a flash crowd needs fixed origins",
                    t.name
                ));
            }
            if faults.crashes > 0 && t.origins == 0 {
                return Err(format!(
                    "tenant `{}`: crash scenarios need fixed origins (a roaming \
                     op could be issued from a dead node)",
                    t.name
                ));
            }
        }

        let rebalance = root
            .take("rebalance")
            .map(|v| -> Result<RebalanceDecl, String> {
                let mut c = Ctx::new(v, "rebalance")?;
                let decl = RebalanceDecl {
                    after_frac: c.f64("after_frac")?.unwrap_or(0.5),
                    lb: LbDecl {
                        delta: c.f64("delta")?.unwrap_or(0.0),
                        probe_level: c.u64("probe_level")?.unwrap_or(4) as u32,
                        max_rounds: c.usize("max_rounds")?.unwrap_or(8),
                    },
                };
                c.finish()?;
                Ok(decl)
            })
            .transpose()?;

        let expect = match root.take("expect") {
            None => {
                return Err("missing [expect] table — a zoo scenario must assert something".into())
            }
            Some(v) => {
                let mut c = Ctx::new(v, "expect")?;
                let e = ExpectDecl {
                    min_recall: c.f64("min_recall")?.unwrap_or(1.0),
                    max_hops: c.u64("max_hops")?.unwrap_or(64),
                    all_complete: c.bool("all_complete")?.unwrap_or(true),
                    conservation: c.bool("conservation")?.unwrap_or(true),
                    min_migrations: c.u64("min_migrations")?,
                    max_migrations: c.u64("max_migrations")?,
                    min_cache_hits: c.u64("min_cache_hits")?,
                    max_combined_load_micros: c.u64("max_combined_load_micros")?,
                    min_combined_load_micros: c.u64("min_combined_load_micros")?,
                };
                c.finish()?;
                e
            }
        };
        root.finish()?;

        Ok(Scenario {
            name,
            description,
            seed,
            ring,
            faults,
            indexes,
            tenants,
            rebalance,
            expect,
        })
    }
}

fn parse_index(v: Value, pos: usize) -> Result<IndexDecl, String> {
    let at = format!("index[{pos}]");
    let mut c = Ctx::new(v, &at)?;
    let name = c.str("name")?.ok_or(format!("{at}.name is required"))?;
    let scheme_name = c.str("scheme")?.ok_or(format!("{at}.scheme is required"))?;
    let scheme = match scheme_name.as_str() {
        "clustered" => SchemeDecl::Clustered {
            objects: c.usize("objects")?.unwrap_or(800),
            dims: c.usize("dims")?.unwrap_or(8),
            clusters: c.usize("clusters")?.unwrap_or(4),
            deviation: c.f64("deviation")?.unwrap_or(8.0),
        },
        "strings" => SchemeDecl::Strings {
            families: c.usize("families")?.unwrap_or(20),
            members: c.usize("members")?.unwrap_or(9),
        },
        "docs" => SchemeDecl::Docs {
            docs: c.usize("docs")?.unwrap_or(400),
            vocab: c.usize("vocab")?.unwrap_or(2_000),
            areas: c.usize("areas")?.unwrap_or(8),
        },
        "timeseries" => SchemeDecl::Timeseries {
            length: c.usize("length")?.unwrap_or(2_000),
            window: c.usize("window")?.unwrap_or(32),
            stride: c.usize("stride")?.unwrap_or(8),
            motifs: c.usize("motifs")?.unwrap_or(4),
            repeats: c.usize("repeats")?.unwrap_or(6),
            noise: c.f64("noise")?.unwrap_or(0.3),
        },
        other => return Err(format!("{at}.scheme: unknown scheme `{other}`")),
    };
    let decl = IndexDecl {
        name,
        scheme,
        rotate: c.bool("rotate")?.unwrap_or(true),
        rotation: c.u64("rotation")?,
        landmarks: c.usize("landmarks")?.unwrap_or(4),
        sample: c.usize("sample")?.unwrap_or(150),
        radius: c.f64("radius")?.ok_or(format!("{at}.radius is required"))?,
        data_seed: c.u64("data_seed")?.unwrap_or(pos as u64),
    };
    c.finish()?;
    Ok(decl)
}

fn parse_tenant(v: Value, pos: usize) -> Result<TenantDecl, String> {
    let at = format!("tenant[{pos}]");
    let mut c = Ctx::new(v, &at)?;
    let decl = TenantDecl {
        name: c.str("name")?.unwrap_or_else(|| format!("tenant{pos}")),
        index: c.str("index")?.ok_or(format!("{at}.index is required"))?,
        queries: c.usize("queries")?.unwrap_or(0),
        publishes: c.usize("publishes")?.unwrap_or(0),
        pool: c.usize("pool")?.unwrap_or(8),
        zipf: c.f64("zipf")?.unwrap_or(0.0),
        origins: c.usize("origins")?.unwrap_or(0),
        flash_at: c.usize("flash_at")?,
        flash_len: c.usize("flash_len")?.unwrap_or(0),
    };
    c.finish()?;
    Ok(decl)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[scenario]
name = "mini"
seed = 7
[ring]
nodes = 16
[[index]]
name = "vecs"
scheme = "clustered"
radius = 0.2
[[tenant]]
index = "vecs"
queries = 4
[expect]
"#;

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::from_toml(MINIMAL).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.ring.nodes, 16);
        assert_eq!(s.ring.depth, 16);
        assert!(!s.ring.routing_opt);
        assert_eq!(s.indexes.len(), 1);
        assert!(s.indexes[0].rotate);
        assert_eq!(s.tenants[0].pool, 8);
        assert_eq!(s.expect.min_recall, 1.0);
        assert!(s.expect.all_complete);
    }

    #[test]
    fn unknown_keys_and_bad_references_are_rejected() {
        let bad_key = MINIMAL.replace("[expect]", "[expect]\ntypo_invariant = 1");
        assert!(Scenario::from_toml(&bad_key)
            .unwrap_err()
            .contains("unknown key"));
        let bad_ref = MINIMAL.replace("index = \"vecs\"", "index = \"nope\"");
        assert!(Scenario::from_toml(&bad_ref)
            .unwrap_err()
            .contains("unknown index"));
        let bad_faults = MINIMAL.replace(
            "[ring]\nnodes = 16",
            "[ring]\nnodes = 16\n[faults]\nloss = 0.1",
        );
        assert!(Scenario::from_toml(&bad_faults)
            .unwrap_err()
            .contains("replication"));
    }

    #[test]
    fn flash_crowd_requires_fixed_origins() {
        let flash = MINIMAL.replace("queries = 4", "queries = 4\nflash_at = 1\nflash_len = 2");
        assert!(Scenario::from_toml(&flash)
            .unwrap_err()
            .contains("fixed origins"));
        let ok = MINIMAL.replace(
            "queries = 4",
            "queries = 4\norigins = 1\nflash_at = 1\nflash_len = 2",
        );
        assert!(Scenario::from_toml(&ok).is_ok());
    }
}
