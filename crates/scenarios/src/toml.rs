//! A minimal TOML-subset parser for scenario files.
//!
//! The vendored `serde_json` stub has no parser, so scenario files are
//! read by this module into a [`serde_json::Value`] tree (key-sorted
//! objects, so downstream digests stay canonical). Supported subset —
//! everything the zoo uses, nothing more:
//!
//! * comments: `#` to end of line (outside strings)
//! * `[table]` and `[nested.table]` headers
//! * `[[array.of.tables]]` headers (append one table per header)
//! * `key = value` with basic `"strings"`, booleans, integers
//!   (`_` separators allowed), floats, and single-line arrays
//!
//! Dotted keys, inline tables, multi-line strings/arrays, dates and
//! literal (`'...'`) strings are rejected with a line-numbered error:
//! a scenario file that silently half-parses would be worse than one
//! that refuses to load.

use std::collections::BTreeMap;

use serde_json::Value;

/// Parse a scenario document into a JSON object tree.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // The table subsequent `key = value` lines land in.
    let mut current: Vec<String> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(path) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let path = split_path(path, line_no)?;
            let (last, parent) = path.split_last().expect("split_path rejects empty");
            let table = table_at(&mut root, parent, line_no)?;
            let slot = table
                .entry(last.clone())
                .or_insert_with(|| Value::Array(Vec::new()));
            match slot {
                Value::Array(items) => items.push(Value::Object(BTreeMap::new())),
                _ => return Err(format!("line {line_no}: [[{}]] is not an array", last)),
            }
            current = path;
        } else if let Some(path) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let path = split_path(path, line_no)?;
            table_at(&mut root, &path, line_no)?;
            current = path;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!("line {line_no}: bad key `{key}` (bare keys only)"));
            }
            let (value, rest) = parse_value(line[eq + 1..].trim(), line_no)?;
            if !rest.trim().is_empty() {
                return Err(format!(
                    "line {line_no}: trailing content `{}` after value",
                    rest.trim()
                ));
            }
            let table = table_at(&mut root, &current, line_no)?;
            if table.insert(key.to_string(), value).is_some() {
                return Err(format!("line {line_no}: duplicate key `{key}`"));
            }
        } else {
            return Err(format!("line {line_no}: unrecognized line `{line}`"));
        }
    }
    Ok(Value::Object(root))
}

/// Drop a trailing comment, respecting `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (pos, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..pos],
            _ => escaped = false,
        }
    }
    line
}

/// Split a `[a.b.c]` header path into segments.
fn split_path(path: &str, line_no: usize) -> Result<Vec<String>, String> {
    let segs: Vec<String> = path.split('.').map(|s| s.trim().to_string()).collect();
    if segs.iter().any(|s| {
        s.is_empty()
            || !s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }) {
        return Err(format!("line {line_no}: bad table path `[{path}]`"));
    }
    Ok(segs)
}

/// The mutable table at `path`, creating intermediate tables and
/// descending into the *last* element of any array-of-tables met along
/// the way (TOML's rule for `[[t]]` followed by `[t.sub]`).
fn table_at<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    let mut cur = root;
    for seg in path {
        let next = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Object(BTreeMap::new()));
        cur = match next {
            Value::Object(map) => map,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(map)) => map,
                _ => return Err(format!("line {line_no}: `{seg}` is not a table array")),
            },
            _ => return Err(format!("line {line_no}: `{seg}` is not a table")),
        };
    }
    Ok(cur)
}

/// Parse one value from the front of `s`; returns the remainder.
fn parse_value(s: &str, line_no: usize) -> Result<(Value, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('"') {
        return parse_string(rest, line_no);
    }
    if s.starts_with('\'') {
        return Err(format!(
            "line {line_no}: literal strings are unsupported (strings must be quoted with \")"
        ));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(r) = rest.strip_prefix(']') {
                return Ok((Value::Array(items), r));
            }
            let (v, r) = parse_value(rest, line_no)?;
            items.push(v);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.starts_with(']') {
                return Err(format!("line {line_no}: expected `,` or `]` in array"));
            }
        }
    }
    // Bare scalar: token up to a delimiter.
    let end = s
        .find(|c: char| c == ',' || c == ']' || c.is_whitespace())
        .unwrap_or(s.len());
    let (tok, rest) = s.split_at(end);
    match tok {
        "" => Err(format!("line {line_no}: missing value")),
        "true" => Ok((Value::Bool(true), rest)),
        "false" => Ok((Value::Bool(false), rest)),
        _ => {
            let num = tok.replace('_', "");
            if num.contains(['.', 'e', 'E']) {
                num.parse::<f64>()
                    .map(|f| (Value::Float(f), rest))
                    .map_err(|_| format!("line {line_no}: bad float `{tok}`"))
            } else if let Some(neg) = num.strip_prefix('-') {
                neg.parse::<u64>()
                    .map(|u| (Value::Int(-(u as i64)), rest))
                    .map_err(|_| format!("line {line_no}: bad integer `{tok}`"))
            } else {
                num.parse::<u64>()
                    .map(|u| (Value::UInt(u), rest))
                    .map_err(|_| {
                        format!("line {line_no}: bad value `{tok}` (strings must be quoted)")
                    })
            }
        }
    }
}

/// Parse a basic string body (opening quote already consumed).
fn parse_string(s: &str, line_no: usize) -> Result<(Value, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((pos, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::String(out), &s[pos + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                other => {
                    return Err(format!(
                        "line {line_no}: unsupported escape `\\{}`",
                        other.map(|(_, c)| c).unwrap_or(' ')
                    ))
                }
            },
            _ => out.push(c),
        }
    }
    Err(format!("line {line_no}: unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
# top comment
title = "zoo"          # trailing comment
count = 1_000
skew = 1.25
neg = -3
on = true

[ring]
nodes = 48

[ring.lb]
delta = 0.5

[[index]]
name = "a"
bounds = [0.0, 100.0]

[[index]]
name = "b # not a comment"
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v["title"].as_str(), Some("zoo"));
        assert_eq!(v["count"].as_u64(), Some(1000));
        assert_eq!(v["skew"].as_f64(), Some(1.25));
        assert_eq!(v["neg"].as_i64(), Some(-3));
        assert_eq!(v["on"].as_bool(), Some(true));
        assert_eq!(v["ring"]["nodes"].as_u64(), Some(48));
        assert_eq!(v["ring"]["lb"]["delta"].as_f64(), Some(0.5));
        let idx = match &v["index"] {
            Value::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0]["name"].as_str(), Some("a"));
        assert_eq!(idx[0]["bounds"][0].as_f64(), Some(0.0));
        assert_eq!(idx[1]["name"].as_str(), Some("b # not a comment"));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (doc, needle) in [
            ("key", "line 1"),
            ("key = ", "missing value"),
            ("key = 'single'", "strings must be quoted"),
            ("key = \"unterminated", "unterminated"),
            ("key = [1, 2", "expected `,` or `]`"),
            ("a = 1\na = 2", "duplicate key"),
            ("[bad path]", "bad table path"),
            ("k.dotted = 1", "bad key"),
            ("key = 1 2", "trailing content"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(err.contains(needle), "doc {doc:?}: {err}");
        }
    }

    #[test]
    fn array_of_tables_with_subtable_lands_in_last_element() {
        let doc = "[[t]]\nx = 1\n[t.sub]\ny = 2\n[[t]]\nx = 3\n";
        let v = parse(doc).unwrap();
        assert_eq!(v["t"][0]["x"].as_u64(), Some(1));
        assert_eq!(v["t"][0]["sub"]["y"].as_u64(), Some(2));
        assert_eq!(v["t"][1]["x"].as_u64(), Some(3));
    }
}
