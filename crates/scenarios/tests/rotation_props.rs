//! Property tests for §3.4 static rotation: staggered per-index offsets
//! spread a Zipf-hot key range across decorrelated ring arcs, while the
//! offsets-equal control provably piles every index's hot arc onto the
//! same nodes.
//!
//! The model is the pure placement layer — rotation plus
//! first-id-at-or-after-the-key ring ownership — so the properties are
//! exact identities rather than tolerance checks. Cases where the
//! random geometry defeats the setup (band straddling an arc boundary,
//! two rotated bands landing on one owner) are discarded with an early
//! `Ok(())`, mirroring `prop_assume` under the vendored runner.

use lph::Rotation;
use proptest::prelude::*;

/// Ring owner assignment: the owner of `key` is the node with the
/// smallest id ≥ key, wrapping to the smallest id overall.
fn owner(sorted_ids: &[u64], key: u64) -> usize {
    let i = sorted_ids.partition_point(|&id| id < key);
    i % sorted_ids.len()
}

/// Per-node load of one index: each hot key placed through the index's
/// rotation onto the ring.
fn loads(sorted_ids: &[u64], keys: &[u64], rot: Rotation) -> Vec<usize> {
    let mut out = vec![0usize; sorted_ids.len()];
    for &k in keys {
        out[owner(sorted_ids, rot.to_ring(k))] += 1;
    }
    out
}

fn combined_max(sorted_ids: &[u64], keys: &[u64], rots: &[Rotation]) -> usize {
    let mut combined = vec![0usize; sorted_ids.len()];
    for rot in rots {
        for (node, load) in loads(sorted_ids, keys, *rot).into_iter().enumerate() {
            combined[node] += load;
        }
    }
    combined.into_iter().max().unwrap_or(0)
}

/// Distinct sorted node ids from raw draws (discarding the rare dupes).
fn ring_of(raw: Vec<u64>) -> Option<Vec<u64>> {
    let mut ids = raw;
    ids.sort_unstable();
    ids.dedup();
    (ids.len() >= 8).then_some(ids)
}

/// A Zipf-hot band: `m` keys within a narrow range (2^48 of the 2^64
/// ring — the hot head of a skewed workload).
fn hot_band(start: u64, m: usize) -> Vec<u64> {
    (0..m as u64)
        .map(|i| start.wrapping_add(i * ((1u64 << 48) / m as u64)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Offsets-equal control: with the same key multiset and the same
    /// offset on every index, per-index placements coincide, so the
    /// hottest node carries exactly `K ×` its single-index load — the
    /// correlated pileup rotation exists to prevent.
    #[test]
    fn equal_offsets_multiply_the_hot_node(
        raw_ids in prop::collection::vec(any::<u64>(), 8..24usize),
        start in any::<u64>(),
        m in 20..100usize,
        offset in any::<u64>(),
    ) {
        let Some(sorted) = ring_of(raw_ids) else { return Ok(()) };
        let keys = hot_band(start, m);
        let rots = [Rotation(offset); 3];
        let single_max = loads(&sorted, &keys, rots[0]).into_iter().max().unwrap();
        prop_assert_eq!(
            combined_max(&sorted, &keys, &rots),
            3 * single_max,
            "equal offsets must stack all three hot arcs on one node"
        );
    }

    /// Staggered offsets: when the three rotated hot bands land in the
    /// arcs of three DISTINCT owners (the overwhelmingly common case
    /// for name-derived offsets — collisions are discarded), the
    /// hottest node carries exactly one index's band: a third of the
    /// control's pileup.
    #[test]
    fn staggered_offsets_spread_the_hot_band(
        raw_ids in prop::collection::vec(any::<u64>(), 8..24usize),
        start in any::<u64>(),
        m in 20..100usize,
        names in prop::collection::vec("[a-z]{1,12}", 3usize),
    ) {
        let Some(sorted) = ring_of(raw_ids) else { return Ok(()) };
        let keys = hot_band(start, m);
        let rots: Vec<Rotation> = names.iter().map(|n| Rotation::from_name(n)).collect();
        if rots[0] == rots[1] || rots[1] == rots[2] || rots[0] == rots[2] {
            return Ok(()); // same-name draw: offsets not staggered
        }
        // Discard cases where a rotated band straddles an arc boundary
        // (first and last key owned by different nodes) …
        let owners: Vec<usize> = rots
            .iter()
            .map(|r| owner(&sorted, r.to_ring(keys[0])))
            .collect();
        for (r, &o) in rots.iter().zip(&owners) {
            if owner(&sorted, r.to_ring(*keys.last().unwrap())) != o {
                return Ok(());
            }
        }
        // … or where two bands land on the same owner.
        if owners[0] == owners[1] || owners[1] == owners[2] || owners[0] == owners[2] {
            return Ok(());
        }

        let aligned = [rots[0]; 3];
        prop_assert_eq!(
            combined_max(&sorted, &keys, &rots),
            m,
            "each decorrelated arc carries exactly one index's band"
        );
        prop_assert_eq!(
            combined_max(&sorted, &keys, &aligned),
            3 * m,
            "the offsets-equal control exceeds the staggered bound threefold"
        );
    }
}

/// The production offsets (name-derived, as `IndexSpec.rotate` uses)
/// decorrelate a concrete hot band on a concrete ring.
#[test]
fn name_derived_offsets_decorrelate_a_hot_band() {
    let sorted: Vec<u64> = (1..=16u64).map(|i| i.wrapping_mul(1 << 60)).collect();
    let keys: Vec<u64> = (0..50u64).map(|i| (1u64 << 59) + i * 1024).collect();
    let staggered: Vec<Rotation> = ["vecs", "dna", "news"]
        .iter()
        .map(|n| Rotation::from_name(n))
        .collect();
    let aligned = [Rotation::IDENTITY; 3];
    let spread = combined_max(&sorted, &keys, &staggered);
    let piled = combined_max(&sorted, &keys, &aligned);
    assert_eq!(piled, 150, "identity offsets put all 150 keys on one node");
    assert!(
        spread <= 100,
        "staggered offsets must split the pileup, got {spread}"
    );
}
