//! The scenario zoo gate: every checked-in `scenarios/*.toml` runs
//! through the deterministic simulator twice (byte-identical digests),
//! upholds its own `[expect]` invariants, and byte-matches its golden
//! under `tests/golden/zoo/`. Regenerate with `UPDATE_GOLDEN=1`.
//!
//! On failure the digest and the scenario file are copied to
//! `target/zoo/<name>/` so CI can upload them as artifacts.

use std::fs;
use std::path::{Path, PathBuf};

use scenarios::{digest_json, parse_scenario, run};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Dump failure artifacts for the CI uploader, then fail.
fn artifact_dump(name: &str, scenario_path: &Path, digest: &str, why: &str) {
    let dir = repo_root().join("target/zoo").join(name);
    let _ = fs::create_dir_all(&dir);
    let _ = fs::write(dir.join("digest.json"), digest);
    let _ = fs::copy(scenario_path, dir.join("scenario.toml"));
    let _ = fs::write(dir.join("failure.txt"), why);
}

fn zoo_files() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("scenario dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn zoo_scenarios_uphold_invariants_and_match_goldens() {
    let files = zoo_files();
    assert!(
        files.len() >= 6,
        "the zoo must hold at least 6 scenarios, found {}",
        files.len()
    );
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures: Vec<String> = Vec::new();
    for path in &files {
        let text = fs::read_to_string(path).unwrap();
        let sc = match parse_scenario(&text) {
            Ok(sc) => sc,
            Err(e) => {
                failures.push(format!("{}: parse error: {e}", path.display()));
                continue;
            }
        };
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        if sc.name != stem {
            failures.push(format!(
                "{}: scenario.name `{}` must match the file stem",
                path.display(),
                sc.name
            ));
            continue;
        }

        // Two full runs: the digest must be byte-deterministic.
        let first = run(&sc);
        let bytes = digest_json(&first.digest);
        let again = digest_json(&run(&sc).digest);
        if bytes != again {
            artifact_dump(&sc.name, path, &bytes, "digest not deterministic");
            failures.push(format!("{}: digest differs between two runs", sc.name));
            continue;
        }

        if !first.violations.is_empty() {
            let why = format!("invariant violations:\n{}", first.violations.join("\n"));
            artifact_dump(&sc.name, path, &bytes, &why);
            failures.push(format!("{}: {why}", sc.name));
        }

        let golden = repo_root()
            .join("tests/golden/zoo")
            .join(format!("{stem}.json"));
        if update {
            fs::write(&golden, &bytes).unwrap();
            continue;
        }
        match fs::read_to_string(&golden) {
            Ok(expected) if expected == bytes => {}
            Ok(_) => {
                artifact_dump(&sc.name, path, &bytes, "digest diverged from golden");
                failures.push(format!(
                    "{}: digest diverged from {} (UPDATE_GOLDEN=1 to regenerate)",
                    sc.name,
                    golden.display()
                ));
            }
            Err(e) => {
                artifact_dump(&sc.name, path, &bytes, "golden missing");
                failures.push(format!(
                    "{}: golden {} unreadable ({e}); UPDATE_GOLDEN=1 to create",
                    sc.name,
                    golden.display()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "zoo failures:\n{}",
        failures.join("\n")
    );
}

/// The §3.4 ablation pair must show *separation*, not just satisfy
/// their own one-sided bounds: the offsets-equal control concentrates
/// strictly more combined load on its hottest node than the staggered
/// treatment arm.
#[test]
fn rotation_ablation_shows_hot_arc_separation() {
    let load = |file: &str| {
        let text = fs::read_to_string(repo_root().join("scenarios").join(file)).unwrap();
        let report = run(&parse_scenario(&text).unwrap());
        report.digest["combined"]["max_share_micros"]
            .as_u64()
            .expect("digest carries combined load share")
    };
    let staggered = load("rotation_staggered.toml");
    let aligned = load("rotation_aligned.toml");
    assert!(
        aligned >= staggered + 100_000,
        "staggering must spread the hot arc: aligned {aligned} vs staggered {staggered} \
         (micro-shares of combined load)"
    );
}
