//! The event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing sequence number assigned at scheduling time. The sequence
//! tie-break makes simultaneous events fire in scheduling order, which is
//! what keeps the whole simulation deterministic.
//!
//! # Calendar structure
//!
//! A single binary heap pays `O(log n)` pointer-chasing comparisons per
//! operation, which at 100k-node scale (queues holding hundreds of
//! thousands of in-flight deliveries) dominates the event loop. Since
//! almost every event is scheduled a bounded distance into the future —
//! one-way latencies of tens to hundreds of milliseconds, protocol
//! timers of seconds — the queue is a **bucketed calendar**: a ring of
//! `NUM_BUCKETS` buckets, each `1 << BUCKET_WIDTH_BITS` ns of simulated
//! time wide, holding the near future, plus one overflow heap for everything
//! beyond the ring's horizon. Pushes into the near future are `O(1)`
//! bucket selection plus an `O(log b)` push into a *small* per-bucket
//! heap; pops scan forward from the current bucket. Overflow events
//! migrate into the ring lazily as the window advances.
//!
//! The pop order is **identical** to the single heap's — the global
//! `(time, seq)` minimum, every time — so swapping the structure cannot
//! change any simulation outcome (the `calendar_matches_reference_heap`
//! proptest below proves this against a reference heap).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sim::AgentId;
use crate::time::SimTime;

/// An opaque tag an agent attaches to a timer so it can tell its timers
/// apart when they fire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerTag(pub u64);

/// What happens when an event fires.
pub(crate) enum EventKind<M> {
    /// Deliver a message to `dst` that was sent by `from`.
    Deliver { from: AgentId, msg: M },
    /// Deliver a message whose service slot was already reserved when
    /// it was deferred by the finite-capacity model: delivered
    /// unconditionally at its slot, never re-deferred. Only constructed
    /// while a service time is set.
    Serve { from: AgentId, msg: M },
    /// Fire a timer previously scheduled by the destination agent.
    Timer { tag: TimerTag },
    /// The destination host crashes: until it restarts, messages and
    /// timers addressed to it are discarded.
    Crash,
    /// The destination host comes back up.
    Restart,
}

pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub dst: AgentId,
    pub kind: EventKind<M>,
}

impl<M> Event<M> {
    /// The total-order key the queue sorts by.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulated width of one calendar bucket: 2^24 ns ≈ 16.8 ms, a fraction
/// of the default 180 ms mean RTT so concurrent deliveries spread over
/// many buckets.
const BUCKET_WIDTH_BITS: u32 = 24;

/// Ring size (a power of two so slot selection is a mask). The window
/// spans `NUM_BUCKETS << BUCKET_WIDTH_BITS` ≈ 34 simulated seconds —
/// wide enough that periodic protocol timers land in the ring, not the
/// overflow heap.
const NUM_BUCKETS: usize = 2048;

/// A deterministic priority queue of simulation events: bucketed
/// calendar ring for the near future, overflow heap beyond the window.
pub(crate) struct EventQueue<M> {
    /// The near-future ring. Bucket for absolute bucket number `b` is
    /// `buckets[b & (NUM_BUCKETS - 1)]`; all events in the ring fall in
    /// the window `[window_start, window_start + NUM_BUCKETS)` (absolute
    /// bucket numbers), so no two live in the same slot for different
    /// absolute buckets.
    buckets: Box<[BinaryHeap<Event<M>>]>,
    /// Events in the ring (sum of bucket lengths).
    near_len: usize,
    /// Overflow: events at or past the window's end — plus, rarely,
    /// events pushed before the window start after a window jump. Served
    /// directly when holding the global minimum, migrated into the ring
    /// when the window advances over them.
    far: BinaryHeap<Event<M>>,
    /// Absolute bucket number of the window origin.
    window_start: u64,
    /// Scan position (absolute bucket number), `>= window_start`. Pushes
    /// rewind it; pops advance it over empty buckets.
    cursor: u64,
    next_seq: u64,
    /// High-water mark of the queue length, for capacity telemetry.
    peak_len: usize,
}

#[inline]
fn abs_bucket(time: SimTime) -> u64 {
    time.0 >> BUCKET_WIDTH_BITS
}

#[inline]
fn slot(b: u64) -> usize {
    b as usize & (NUM_BUCKETS - 1)
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            near_len: 0,
            far: BinaryHeap::new(),
            window_start: 0,
            cursor: 0,
            next_seq: 0,
            peak_len: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, dst: AgentId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event {
            time,
            seq,
            dst,
            kind,
        };
        let b = abs_bucket(time);
        if b >= self.window_start && b < self.window_start + NUM_BUCKETS as u64 {
            if b < self.cursor {
                // Legal when simulated time sits mid-window behind the
                // scan position (e.g. an inject after `run_until`).
                self.cursor = b;
            }
            self.buckets[slot(b)].push(ev);
            self.near_len += 1;
        } else {
            // Beyond the horizon (or, after a window jump, before the
            // origin): overflow. Migrates ringward as the window moves.
            self.far.push(ev);
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    /// Advance `cursor` to the first non-empty ring bucket and return its
    /// slot. `None` when the ring is empty.
    ///
    /// Every bucket the cursor skipped is empty, so the window origin can
    /// slide up to the cursor ([`Self::slide_window`]) — without that,
    /// simulations running past the initial ~34 s window would push every
    /// new event through the `O(log n)` overflow heap until the ring
    /// happened to drain completely.
    fn scan_near(&mut self) -> Option<usize> {
        if self.near_len == 0 {
            return None;
        }
        let end = self.window_start + NUM_BUCKETS as u64;
        while self.cursor < end {
            let s = slot(self.cursor);
            if !self.buckets[s].is_empty() {
                self.slide_window();
                return Some(s);
            }
            self.cursor += 1;
        }
        unreachable!("near_len > 0 but no non-empty bucket in window");
    }

    /// Slide the window origin forward to the cursor and migrate overflow
    /// events that now fit into the ring.
    ///
    /// Sound because every ring event lives in `[cursor, old_end)` — the
    /// scan only advances over empty buckets and pushes rewind it — so
    /// the new window `[cursor, cursor + NUM_BUCKETS)` still covers them
    /// all and no slot is shared by two absolute buckets. Overflow events
    /// *before* the new origin (rare injects after a window jump) stay in
    /// the overflow heap, where [`Self::pop`]'s near/far key comparison
    /// already serves them in exact order; they also block migration of
    /// later overflow events until popped, which is fine for the same
    /// reason.
    fn slide_window(&mut self) {
        if self.cursor == self.window_start {
            return;
        }
        self.window_start = self.cursor;
        let end = self.window_start + NUM_BUCKETS as u64;
        while let Some(ev) = self.far.peek() {
            let b = abs_bucket(ev.time);
            if b < self.window_start || b >= end {
                break;
            }
            let ev = self.far.pop().expect("peeked");
            self.buckets[slot(b)].push(ev);
            self.near_len += 1;
        }
    }

    /// When the ring is empty but overflow is not, re-origin the window
    /// at the overflow minimum and migrate every overflow event that now
    /// fits the window into the ring.
    fn migrate_far(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        let Some(first) = self.far.peek() else {
            return;
        };
        self.window_start = abs_bucket(first.time);
        self.cursor = self.window_start;
        let end = self.window_start + NUM_BUCKETS as u64;
        while let Some(ev) = self.far.peek() {
            if abs_bucket(ev.time) >= end {
                break;
            }
            let ev = self.far.pop().expect("peeked");
            self.buckets[slot(abs_bucket(ev.time))].push(ev);
            self.near_len += 1;
        }
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        if self.near_len == 0 {
            self.migrate_far();
        }
        let near = self.scan_near();
        match (near, self.far.peek()) {
            (None, None) => None,
            (Some(s), far_min) => {
                // The ring minimum is the head of the bucket at the
                // cursor; overflow may still beat it when a push landed
                // before the window origin after a jump.
                let near_key = self.buckets[s].peek().expect("scanned non-empty").key();
                if far_min.is_some_and(|f| f.key() < near_key) {
                    self.far.pop()
                } else {
                    self.near_len -= 1;
                    self.buckets[s].pop()
                }
            }
            (None, Some(_)) => self.far.pop(),
        }
    }

    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.near_len == 0 {
            self.migrate_far();
        }
        let near = self.scan_near();
        let near_t = near.map(|s| self.buckets[s].peek().expect("non-empty").time);
        let far_t = self.far.peek().map(|e| e.time);
        match (near_t, far_t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Most events ever simultaneously queued.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
impl<M> EventQueue<M> {
    /// Test helper: push a timer event with a default tag.
    fn push_marker(&mut self, time: SimTime, dst: AgentId) {
        self.push(time, dst, EventKind::Timer { tag: TimerTag(0) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::splitmix64;

    fn drain_order(q: &mut EventQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = vec![];
        while let Some(e) = q.pop() {
            out.push((e.time.0, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime(30),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(0) },
        );
        q.push(
            SimTime(10),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(1) },
        );
        q.push(
            SimTime(20),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(2) },
        );
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for _ in 0..5 {
            q.push_marker(SimTime(7), AgentId(0));
        }
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push_marker(SimTime(42), AgentId(1));
        q.push_marker(SimTime(41), AgentId(2));
        assert_eq!(q.peek_time(), Some(SimTime(41)));
        assert_eq!(q.len(), 2);
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime(41));
        assert_eq!(e.dst, AgentId(2));
        assert!(!q.is_empty());
    }

    /// Events past the ring window land in the overflow heap and still
    /// pop in exact global order as the window advances over them.
    #[test]
    fn far_future_events_migrate_in_order() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;
        let mut q: EventQueue<u32> = EventQueue::new();
        // Interleave near, far, and very far events.
        q.push_marker(SimTime(3 * window_ns), AgentId(0));
        q.push_marker(SimTime(5), AgentId(0));
        q.push_marker(SimTime(window_ns + 1), AgentId(0));
        q.push_marker(SimTime(window_ns), AgentId(0));
        q.push_marker(SimTime(7), AgentId(0));
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![5, 7, window_ns, window_ns + 1, 3 * window_ns]
        );
        // Ties across the near/far boundary break by seq.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_marker(SimTime(2 * window_ns), AgentId(0)); // seq 0, far
        q.push_marker(SimTime(1), AgentId(0)); // seq 1, near
        assert_eq!(drain_order(&mut q), vec![(1, 1), (2 * window_ns, 0)]);
    }

    /// A push behind the scan position (legal after `run_until` + inject)
    /// must still be found.
    #[test]
    fn push_behind_cursor_is_not_lost() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let w = 1u64 << BUCKET_WIDTH_BITS;
        q.push_marker(SimTime(10 * w), AgentId(0));
        // Peek advances the cursor to bucket 10.
        assert_eq!(q.peek_time(), Some(SimTime(10 * w)));
        // Now an event lands in bucket 2, behind the cursor.
        q.push_marker(SimTime(2 * w), AgentId(1));
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![2 * w, 10 * w]
        );
    }

    /// After a window jump driven by the overflow heap, a push *before*
    /// the new window origin (but after the last popped time) must still
    /// pop first, straight from the overflow heap.
    #[test]
    fn push_before_window_origin_after_jump() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push_marker(SimTime(2 * window_ns), AgentId(0));
        // Drain nothing yet; peek forces the window jump to bucket of
        // 2*window_ns.
        assert_eq!(q.peek_time(), Some(SimTime(2 * window_ns)));
        // An inject at a time before the new origin.
        q.push_marker(SimTime(window_ns + 5), AgentId(1));
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![window_ns + 5, 2 * window_ns]
        );
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The load-bearing property: against an arbitrary interleaving
        /// of pushes and pops — push times at or after the last popped
        /// time, as the simulator guarantees — the calendar queue pops
        /// in exactly the order a plain `(time, seq)` min-heap would.
        /// Each op is `(kind, raw)`: kinds 0–2 push within one bucket,
        /// 3–4 push anywhere inside ~one window, 5 pushes one to three
        /// windows out (the overflow/migration path), 6–8 pop.
        #[test]
        fn calendar_matches_reference_heap(
            ops in prop::collection::vec((0u8..9, any::<u64>()), 1..400),
        ) {
            let window_ns = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;
            let mut cal: EventQueue<u32> = EventQueue::new();
            // Reference: one max-heap over inverted-Ord events.
            let mut reference: BinaryHeap<Event<u32>> = BinaryHeap::new();
            let mut ref_seq = 0u64;
            // The simulator only schedules at or after `now`; track the
            // same lower bound here.
            let mut now = SimTime::ZERO;
            for (kind, raw) in ops {
                let delta = match kind {
                    0..=2 => Some(raw % (1 << BUCKET_WIDTH_BITS)),
                    3..=4 => Some(raw % (window_ns + (4 << BUCKET_WIDTH_BITS))),
                    5 => Some(window_ns + raw % (2 * window_ns)),
                    _ => None,
                };
                match delta {
                    Some(delta_ns) => {
                        let t = SimTime(now.0 + delta_ns);
                        cal.push(t, AgentId(0), EventKind::Timer { tag: TimerTag(0) });
                        reference.push(Event {
                            time: t,
                            seq: ref_seq,
                            dst: AgentId(0),
                            kind: EventKind::Timer { tag: TimerTag(0) },
                        });
                        ref_seq += 1;
                    }
                    None => {
                        prop_assert_eq!(cal.peek_time(), reference.peek().map(|e| e.time));
                        let got = cal.pop();
                        let want = reference.pop();
                        match (got, want) {
                            (None, None) => {}
                            (Some(g), Some(w)) => {
                                prop_assert_eq!((g.time, g.seq), (w.time, w.seq));
                                now = g.time;
                            }
                            (g, w) => prop_assert!(
                                false,
                                "pop mismatch: calendar {:?} vs reference {:?}",
                                g.map(|e| (e.time, e.seq)),
                                w.map(|e| (e.time, e.seq))
                            ),
                        }
                    }
                }
                prop_assert_eq!(cal.len(), reference.len());
            }
            // Drain both to the end.
            while let Some(w) = reference.pop() {
                let g = cal.pop().expect("calendar drained early");
                prop_assert_eq!((g.time, g.seq), (w.time, w.seq));
            }
            prop_assert!(cal.pop().is_none());
        }
    }

    /// Sustained load across several window wraps: events keep arriving a
    /// bounded distance ahead of the pop frontier, so simulated time walks
    /// far past the initial `[0, NUM_BUCKETS << BUCKET_WIDTH_BITS)` window
    /// while the ring never drains. Pops must stay heap-identical to a
    /// reference min-heap the whole way, and — the point of the sliding
    /// window — the overflow heap must stay empty, because every push
    /// lands within one bucket-width window of the current frontier.
    #[test]
    fn sustained_load_pops_in_order_across_window_wraps() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut reference: BinaryHeap<Event<u32>> = BinaryHeap::new();
        let mut ref_seq = 0u64;
        let mut now = SimTime::ZERO;
        // Deterministic pseudo-random deltas (no RNG dependency here).
        let mut state = 0x1234_5678_9abc_def0u64;
        let horizon = SimTime(6 * window_ns); // several full wraps
        let mut in_flight = 0usize;
        while now < horizon || in_flight > 0 {
            // Keep ~8 events in flight, each within half a window of now.
            while in_flight < 8 && now < horizon {
                let delta = splitmix64(&mut state) % (window_ns / 2) + 1;
                let t = SimTime(now.0 + delta);
                cal.push(t, AgentId(0), EventKind::Timer { tag: TimerTag(0) });
                reference.push(Event {
                    time: t,
                    seq: ref_seq,
                    dst: AgentId(0),
                    kind: EventKind::Timer { tag: TimerTag(0) },
                });
                ref_seq += 1;
                in_flight += 1;
            }
            let got = cal.pop().expect("calendar has in-flight events");
            let want = reference.pop().expect("reference has in-flight events");
            assert_eq!((got.time, got.seq), (want.time, want.seq));
            now = got.time;
            in_flight -= 1;
            // The sliding window keeps sustained traffic out of the
            // overflow heap entirely.
            assert!(
                cal.far.is_empty(),
                "overflow heap grew to {} at t={} — window failed to slide",
                cal.far.len(),
                now.0
            );
        }
        assert!(now.0 >= 5 * window_ns, "run covered several window wraps");
        assert!(cal.is_empty());
    }

    /// A far-future event pushed early must coexist with sustained near
    /// traffic: it migrates into the ring when the window slides over it
    /// and pops at exactly its turn.
    #[test]
    fn far_event_migrates_during_sustained_run() {
        let window_ns = (NUM_BUCKETS as u64) << BUCKET_WIDTH_BITS;
        let mut q: EventQueue<u32> = EventQueue::new();
        // One event three windows out (overflow at push time)...
        let far_t = SimTime(3 * window_ns + 17);
        q.push_marker(far_t, AgentId(9));
        // ...plus a steady stream that keeps the ring non-empty, so the
        // lazy `migrate_far` path (which requires an empty ring) never
        // runs; only the sliding window can migrate the far event.
        let mut now = 0u64;
        let step = window_ns / 4;
        let mut popped = vec![];
        for i in 0..20u64 {
            q.push_marker(SimTime(now + step), AgentId(i as usize));
            let e = q.pop().expect("stream event");
            popped.push(e.time.0);
            now = e.time.0;
        }
        while let Some(e) = q.pop() {
            popped.push(e.time.0);
        }
        // The stream passes 3*window_ns around iteration 12; the far
        // event must have popped in order within the stream.
        assert!(popped.contains(&far_t.0), "far event popped: {popped:?}");
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted, "pops were globally ordered");
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for t in 0..10 {
            q.push_marker(SimTime(t), AgentId(0));
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push_marker(SimTime(20), AgentId(0));
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 6);
    }
}
