//! The event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing sequence number assigned at scheduling time. The sequence
//! tie-break makes simultaneous events fire in scheduling order, which is
//! what keeps the whole simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::sim::AgentId;
use crate::time::SimTime;

/// An opaque tag an agent attaches to a timer so it can tell its timers
/// apart when they fire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerTag(pub u64);

/// What happens when an event fires.
pub(crate) enum EventKind<M> {
    /// Deliver a message to `dst` that was sent by `from`.
    Deliver { from: AgentId, msg: M },
    /// Fire a timer previously scheduled by the destination agent.
    Timer { tag: TimerTag },
    /// The destination host crashes: until it restarts, messages and
    /// timers addressed to it are discarded.
    Crash,
    /// The destination host comes back up.
    Restart,
}

pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub dst: AgentId,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of simulation events.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, dst: AgentId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            dst,
            kind,
        });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
impl<M> EventQueue<M> {
    /// Test helper: push a timer event with a default tag.
    fn push_marker(&mut self, time: SimTime, dst: AgentId) {
        self.push(time, dst, EventKind::Timer { tag: TimerTag(0) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(q: &mut EventQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = vec![];
        while let Some(e) = q.pop() {
            out.push((e.time.0, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime(30),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(0) },
        );
        q.push(
            SimTime(10),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(1) },
        );
        q.push(
            SimTime(20),
            AgentId(0),
            EventKind::Timer { tag: TimerTag(2) },
        );
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for _ in 0..5 {
            q.push_marker(SimTime(7), AgentId(0));
        }
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push_marker(SimTime(42), AgentId(1));
        q.push_marker(SimTime(41), AgentId(2));
        assert_eq!(q.peek_time(), Some(SimTime(41)));
        assert_eq!(q.len(), 2);
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime(41));
        assert_eq!(e.dst, AgentId(2));
        assert!(!q.is_empty());
    }
}
