//! Deterministic fault injection.
//!
//! p2psim evaluates DHTs under adversity — lossy links, slow paths, and
//! churn — and the paper's resilience story (§3.3: the index maintains
//! "no extra routing structure beyond Chord itself") is only testable
//! under the same conditions. This module is the configuration surface
//! for that adversity: every fault is drawn from its own seeded RNG
//! stream or from an explicit schedule, so a faulty run is exactly as
//! reproducible as a calm one.
//!
//! The default [`FaultPlane`] is a strict no-op: zero probabilities, no
//! partitions. Simulations that never call [`crate::Sim::set_faults`]
//! (or [`crate::Sim::schedule_crash`]) behave byte-identically to a
//! build without this module.

use crate::time::SimTime;

/// A scheduled network partition: during `[from, until)` messages may
/// only cross between hosts on the same side of the cut.
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive); healed from this instant on.
    pub until: SimTime,
    /// Side assignment, one entry per agent id. Messages between agents
    /// with differing entries are dropped while the window is active.
    pub island: Vec<bool>,
}

impl PartitionWindow {
    /// Does this window sever the `(a, b)` link at time `now`?
    pub(crate) fn severs(&self, now: SimTime, a: usize, b: usize) -> bool {
        now >= self.from
            && now < self.until
            && self.island.get(a).copied().unwrap_or(false)
                != self.island.get(b).copied().unwrap_or(false)
    }
}

/// Per-scenario fault configuration. All rates are independent
/// per-message probabilities applying to cross-host traffic only;
/// self-sends are a local function call and never fault.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    /// Probability that a message is silently dropped on the wire.
    pub drop_rate: f64,
    /// Probability that a message is delivered twice (the duplicate
    /// arrives one extra propagation delay after the original).
    pub dup_rate: f64,
    /// Probability that a message experiences a latency spike.
    pub spike_rate: f64,
    /// One-way delay multiplier applied to spiked messages.
    pub spike_factor: f64,
    /// Scheduled partitions; any active window can sever a link.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane {
            drop_rate: 0.0,
            dup_rate: 0.0,
            spike_rate: 0.0,
            spike_factor: 1.0,
            partitions: Vec::new(),
        }
    }
}

impl FaultPlane {
    /// Validate the configured rates; called by `Sim::set_faults`.
    pub(crate) fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.drop_rate),
            "drop rate must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.dup_rate),
            "dup rate must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.spike_rate),
            "spike rate must be in [0, 1)"
        );
        assert!(self.spike_factor >= 1.0, "spike factor must be >= 1");
        for w in &self.partitions {
            assert!(w.from <= w.until, "partition window must not be inverted");
        }
    }

    /// True when any partition window severs `(a, b)` at `now`.
    pub(crate) fn partitioned(&self, now: SimTime, a: usize, b: usize) -> bool {
        self.partitions.iter().any(|w| w.severs(now, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        let f = FaultPlane::default();
        assert_eq!(f.drop_rate, 0.0);
        assert_eq!(f.dup_rate, 0.0);
        assert_eq!(f.spike_rate, 0.0);
        assert!(f.partitions.is_empty());
        assert!(!f.partitioned(SimTime::ZERO, 0, 1));
    }

    #[test]
    fn partition_window_severs_only_across_the_cut_and_only_in_window() {
        let w = PartitionWindow {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            island: vec![true, true, false],
        };
        let mid = SimTime::from_millis(1500);
        assert!(w.severs(mid, 0, 2));
        assert!(w.severs(mid, 2, 1));
        assert!(!w.severs(mid, 0, 1), "same side stays connected");
        assert!(!w.severs(SimTime::ZERO, 0, 2), "before the window");
        assert!(!w.severs(SimTime::from_secs(2), 0, 2), "until is exclusive");
    }
}
