//! # simnet — deterministic discrete-event packet-level network simulator
//!
//! This crate is the substrate the whole reproduction runs on. The paper
//! evaluates its index architecture on **p2psim**, MIT's discrete
//! event-driven, packet-level simulator for DHT protocols. `simnet`
//! reimplements the parts of that model the experiments rely on:
//!
//! * an event queue with deterministic ordering (integer nanosecond time,
//!   FIFO sequence tie-breaking),
//! * a population of message-driven agents (one per simulated host),
//! * per-pair propagation delays drawn from a latency matrix
//!   ([`topology::Topology`]) that substitutes for the King dataset,
//! * per-message byte accounting so experiments can report bandwidth cost,
//! * a deterministic metrics registry ([`telemetry`]) for counters and
//!   histograms that higher layers hang their instrumentation on.
//!
//! There is no modelled queueing or processing delay: like p2psim's default
//! packet-level model, a message sent at time `t` from `a` to `b` is
//! delivered at `t + rtt(a,b)/2`.
//!
//! ## Example
//!
//! ```
//! use simnet::{Agent, AgentId, Ctx, Sim, SimTime, TimerTag};
//! use simnet::topology::Topology;
//!
//! /// A trivial agent that forwards a counter around the ring once.
//! struct RingHop {
//!     n: usize,
//!     seen: Option<u32>,
//! }
//!
//! impl Agent for RingHop {
//!     type Msg = u32;
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: AgentId, msg: u32) {
//!         self.seen = Some(msg);
//!         if (msg as usize) < self.n - 1 {
//!             let next = AgentId((ctx.me().0 + 1) % self.n);
//!             ctx.send(next, msg + 1, 20);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _t: TimerTag) {}
//! }
//!
//! let topo = Topology::uniform(4, SimTime::from_millis(100));
//! let agents = (0..4).map(|_| RingHop { n: 4, seen: None }).collect();
//! let mut sim = Sim::new(topo, agents, 42);
//! sim.inject(SimTime::ZERO, AgentId(0), 0u32);
//! sim.run();
//! assert_eq!(sim.agent(AgentId(3)).seen, Some(3));
//! // three 50 ms one-way hops
//! assert_eq!(sim.now(), SimTime::from_millis(150));
//! ```

pub mod event;
pub mod fault;
pub mod loadgen;
pub mod par;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod topology;

pub use event::TimerTag;
pub use fault::{FaultPlane, PartitionWindow};
pub use loadgen::{ArrivalProcess, LatencyLedger, RampPhase};
pub use par::{current_effect_rank, EffectRank};
pub use rng::SimRng;
pub use sim::{Agent, AgentId, Ctx, Sim};
pub use stats::NetStats;
pub use telemetry::{Histogram, Registry, SharedRegistry};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
