//! Arrival processes and per-query latency accounting for
//! sustained-load experiments.
//!
//! Batch experiments ask "what did this workload cost"; load experiments
//! ask "what rate can the system sustain". The two building blocks here
//! are deliberately protocol-agnostic so any experiment crate can drive
//! them:
//!
//! * [`ArrivalProcess`] — a deterministic generator of inter-arrival
//!   gaps (open-loop Poisson or fixed-rate), optionally shaped by
//!   [`RampPhase`] schedules.
//! * [`LatencyLedger`] — per-query issue/completion/timeout accounting
//!   with an *exactly-once* completion guarantee. The ledger is where
//!   the `issued == completions + timeouts` invariant lives: a query
//!   answered late (e.g. by a replica after retransmit exhaustion) must
//!   record one completion latency, never zero and never two.
//!
//! Percentiles are exact (nearest-rank over the recorded samples, via
//! O(n) selection), not bucket-approximated; the coarse power-of-two
//! [`crate::telemetry::Histogram`] view is available for telemetry
//! snapshots where byte-stable JSON matters more than resolution.

use crate::rng::SimRng;
use crate::telemetry::Histogram;
use crate::time::{SimDuration, SimTime};

/// How query arrivals are spaced in an open-loop run.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponentially distributed gaps with the given
    /// mean. The memoryless choice — bursts and lulls arise naturally,
    /// which is what makes open-loop p99 honest.
    Poisson {
        /// Mean inter-arrival gap.
        mean: SimDuration,
    },
    /// Deterministic arrivals: every gap exactly this long. Useful to
    /// separate queueing effects from arrival burstiness.
    FixedRate {
        /// The constant inter-arrival gap.
        interval: SimDuration,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `qps` queries per simulated second.
    pub fn poisson_qps(qps: f64) -> ArrivalProcess {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
        ArrivalProcess::Poisson {
            mean: SimDuration::from_secs_f64(1.0 / qps),
        }
    }

    /// Fixed-rate arrivals at `qps` queries per simulated second.
    pub fn fixed_qps(qps: f64) -> ArrivalProcess {
        assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
        ArrivalProcess::FixedRate {
            interval: SimDuration::from_secs_f64(1.0 / qps),
        }
    }

    /// The mean inter-arrival gap (the inverse offered rate).
    pub fn mean_gap(&self) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson { mean } => mean,
            ArrivalProcess::FixedRate { interval } => interval,
        }
    }

    /// Draw the next inter-arrival gap, scaled by `rate_scale` (a ramp
    /// multiplier: 2.0 means twice the rate, i.e. half the gap). Gaps
    /// are clamped to at least one nanosecond so arrival times strictly
    /// advance.
    pub fn next_gap(&self, rng: &mut SimRng, rate_scale: f64) -> SimDuration {
        debug_assert!(rate_scale.is_finite() && rate_scale > 0.0);
        let ns = match *self {
            ArrivalProcess::Poisson { mean } => rng.exponential(mean.0 as f64),
            ArrivalProcess::FixedRate { interval } => interval.0 as f64,
        };
        SimDuration(((ns / rate_scale).round() as u64).max(1))
    }
}

/// One phase of a load ramp: for `duration` of simulated time the
/// offered rate is the process's base rate times `rate_scale`. After
/// the last phase the scale stays at the final phase's value (an empty
/// schedule means a flat 1.0 the whole run).
#[derive(Clone, Copy, Debug)]
pub struct RampPhase {
    /// How long this phase lasts.
    pub duration: SimDuration,
    /// Rate multiplier during the phase.
    pub rate_scale: f64,
}

/// The rate multiplier in effect at `elapsed` time into a ramp
/// schedule. Empty schedules and time past the last phase both yield
/// the final (or unit) scale.
pub fn ramp_scale_at(phases: &[RampPhase], elapsed: SimDuration) -> f64 {
    let mut t = SimDuration::ZERO;
    for p in phases {
        t += p.duration;
        if elapsed < t {
            return p.rate_scale;
        }
    }
    phases.last().map_or(1.0, |p| p.rate_scale)
}

/// Lifecycle of one tracked query in the [`LatencyLedger`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QueryState {
    InFlight { issued_at: SimTime },
    Completed,
    TimedOut,
}

/// Per-query latency accounting with an exactly-once completion
/// guarantee.
///
/// Queries are keyed by dense ids (the driver assigns `0..n`). The
/// ledger enforces the state machine *issued → completed | timed-out*:
/// a second completion for the same query is rejected and counted in
/// [`LatencyLedger::duplicate_completions`], a completion after a
/// timeout is rejected likewise, and [`LatencyLedger::invariant_holds`]
/// checks `issued == completions + timeouts + in_flight` at any point.
#[derive(Clone, Debug, Default)]
pub struct LatencyLedger {
    states: Vec<Option<QueryState>>,
    /// Completion latencies in microseconds, in completion order.
    latencies_us: Vec<u64>,
    issued: u64,
    completions: u64,
    timeouts: u64,
    duplicate_completions: u64,
}

impl LatencyLedger {
    /// An empty ledger.
    pub fn new() -> LatencyLedger {
        LatencyLedger::default()
    }

    /// Record that query `qid` was issued at `at`. Returns `false` (and
    /// records nothing) if the id was already issued.
    pub fn issue(&mut self, qid: usize, at: SimTime) -> bool {
        if self.states.len() <= qid {
            self.states.resize(qid + 1, None);
        }
        if self.states[qid].is_some() {
            return false;
        }
        self.states[qid] = Some(QueryState::InFlight { issued_at: at });
        self.issued += 1;
        true
    }

    /// Record the completion of query `qid` at `at`. Exactly-once: the
    /// first completion records `at - issued_at` and returns `true`;
    /// anything else — unknown id, never issued, already completed
    /// (counted in [`Self::duplicate_completions`]), already timed out —
    /// records nothing and returns `false`.
    pub fn complete(&mut self, qid: usize, at: SimTime) -> bool {
        match self.states.get(qid).copied().flatten() {
            Some(QueryState::InFlight { issued_at }) => {
                self.states[qid] = Some(QueryState::Completed);
                self.latencies_us.push(at.since(issued_at).0 / 1_000);
                self.completions += 1;
                true
            }
            Some(QueryState::Completed) => {
                self.duplicate_completions += 1;
                false
            }
            Some(QueryState::TimedOut) | None => false,
        }
    }

    /// Record that query `qid` timed out (no completion by its
    /// deadline). Returns `false` if it was not in flight.
    pub fn timeout(&mut self, qid: usize) -> bool {
        match self.states.get(qid).copied().flatten() {
            Some(QueryState::InFlight { .. }) => {
                self.states[qid] = Some(QueryState::TimedOut);
                self.timeouts += 1;
                true
            }
            _ => false,
        }
    }

    /// When query `qid` is still in flight, the time it was issued.
    pub fn in_flight_since(&self, qid: usize) -> Option<SimTime> {
        match self.states.get(qid).copied().flatten() {
            Some(QueryState::InFlight { issued_at }) => Some(issued_at),
            _ => None,
        }
    }

    /// Queries issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Queries that recorded a completion latency.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Queries that timed out.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Queries still in flight (issued, neither completed nor timed out).
    pub fn in_flight(&self) -> u64 {
        self.issued - self.completions - self.timeouts
    }

    /// Rejected second completions — must stay 0 in a correct driver.
    pub fn duplicate_completions(&self) -> u64 {
        self.duplicate_completions
    }

    /// The accounting invariant every load run must satisfy.
    pub fn invariant_holds(&self) -> bool {
        self.issued == self.completions + self.timeouts + self.in_flight()
    }

    /// Completion latencies in microseconds, in completion order.
    pub fn latencies_us(&self) -> &[u64] {
        &self.latencies_us
    }

    /// Exact nearest-rank percentile of the completion latencies, in
    /// microseconds (`None` when no query completed). `pct` is in
    /// `[0, 100]`. Uses O(n) selection, *not* the power-of-two telemetry
    /// buckets — the proptest below pins it to a sorted-vec oracle.
    pub fn percentile_us(&self, pct: f64) -> Option<u64> {
        percentile_of(&self.latencies_us, pct)
    }

    /// Mean completion latency in microseconds (`None` when empty).
    pub fn mean_us(&self) -> Option<f64> {
        if self.latencies_us.is_empty() {
            None
        } else {
            Some(self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64)
        }
    }

    /// The coarse power-of-two histogram of the completion latencies,
    /// for byte-stable telemetry snapshots.
    pub fn histogram_us(&self) -> Histogram {
        crate::telemetry::histogram_of(self.latencies_us.iter().copied())
    }
}

/// Exact nearest-rank percentile of `samples` via O(n) selection:
/// the element a full sort would place at index
/// `round(pct/100 * (len-1))`. `None` on an empty slice.
pub fn percentile_of(samples: &[u64], pct: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    let idx = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
    let mut scratch = samples.to_vec();
    let (_, nth, _) = scratch.select_nth_unstable(idx);
    Some(*nth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gaps_have_the_configured_mean() {
        let p = ArrivalProcess::poisson_qps(100.0); // mean gap 10 ms
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut rng, 1.0).0).sum();
        let mean_ms = total as f64 / n as f64 / 1e6;
        assert!((mean_ms - 10.0).abs() < 0.3, "mean gap {mean_ms} ms");
    }

    #[test]
    fn fixed_rate_gaps_are_constant_and_scale() {
        let p = ArrivalProcess::fixed_qps(50.0); // 20 ms
        let mut rng = SimRng::new(7);
        assert_eq!(p.next_gap(&mut rng, 1.0), SimDuration::from_millis(20));
        assert_eq!(p.next_gap(&mut rng, 2.0), SimDuration::from_millis(10));
        assert_eq!(p.next_gap(&mut rng, 0.5), SimDuration::from_millis(40));
    }

    #[test]
    fn ramp_schedule_resolves_phases() {
        let phases = [
            RampPhase {
                duration: SimDuration::from_secs(1),
                rate_scale: 0.5,
            },
            RampPhase {
                duration: SimDuration::from_secs(2),
                rate_scale: 1.0,
            },
        ];
        assert_eq!(ramp_scale_at(&phases, SimDuration::ZERO), 0.5);
        assert_eq!(ramp_scale_at(&phases, SimDuration::from_millis(999)), 0.5);
        assert_eq!(ramp_scale_at(&phases, SimDuration::from_secs(1)), 1.0);
        assert_eq!(ramp_scale_at(&phases, SimDuration::from_secs(2)), 1.0);
        // Past the schedule: final scale holds.
        assert_eq!(ramp_scale_at(&phases, SimDuration::from_secs(60)), 1.0);
        // Empty schedule: flat 1.0.
        assert_eq!(ramp_scale_at(&[], SimDuration::from_secs(60)), 1.0);
    }

    #[test]
    fn ledger_records_exactly_one_completion() {
        let mut l = LatencyLedger::new();
        assert!(l.issue(0, SimTime(1_000_000)));
        // Re-issue of the same id is rejected.
        assert!(!l.issue(0, SimTime(2_000_000)));
        assert!(l.complete(0, SimTime(4_000_000)));
        // The replica's second answer must not record a second latency.
        assert!(!l.complete(0, SimTime(9_000_000)));
        assert_eq!(l.duplicate_completions(), 1);
        assert_eq!(l.latencies_us(), &[3_000]);
        assert_eq!(l.completions(), 1);
        assert!(l.invariant_holds());
    }

    #[test]
    fn timeout_blocks_later_completion() {
        let mut l = LatencyLedger::new();
        l.issue(3, SimTime(0));
        assert!(l.timeout(3));
        // A straggler result after the deadline records nothing.
        assert!(!l.complete(3, SimTime(5_000_000)));
        assert_eq!((l.completions(), l.timeouts()), (0, 1));
        assert_eq!(l.duplicate_completions(), 0);
        assert!(l.invariant_holds());
        // Completing or timing out an unissued id is rejected.
        assert!(!l.complete(99, SimTime(1)));
        assert!(!l.timeout(99));
    }

    #[test]
    fn invariant_tracks_in_flight() {
        let mut l = LatencyLedger::new();
        for q in 0..10 {
            l.issue(q, SimTime(q as u64));
        }
        for q in 0..4 {
            l.complete(q, SimTime(1_000_000));
        }
        l.timeout(4);
        assert_eq!(l.in_flight(), 5);
        assert!(l.invariant_holds());
    }

    #[test]
    fn percentile_matches_known_values() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of(&v, 0.0), Some(1));
        assert_eq!(percentile_of(&v, 50.0), Some(51)); // round(0.5*99)=50
        assert_eq!(percentile_of(&v, 100.0), Some(100));
        assert_eq!(percentile_of(&[], 50.0), None);
        assert_eq!(percentile_of(&[7], 99.0), Some(7));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The selection-based percentile must agree with the obvious
        /// oracle — sort, index at the nearest rank — for every sample
        /// set and percentile.
        #[test]
        fn percentile_matches_sorted_vec_oracle(
            samples in prop::collection::vec(any::<u64>(), 1..200),
            pct_hundredths in 0u32..=10_000,
        ) {
            let pct = pct_hundredths as f64 / 100.0;
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let idx = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
            prop_assert_eq!(percentile_of(&samples, pct), Some(sorted[idx]));
        }

        /// Ledger percentiles go through the same path: feed latencies,
        /// compare p50/p95/p99 against the sorted oracle.
        #[test]
        fn ledger_percentiles_match_oracle(
            lat in prop::collection::vec(0u64..10_000_000, 1..120),
        ) {
            let mut l = LatencyLedger::new();
            for (q, &us) in lat.iter().enumerate() {
                l.issue(q, SimTime(0));
                l.complete(q, SimTime(us * 1_000));
            }
            let mut sorted = lat.clone();
            sorted.sort_unstable();
            for pct in [50.0, 95.0, 99.0] {
                let idx = ((pct / 100.0) * (lat.len() - 1) as f64).round() as usize;
                prop_assert_eq!(l.percentile_us(pct), Some(sorted[idx]));
            }
            prop_assert!(l.invariant_holds());
        }
    }
}
