//! Conservative time-window parallel execution.
//!
//! [`crate::sim::Sim::set_threads`] above 1 switches `run`/`run_until`
//! from the sequential event loop to this engine. The run is cut into
//! **windows** `[T, T + W)` where `T` is the next event time and `W` is
//! the topology's minimum cross-host one-way delay
//! ([`crate::topology::Topology::min_one_way`]). Within a window, an
//! agent can only be influenced by other agents through cross-host
//! messages — and any message sent inside the window arrives at
//! `send_time + delay >= T + W`, i.e. strictly after the window. So the
//! window's events partition cleanly by destination: nodes are split
//! into contiguous **shards**, each shard executes its slice of the
//! window on its own thread, and at the window barrier every deferred
//! cross-shard effect is merged back into the global calendar queue.
//!
//! # Byte-identical determinism
//!
//! The contract is not "statistically equivalent" but **bit-identical to
//! the sequential loop at every thread count**: same agent states, same
//! counters, same delivery order, same final clock. Three mechanisms
//! carry that:
//!
//! 1. **Chain keys.** The sequential engine breaks time ties by an
//!    integer sequence number assigned at push time. A shard cannot know
//!    what that global counter would have read, so events pushed during
//!    window execution carry a structural `SeqKey::Chain` rank instead:
//!    `(parent rank, push index)` — the rank of the event whose callback
//!    pushed them, and the position of the push within that callback.
//!    At equal fire time, every pre-window event (integer rank) orders
//!    before every in-window push (chain rank), exactly as the integer
//!    counter would have ordered them; chain ranks order among themselves
//!    lexicographically, which reproduces the counter's order by
//!    induction over parents (see DESIGN.md §15 for the full argument).
//!
//! 2. **Deferred sends.** Cross-host sends draw from the simulation's
//!    single loss/spike/dup RNG streams, so shards never send directly:
//!    they record `(src, dst, msg, send position)` and the barrier
//!    replays every record — merged across shards in the exact order the
//!    sequential loop would have reached each send — through the same
//!    `deliver_cross` path in `sim`, against the same RNG streams.
//!    Window safety guarantees every replayed arrival lands at or after
//!    the window end, so no replayed event belonged inside the window.
//!
//! 3. **Ranked effects.** Side effects that escape the simulation (the
//!    search layer's telemetry) are order-sensitive only in trace-event
//!    append order. During window execution [`current_effect_rank`]
//!    exposes the executing event's rank; instrumentation buffers its
//!    writes tagged with that rank and applies them sorted, which equals
//!    sequential execution order (ranks are unique, and window `k + 1`
//!    ranks are strictly later than window `k`'s because every event
//!    left after a barrier fires at or after the window end).
//!
//! Sparse windows (fewer than a few events per shard) run through the
//! same shard machinery inline on the driving thread — same arithmetic,
//! no hand-off cost; dense windows fan out to persistent scoped workers.
//! `threads = 1`, single-agent populations, and topologies without a
//! positive latency floor (`W = 0`) never enter this module.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::sync::Arc;

use crate::event::{EventKind, TimerTag};
use crate::fault::FaultPlane;
use crate::sim::{deliver_cross, Agent, AgentId, Core, Ctx, Sim};
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Below this many batch events per shard, a window executes inline on
/// the driving thread instead of fanning out: the per-window hand-off
/// (channel sends, barrier receive) costs more than it saves on a
/// near-empty window.
const PAR_MIN_BATCH_PER_SHARD: usize = 4;

/// Tie-break rank of one event: either the global calendar queue's
/// integer sequence number (pre-window events), or a structural chain
/// rank (events pushed during window execution, where the global counter
/// is unavailable). See the module docs for why chain ranks reproduce
/// the integer order.
#[derive(Clone, Debug)]
pub(crate) enum SeqKey {
    /// Assigned by the global calendar queue at push time.
    Base(u64),
    /// Pushed while executing `parent`'s callback, as its `idx`-th push.
    Chain(Arc<ChainNode>),
}

/// One link of a chain rank. `Arc` so sibling pushes share their parent's
/// whole chain instead of cloning it; chains stay short (the length of a
/// same-instant causality chain, typically single digits).
#[derive(Debug)]
pub(crate) struct ChainNode {
    pub(crate) parent: EventKey,
    pub(crate) idx: u32,
}

/// Total-order execution key of an event: fire time, then rank.
#[derive(Clone, Debug)]
pub(crate) struct EventKey {
    pub(crate) time: SimTime,
    pub(crate) seq: SeqKey,
}

impl EventKey {
    fn child(parent: &EventKey, idx: u32, time: SimTime) -> EventKey {
        EventKey {
            time,
            seq: SeqKey::Chain(Arc::new(ChainNode {
                parent: parent.clone(),
                idx,
            })),
        }
    }
}

impl Ord for SeqKey {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (SeqKey::Base(a), SeqKey::Base(b)) => a.cmp(b),
            // At equal fire time a pre-window event always precedes an
            // in-window push: the sequential engine would have assigned
            // the push a larger integer seq than anything already queued.
            (SeqKey::Base(_), SeqKey::Chain(_)) => Ordering::Less,
            (SeqKey::Chain(_), SeqKey::Base(_)) => Ordering::Greater,
            // Chain vs chain: lexicographic on (parent key, push index) —
            // parents execute in key order, and a callback's pushes get
            // consecutive seqs, so this reproduces the integer order.
            (SeqKey::Chain(a), SeqKey::Chain(b)) => {
                a.parent.cmp(&b.parent).then_with(|| a.idx.cmp(&b.idx))
            }
        }
    }
}
impl PartialOrd for SeqKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for SeqKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SeqKey {}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}

/// Opaque, totally ordered rank of the simulation event currently
/// executing on this thread. Ranks compare exactly as the sequential
/// engine would have executed the events, across shards and across
/// windows — instrumentation layers buffer order-sensitive effects
/// tagged with this rank and apply them rank-sorted to reproduce the
/// sequential effect order (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectRank(EventKey);

std::thread_local! {
    static CURRENT_RANK: std::cell::RefCell<Option<EffectRank>> =
        const { std::cell::RefCell::new(None) };
}

/// The rank of the simulation event currently executing on this thread,
/// or `None` outside parallel window execution (sequential runs, driver
/// code between runs). `None` means effects may be applied immediately:
/// the caller is already running in sequential order.
pub fn current_effect_rank() -> Option<EffectRank> {
    CURRENT_RANK.with(|r| r.borrow().clone())
}

fn set_effect_rank(rank: Option<EffectRank>) {
    CURRENT_RANK.with(|r| *r.borrow_mut() = rank);
}

/// An event owned by one shard during window execution.
struct LocalEvent<M> {
    key: EventKey,
    dst: AgentId,
    kind: EventKind<M>,
}

impl<M> Ord for LocalEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, earliest key pops first.
        other.key.cmp(&self.key)
    }
}
impl<M> PartialOrd for LocalEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> PartialEq for LocalEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for LocalEvent<M> {}

/// A cross-host send deferred to the window barrier. `(parent, idx)` is
/// the send's position in the sequential push order; `send_time` is the
/// simulated instant the sending callback ran.
pub(crate) struct SendRecord<M> {
    src: AgentId,
    dst: AgentId,
    msg: M,
    bytes: u32,
    send_time: SimTime,
    parent: EventKey,
    idx: u32,
}

/// Counter deltas a shard accumulates during one window; everything the
/// dispatch loop itself counts. Wire-level counters (messages, bytes,
/// drops, dups, spikes, partitions) are accounted at barrier replay.
#[derive(Default)]
struct ShardStats {
    events: u64,
    timers: u64,
    dropped_down: u64,
    deferred: u64,
    crashes: u64,
    restarts: u64,
}

impl ShardStats {
    fn merge_into(&self, stats: &mut NetStats) {
        stats.events += self.events;
        stats.timers += self.timers;
        stats.dropped_down += self.dropped_down;
        stats.deferred += self.deferred;
        stats.crashes += self.crashes;
        stats.restarts += self.restarts;
    }
}

/// Per-shard execution state for one window: the local event heap, the
/// deferred-send log, and the push bookkeeping [`Ctx`] needs. This is
/// what a shard-mode [`Ctx`] borrows.
pub(crate) struct ShardState<M> {
    now: SimTime,
    heap: BinaryHeap<LocalEvent<M>>,
    records: Vec<SendRecord<M>>,
    stats: ShardStats,
    /// Key of the event whose callback is currently running; parents
    /// every push the callback makes.
    cur_parent: EventKey,
    /// Push counter within the current callback — shared by local pushes
    /// and send records so the merge preserves their interleaving.
    cur_idx: u32,
    /// High-water mark of events/records held by this shard.
    max_queue: usize,
}

impl<M> ShardState<M> {
    fn new(batch: Vec<LocalEvent<M>>) -> Self {
        let max_queue = batch.len();
        ShardState {
            now: SimTime::ZERO,
            heap: BinaryHeap::from(batch),
            records: Vec::new(),
            stats: ShardStats::default(),
            // Placeholder; overwritten by `begin_dispatch` before any
            // callback can push.
            cur_parent: EventKey {
                time: SimTime::ZERO,
                seq: SeqKey::Base(0),
            },
            cur_idx: 0,
            max_queue,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    fn begin_dispatch(&mut self, key: &EventKey) {
        self.cur_parent = key.clone();
        self.cur_idx = 0;
    }

    fn next_idx(&mut self) -> u32 {
        let idx = self.cur_idx;
        self.cur_idx += 1;
        idx
    }

    fn track_peak(&mut self) {
        self.max_queue = self.max_queue.max(self.heap.len() + self.records.len());
    }

    /// Shard-mode [`Ctx::send`]: a self-send executes locally (it fires
    /// at the current instant, inside the window, and touches no RNG);
    /// anything else is a cross-host send and is deferred to the barrier
    /// so its fault draws happen in global order.
    pub(crate) fn send(&mut self, me: AgentId, dst: AgentId, msg: M, bytes: u32) {
        if dst == me {
            let idx = self.next_idx();
            let key = EventKey::child(&self.cur_parent, idx, self.now);
            self.heap.push(LocalEvent {
                key,
                dst,
                kind: EventKind::Deliver { from: me, msg },
            });
        } else {
            let idx = self.next_idx();
            self.records.push(SendRecord {
                src: me,
                dst,
                msg,
                bytes,
                send_time: self.now,
                parent: self.cur_parent.clone(),
                idx,
            });
        }
    }

    /// Shard-mode [`Ctx::schedule`]: timers are always self-addressed,
    /// so they stay local — executing in-window if they fire before the
    /// window end, merging back as leftovers otherwise.
    pub(crate) fn schedule(&mut self, me: AgentId, delay: SimDuration, tag: TimerTag) {
        let idx = self.next_idx();
        let key = EventKey::child(&self.cur_parent, idx, self.now + delay);
        self.heap.push(LocalEvent {
            key,
            dst: me,
            kind: EventKind::Timer { tag },
        });
    }
}

/// The per-agent state a shard owns for the length of one parallel
/// phase: disjoint `&mut` slices of the [`Sim`]'s agents, liveness
/// flags, and service-model busy horizons, covering a contiguous id
/// range starting at `base`. Workers hold their home across every
/// window of the phase — only event batches travel per window — and
/// the borrows dissolve when the phase's scope joins.
struct ShardHome<'a, A: Agent> {
    base: usize,
    agents: &'a mut [A],
    down: &'a mut [bool],
    busy_until: &'a mut [SimTime],
}

/// What a shard hands back at the window barrier.
struct ShardOutput<M> {
    /// Locally-pushed events that fire at or after the window end —
    /// always chain-keyed (every calendar-queue event inside the window
    /// is consumed by execution or deferral).
    leftovers: Vec<LocalEvent<M>>,
    records: Vec<SendRecord<M>>,
    stats: ShardStats,
    /// Fire time of the shard's last executed event ([`SimTime::ZERO`]
    /// if the batch was empty).
    now: SimTime,
    max_queue: usize,
}

/// Execute one shard's slice of a window: replicates the sequential
/// [`Sim::step`] loop — service deferral, crash/restart, down-host
/// discard, dispatch — over the shard-local heap, stopping at the first
/// event at or past `window_end`.
fn run_shard<A: Agent>(
    chunk: &mut ShardHome<'_, A>,
    batch: Vec<LocalEvent<A::Msg>>,
    window_end: SimTime,
    service: Option<SimDuration>,
    topo: &Topology,
) -> ShardOutput<A::Msg> {
    let mut sh = ShardState::new(batch);
    let base = chunk.base;
    loop {
        match sh.heap.peek() {
            Some(head) if head.key.time < window_end => {}
            _ => break,
        }
        let ev = match sh.heap.pop() {
            Some(ev) => ev,
            None => unreachable!("peeked a head event above"),
        };
        let local = ev.dst.0 - base;
        debug_assert!(ev.key.time >= sh.now, "shard heap went backwards");
        sh.now = ev.key.time;
        // Finite-capacity model, exactly as the sequential step: a
        // delivery to a busy host re-queues once as a `Serve` at the
        // reserved slot. The re-push takes the consumed delivery's
        // execution slot in the push order: parent = its key, index 0.
        if let Some(service) = service {
            if matches!(ev.kind, EventKind::Deliver { .. }) && !chunk.down[local] {
                let busy = chunk.busy_until[local];
                if busy > ev.key.time {
                    sh.stats.deferred += 1;
                    chunk.busy_until[local] = busy + service;
                    let LocalEvent { key, dst, kind } = ev;
                    let EventKind::Deliver { from, msg } = kind else {
                        unreachable!("matched Deliver above")
                    };
                    sh.heap.push(LocalEvent {
                        key: EventKey::child(&key, 0, busy),
                        dst,
                        kind: EventKind::Serve { from, msg },
                    });
                    sh.track_peak();
                    continue;
                }
                chunk.busy_until[local] = ev.key.time + service;
            }
        }
        sh.stats.events += 1;
        // Tag effects (telemetry through agent handles) with this
        // event's rank so instrumentation can restore global order.
        set_effect_rank(Some(EffectRank(ev.key.clone())));
        match ev.kind {
            EventKind::Crash => {
                chunk.down[local] = true;
                sh.stats.crashes += 1;
                chunk.agents[local].on_crash();
                continue;
            }
            EventKind::Restart => {
                chunk.down[local] = false;
                sh.stats.restarts += 1;
                sh.begin_dispatch(&ev.key);
                let ctx = &mut Ctx::shard(&mut sh, topo, ev.dst);
                chunk.agents[local].on_restart(ctx);
                sh.track_peak();
                continue;
            }
            _ => {}
        }
        if chunk.down[local] {
            if matches!(ev.kind, EventKind::Deliver { .. } | EventKind::Serve { .. }) {
                sh.stats.dropped_down += 1;
            }
            continue;
        }
        sh.begin_dispatch(&ev.key);
        let dst = ev.dst;
        match ev.kind {
            EventKind::Deliver { from, msg } | EventKind::Serve { from, msg } => {
                let ctx = &mut Ctx::shard(&mut sh, topo, dst);
                chunk.agents[local].on_message(ctx, from, msg);
            }
            EventKind::Timer { tag } => {
                let ctx = &mut Ctx::shard(&mut sh, topo, dst);
                chunk.agents[local].on_timer(ctx, tag);
                sh.stats.timers += 1;
            }
            EventKind::Crash | EventKind::Restart => unreachable!("handled above"),
        }
        sh.track_peak();
    }
    set_effect_rank(None);
    ShardOutput {
        leftovers: sh.heap.into_vec(),
        records: sh.records,
        stats: sh.stats,
        now: sh.now,
        max_queue: sh.max_queue,
    }
}

/// One deferred push awaiting barrier replay: either a shard-local
/// leftover event or a deferred cross-host send.
enum MergeItem<M> {
    Leftover(LocalEvent<M>),
    Send(SendRecord<M>),
}

impl<M> MergeItem<M> {
    /// Position of this push in the sequential engine's push order: the
    /// executing parent's rank, then the push index within its callback.
    /// Unique across every item of a window (one counter per callback),
    /// so the sort below is a total order.
    fn merge_key(&self) -> (&EventKey, u32) {
        match self {
            MergeItem::Leftover(ev) => match &ev.key.seq {
                SeqKey::Chain(node) => (&node.parent, node.idx),
                SeqKey::Base(_) => unreachable!(
                    "window leftovers are always chain-keyed: every \
                     calendar-queue event inside the window is consumed"
                ),
            },
            MergeItem::Send(r) => (&r.parent, r.idx),
        }
    }
}

/// One window's work order for a shard, shipped to the worker that
/// owns the shard's home for the current parallel phase.
struct Job<M> {
    batch: Vec<LocalEvent<M>>,
    window_end: SimTime,
}

/// Why a parallel phase handed control back to the phase loop.
enum PhaseExit {
    /// Queue empty or next event past the horizon: the run is over.
    Done,
    /// A streak of near-empty windows: resume sequential stepping.
    WentSparse,
}

/// After this many consecutive below-threshold windows, a parallel
/// phase folds back into the sequential loop. The hysteresis keeps a
/// brief lull inside a dense burst from thrashing worker spawn/join.
const PAR_EXIT_STREAK: usize = 8;

/// `SIMNET_PAR_DEBUG=1` run profile: the first thing to look at when a
/// parallel run fails to beat the sequential loop (dense windows are
/// where the speedup lives; sequential-stretch events cost nothing).
struct Profile {
    t0: std::time::Instant,
    seq_windows: u64,
    seq_events: u64,
    phases: u64,
    windows: u64,
    dense: u64,
    events: u64,
    dense_events: u64,
    merged: u64,
}

impl Profile {
    fn new() -> Profile {
        Profile {
            t0: std::time::Instant::now(),
            seq_windows: 0,
            seq_events: 0,
            phases: 0,
            windows: 0,
            dense: 0,
            events: 0,
            dense_events: 0,
            merged: 0,
        }
    }

    fn report(&self, w: u64, n_shards: usize) {
        eprintln!(
            "simnet par: seq {} windows / {} events; {} parallel phases: \
             {} windows ({} dense), {} events ({} in dense, {:.1}/window), \
             {} merged effects, w={w}ns shards={n_shards}, {:.0} ms",
            self.seq_windows,
            self.seq_events,
            self.phases,
            self.windows,
            self.dense,
            self.events,
            self.dense_events,
            self.events as f64 / self.windows.max(1) as f64,
            self.merged,
            self.t0.elapsed().as_secs_f64() * 1e3,
        );
    }
}

/// Window end for a window opening at `start`: `start + W`, clamped so
/// events at exactly `horizon` are still included (`run_until`
/// semantics; `run` passes [`SimTime::MAX`]).
fn window_end(start: SimTime, w: u64, horizon: SimTime) -> SimTime {
    SimTime(start.0.saturating_add(w).min(horizon.0.saturating_add(1)))
}

/// The parallel run loop: alternate **sequential stretches** (the real
/// sequential loop — zero window overhead — watching per-window event
/// density) with **parallel phases** (dense traffic fanned out to shard
/// workers). Both modes produce byte-identical results, so the switch
/// heuristic is free to chase wall clock only. Does not touch `now`
/// beyond the last executed event — the callers own the final horizon
/// clamp.
pub(crate) fn run_parallel<A>(sim: &mut Sim<A>, horizon: SimTime)
where
    A: Agent + Send,
    A::Msg: Clone + Send,
{
    let n = sim.agents.len();
    let threads = sim.threads();
    let w = sim.core.topo.min_one_way().0;
    debug_assert!(
        threads > 1 && n > 1 && w > 0,
        "checked by parallel_eligible"
    );
    let chunk_size = n.div_ceil(threads.min(n));
    let n_shards = n.div_ceil(chunk_size);
    // One shared density threshold: a window clearing it is worth
    // fanning out; a streak of windows below it is not.
    let dense_threshold = PAR_MIN_BATCH_PER_SHARD * n_shards;

    let mut profile = std::env::var_os("SIMNET_PAR_DEBUG")
        .is_some()
        .then(Profile::new);

    loop {
        // ---- Sequential stretch.
        let mut saw_dense = false;
        while let Some(start) = sim.core.queue.peek_time() {
            if start > horizon {
                break;
            }
            let wend = window_end(start, w, horizon);
            let mut count = 0usize;
            while let Some(t) = sim.core.queue.peek_time() {
                if t >= wend {
                    break;
                }
                sim.step();
                count += 1;
            }
            if let Some(p) = profile.as_mut() {
                p.seq_windows += 1;
                p.seq_events += count as u64;
            }
            if count >= dense_threshold {
                saw_dense = true;
                break;
            }
        }
        if !saw_dense {
            break;
        }
        // ---- Parallel phase, until the traffic thins out again.
        if let Some(p) = profile.as_mut() {
            p.phases += 1;
        }
        match parallel_phase(sim, horizon, w, chunk_size, n_shards, &mut profile) {
            PhaseExit::Done => break,
            PhaseExit::WentSparse => {}
        }
    }
    if let Some(p) = profile {
        p.report(w, n_shards);
    }
}

/// One parallel phase: spawn a scoped worker per shard (minus the
/// driver's own shard 0), hand each its disjoint `&mut` home into the
/// [`Sim`]'s agent storage, then drive windows — pop + route, fan out,
/// barrier-merge — until the run ends or [`PAR_EXIT_STREAK`] windows in
/// a row come in under `PAR_MIN_BATCH_PER_SHARD * n_shards` events.
fn parallel_phase<A>(
    sim: &mut Sim<A>,
    horizon: SimTime,
    w: u64,
    chunk_size: usize,
    n_shards: usize,
    profile: &mut Option<Profile>,
) -> PhaseExit
where
    A: Agent + Send,
    A::Msg: Clone + Send,
{
    let dense_threshold = PAR_MIN_BATCH_PER_SHARD * n_shards;
    let mut par_peak = sim.par_peak;
    let agents = sim.agents.as_mut_slice();
    // Disjoint field borrows: workers hold `&Topology` and their homes
    // for the whole scope while the barrier mutates the queue, stats,
    // and fault RNGs.
    let Core {
        now,
        queue,
        topo,
        stats,
        faults,
        drop_rng,
        dup_rng,
        spike_rng,
        service,
        down,
        busy_until,
        ..
    } = &mut sim.core;
    let topo: &Topology = topo;
    let faults: &FaultPlane = faults;
    let service: Option<SimDuration> = *service;

    // Split the per-agent state into one home per shard.
    let mut homes = agents
        .chunks_mut(chunk_size)
        .zip(down.chunks_mut(chunk_size))
        .zip(busy_until.chunks_mut(chunk_size))
        .enumerate()
        .map(|(s, ((agents, down), busy_until))| ShardHome {
            base: s * chunk_size,
            agents,
            down,
            busy_until,
        });

    let exit = std::thread::scope(|scope| {
        let (result_tx, result_rx) = mpsc::channel::<ShardOutput<A::Msg>>();
        let mut home0 = match homes.next() {
            Some(h) => h,
            None => unreachable!("n_shards >= 1 homes by construction"),
        };
        let workers: Vec<mpsc::Sender<Job<A::Msg>>> = (1..n_shards)
            .zip(homes)
            .map(|(_, mut home)| {
                let (job_tx, job_rx) = mpsc::channel::<Job<A::Msg>>();
                let worker_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(Job { batch, window_end }) = job_rx.recv() {
                        let out = run_shard(&mut home, batch, window_end, service, topo);
                        if worker_tx.send(out).is_err() {
                            // Driver gone (panic unwinding); stop.
                            break;
                        }
                    }
                });
                job_tx
            })
            .collect();

        // Per-shard routing buffers, reused across windows.
        let mut batches: Vec<Vec<LocalEvent<A::Msg>>> = (0..n_shards).map(|_| Vec::new()).collect();
        let mut sparse_streak = 0usize;
        let exit = loop {
            let Some(start) = queue.peek_time() else {
                break PhaseExit::Done;
            };
            if start > horizon {
                break PhaseExit::Done;
            }
            let wend = window_end(start, w, horizon);

            // Pop the window's batch, routed to each shard's buffer.
            let mut batch_len = 0usize;
            while let Some(t) = queue.peek_time() {
                if t >= wend {
                    break;
                }
                let Some(ev) = queue.pop() else {
                    unreachable!("peeked a time above")
                };
                batches[ev.dst.0 / chunk_size].push(LocalEvent {
                    key: EventKey {
                        time: ev.time,
                        seq: SeqKey::Base(ev.seq),
                    },
                    dst: ev.dst,
                    kind: ev.kind,
                });
                batch_len += 1;
            }
            debug_assert!(batch_len > 0, "peek_time promised an event in-window");
            let dense = batch_len >= dense_threshold;
            sparse_streak = if dense { 0 } else { sparse_streak + 1 };
            if let Some(p) = profile.as_mut() {
                p.windows += 1;
                p.events += batch_len as u64;
                if dense {
                    p.dense += 1;
                    p.dense_events += batch_len as u64;
                }
            }

            // Fan out: shards 1.. to their workers, shard 0 inline.
            let mut in_flight = 0usize;
            for (s, batch) in batches.iter_mut().enumerate().skip(1) {
                if batch.is_empty() {
                    continue;
                }
                let job = Job {
                    batch: std::mem::take(batch),
                    window_end: wend,
                };
                if workers[s - 1].send(job).is_err() {
                    panic!("parallel worker {s} exited before the run finished");
                }
                in_flight += 1;
            }
            let mut outputs: Vec<ShardOutput<A::Msg>> = Vec::with_capacity(in_flight + 1);
            if !batches[0].is_empty() {
                let batch = std::mem::take(&mut batches[0]);
                outputs.push(run_shard(&mut home0, batch, wend, service, topo));
            }
            for _ in 0..in_flight {
                let Ok(out) = result_rx.recv() else {
                    panic!("parallel worker died mid-window");
                };
                outputs.push(out);
            }

            // ---- Window barrier: merge every deferred push back into
            // the global queue in the sequential engine's push order.
            let mut items: Vec<MergeItem<A::Msg>> = Vec::new();
            let mut shard_queued = 0usize;
            for out in outputs {
                *now = (*now).max(out.now);
                out.stats.merge_into(stats);
                shard_queued += out.max_queue;
                items.extend(out.leftovers.into_iter().map(MergeItem::Leftover));
                items.extend(out.records.into_iter().map(MergeItem::Send));
            }
            // High-water mark including the populations shards held.
            par_peak = par_peak.max(queue.len() + shard_queued);
            if let Some(p) = profile.as_mut() {
                p.merged += items.len() as u64;
            }
            items.sort_unstable_by(|a, b| a.merge_key().cmp(&b.merge_key()));
            for item in items {
                match item {
                    MergeItem::Leftover(ev) => {
                        debug_assert!(ev.key.time >= wend, "leftover inside window");
                        queue.push(ev.key.time, ev.dst, ev.kind);
                    }
                    MergeItem::Send(r) => {
                        debug_assert!(
                            r.send_time.0.saturating_add(w) >= wend.0,
                            "window-safety violation: send could arrive in-window"
                        );
                        deliver_cross(
                            queue,
                            stats,
                            faults,
                            drop_rng,
                            spike_rng,
                            dup_rng,
                            topo,
                            r.send_time,
                            r.src,
                            r.dst,
                            r.msg,
                            r.bytes,
                        );
                    }
                }
            }

            if sparse_streak >= PAR_EXIT_STREAK {
                break PhaseExit::WentSparse;
            }
        };
        // Dropping the job senders ends the workers; the scope joins
        // them, dissolving every borrowed home.
        drop(workers);
        drop(result_tx);
        exit
    });
    sim.par_peak = par_peak;
    exit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(time: u64, seq: u64) -> EventKey {
        EventKey {
            time: SimTime(time),
            seq: SeqKey::Base(seq),
        }
    }

    #[test]
    fn base_keys_order_like_the_calendar_queue() {
        assert!(base(5, 0) < base(6, 0));
        assert!(base(5, 0) < base(5, 1));
        assert_eq!(base(5, 3), base(5, 3));
    }

    #[test]
    fn pre_window_events_precede_in_window_pushes_at_equal_time() {
        let parent = base(5, 9);
        let child = EventKey::child(&parent, 0, SimTime(5));
        // Same fire time: the pre-window (integer-seq) event wins, as the
        // sequential engine's push-time counter would have ordered them.
        assert!(base(5, 123_456) < child);
        assert!(child > base(5, 0));
        // At a later time the chain key wins regardless of rank kind.
        assert!(child < base(6, 0));
    }

    #[test]
    fn chain_keys_order_lexicographically_by_parent_then_index() {
        let p1 = base(5, 1);
        let p2 = base(5, 2);
        let a = EventKey::child(&p1, 0, SimTime(5));
        let b = EventKey::child(&p1, 1, SimTime(5));
        let c = EventKey::child(&p2, 0, SimTime(5));
        assert!(a < b, "same parent: push order decides");
        assert!(b < c, "earlier parent precedes later parent");
        // Grandchildren: a's children order before b's children.
        let aa = EventKey::child(&a, 7, SimTime(5));
        let ba = EventKey::child(&b, 0, SimTime(5));
        assert!(aa < ba);
        assert!(aa > a, "a child at the same time follows its parent");
    }

    #[test]
    fn effect_rank_is_scoped_to_window_execution() {
        assert!(current_effect_rank().is_none());
        set_effect_rank(Some(EffectRank(base(1, 0))));
        let r1 = current_effect_rank().expect("rank set");
        set_effect_rank(Some(EffectRank(base(2, 0))));
        let r2 = current_effect_rank().expect("rank set");
        assert!(r1 < r2);
        set_effect_rank(None);
        assert!(current_effect_rank().is_none());
    }
}
