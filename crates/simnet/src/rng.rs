//! Seeded, forkable randomness for reproducible simulations.
//!
//! Every stochastic decision in an experiment flows from one root seed.
//! [`SimRng`] wraps a [`rand::rngs::StdRng`] seeded through a SplitMix64
//! expansion (the recommended way to turn a small seed into full-width
//! generator state), and supports deterministic *forking*: independent
//! streams derived from the same root seed so that, e.g., topology
//! generation and query scheduling do not perturb each other when one of
//! them changes how many samples it draws.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// This is the standard constant set from Steele et al.'s SplitMix64,
/// used here only for seed expansion, never as the simulation generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random generator for simulations.
///
/// Implements [`rand::RngCore`], so it can be used with any `rand`
/// distribution or sampling adapter.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        }
        SimRng {
            inner: StdRng::from_seed(key),
            seed,
        }
    }

    /// The root seed this generator (or its ancestor) was created from.
    pub fn root_seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream identified by `stream`.
    ///
    /// Forks with distinct stream ids from the same parent are
    /// statistically independent and stable: adding draws to one stream
    /// never changes another. The fork depends only on the *root seed* and
    /// the stream id, not on how much the parent has already been used.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix seed and stream through two SplitMix64 rounds so that
        // (seed, stream) pairs with small hamming distance diverge.
        let mut s = self.seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream | 1);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        SimRng::new(a ^ b.rotate_left(17) ^ stream)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)` for slice indexing.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Sample from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse-CDF; 1 - f64() is in (0, 1] so ln never sees zero.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose `k` distinct indices out of `n` (reservoir sampling, output
    /// in ascending order of selection position for determinism).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let parent1 = SimRng::new(42);
        let mut parent2 = SimRng::new(42);
        // Burn some draws on parent2; forks must still match.
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn distinct_streams_diverge() {
        let root = SimRng::new(42);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let same = (0..100).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = SimRng::new(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(3);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exponential(150.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 150.0).abs() < 3.0, "mean was {mean}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::new(4);
        let picks = r.sample_indices(100, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 paper's test vector seed 0.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }
}
