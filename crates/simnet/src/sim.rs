//! The simulation driver: agents, contexts, and the event loop.

use crate::event::{EventKind, EventQueue, TimerTag};
use crate::fault::FaultPlane;
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Identifies one simulated host/agent. Agent ids index both the agent
/// vector and the latency matrix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AgentId(pub usize);

/// A simulated protocol participant.
///
/// All state lives inside the agent; all interaction with the outside
/// world goes through the [`Ctx`] passed to each callback. Callbacks run
/// one at a time (the simulator is single-threaded and deterministic).
pub trait Agent {
    /// The message type exchanged between agents of this simulation.
    type Msg;

    /// Called once, at time zero, before any message is delivered.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Called when a message addressed to this agent arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: AgentId, msg: Self::Msg);

    /// Called when a timer scheduled by this agent fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _tag: TimerTag) {}

    /// Called when a scheduled crash takes this host down. The agent
    /// keeps its state (a restart is a reboot, not a wipe) but all of
    /// its pending timers are discarded; use this hook to drop whatever
    /// bookkeeping assumed those timers would fire.
    fn on_crash(&mut self) {}

    /// Called when a crashed host comes back up; the agent may re-arm
    /// timers or re-announce itself here.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// Everything except the agents themselves: clock, queue, network model.
pub(crate) struct Core<M> {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<M>,
    pub(crate) topo: Topology,
    pub(crate) rng: SimRng,
    pub(crate) stats: NetStats,
    /// Fault-injection configuration (default: strict no-op).
    pub(crate) faults: FaultPlane,
    /// Independent RNG streams, one per fault kind, so enabling one
    /// fault never perturbs the draw sequence of another.
    pub(crate) drop_rng: SimRng,
    pub(crate) dup_rng: SimRng,
    pub(crate) spike_rng: SimRng,
    /// Liveness per agent; down hosts silently discard messages and
    /// timers until their scheduled restart.
    pub(crate) down: Vec<bool>,
    /// Opt-in per-node service model: when set, an agent occupies its
    /// (single) CPU for this long per delivered message, and deliveries
    /// arriving while it is busy queue behind it. `None` (the default)
    /// is the historical infinite-capacity model — no behavior change,
    /// no extra RNG draws, goldens untouched.
    pub(crate) service: Option<SimDuration>,
    /// Per-agent busy horizon under the service model.
    pub(crate) busy_until: Vec<SimTime>,
}

/// The full cross-host delivery path with every fault draw, shared —
/// draw for draw, push for push — by the sequential [`Ctx::send`] and
/// the parallel barrier replay (which replays deferred sends through
/// this exact function, in the exact order the sequential loop would
/// have reached it, against the same single RNG streams). `at` is the
/// simulated instant the message was sent; `src != dst`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver_cross<M: Clone>(
    queue: &mut EventQueue<M>,
    stats: &mut NetStats,
    faults: &FaultPlane,
    drop_rng: &mut SimRng,
    spike_rng: &mut SimRng,
    dup_rng: &mut SimRng,
    topo: &Topology,
    at: SimTime,
    src: AgentId,
    dst: AgentId,
    msg: M,
    bytes: u32,
) {
    debug_assert_ne!(src, dst, "self-sends never touch the wire");
    stats.on_send(bytes);
    if faults.drop_rate > 0.0 && drop_rng.f64() < faults.drop_rate {
        // Lost on the wire: it consumed bandwidth but never
        // arrives. Loss applies only to cross-host traffic.
        stats.dropped += 1;
        return;
    }
    if faults.partitioned(at, src.0, dst.0) {
        stats.partitioned += 1;
        return;
    }
    let mut delay = topo.one_way(src.0, dst.0);
    if faults.spike_rate > 0.0 && spike_rng.f64() < faults.spike_rate {
        delay = SimDuration(((delay.0 as f64) * faults.spike_factor).round() as u64);
        stats.spiked += 1;
    }
    if faults.dup_rate > 0.0 && dup_rng.f64() < faults.dup_rate {
        // The duplicate trails the original by one extra
        // propagation delay, as if retransmitted by the network.
        // Invariant: this is the only place delivery clones the
        // message — fan-out is 2 here (duplicate + original), and
        // every other path below moves `msg` into the queue. Keep
        // it that way: `Clone` on a `SearchMsg` copies the whole
        // entry/result payload, and the common path must stay
        // zero-copy (`send_is_zero_copy_without_dup_faults`).
        stats.duplicated += 1;
        queue.push(
            at + delay + delay,
            dst,
            EventKind::Deliver {
                from: src,
                msg: msg.clone(),
            },
        );
    }
    queue.push(at + delay, dst, EventKind::Deliver { from: src, msg });
}

impl<M> Core<M> {
    /// Method form of [`deliver_cross`] for the sequential path, where
    /// no other borrow of `Core` is outstanding.
    pub(crate) fn deliver_cross(
        &mut self,
        at: SimTime,
        src: AgentId,
        dst: AgentId,
        msg: M,
        bytes: u32,
    ) where
        M: Clone,
    {
        deliver_cross(
            &mut self.queue,
            &mut self.stats,
            &self.faults,
            &mut self.drop_rng,
            &mut self.spike_rng,
            &mut self.dup_rng,
            &self.topo,
            at,
            src,
            dst,
            msg,
            bytes,
        );
    }
}

/// Which engine a [`Ctx`] is wired to: the sequential core, or one
/// shard of a parallel time window (where cross-host sends are deferred
/// to the window barrier so fault RNG draws stay globally ordered).
pub(crate) enum CtxBack<'a, M> {
    Seq(&'a mut Core<M>),
    Shard {
        sh: &'a mut crate::par::ShardState<M>,
        topo: &'a Topology,
    },
}

/// The capability handle given to agent callbacks.
pub struct Ctx<'a, M> {
    back: CtxBack<'a, M>,
    me: AgentId,
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn seq(core: &'a mut Core<M>, me: AgentId) -> Self {
        Ctx {
            back: CtxBack::Seq(core),
            me,
        }
    }

    pub(crate) fn shard(
        sh: &'a mut crate::par::ShardState<M>,
        topo: &'a Topology,
        me: AgentId,
    ) -> Self {
        Ctx {
            back: CtxBack::Shard { sh, topo },
            me,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.back {
            CtxBack::Seq(core) => core.now,
            CtxBack::Shard { sh, .. } => sh.now(),
        }
    }

    /// The id of the agent this callback is running on.
    pub fn me(&self) -> AgentId {
        self.me
    }

    /// Total number of agents in the simulation.
    pub fn n_agents(&self) -> usize {
        match &self.back {
            CtxBack::Seq(core) => core.topo.len(),
            CtxBack::Shard { topo, .. } => topo.len(),
        }
    }

    /// Send `msg` to `dst`; it arrives after the one-way propagation delay
    /// between the two hosts. `bytes` is the modelled wire size and feeds
    /// the bandwidth accounting. A message to oneself is delivered with
    /// zero delay, does not count as network traffic, and is exempt from
    /// every fault (it never touches the wire).
    pub fn send(&mut self, dst: AgentId, msg: M, bytes: u32)
    where
        M: Clone,
    {
        let me = self.me;
        match &mut self.back {
            CtxBack::Seq(core) => {
                if dst == me {
                    let at = core.now;
                    core.queue
                        .push(at, dst, EventKind::Deliver { from: me, msg });
                } else {
                    let at = core.now;
                    core.deliver_cross(at, me, dst, msg, bytes);
                }
            }
            CtxBack::Shard { sh, .. } => sh.send(me, dst, msg, bytes),
        }
    }

    /// Round-trip time between this agent and `other`.
    pub fn rtt_to(&self, other: AgentId) -> SimDuration {
        match &self.back {
            CtxBack::Seq(core) => core.topo.rtt(self.me.0, other.0),
            CtxBack::Shard { topo, .. } => topo.rtt(self.me.0, other.0),
        }
    }

    /// Schedule a timer for this agent to fire after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, tag: TimerTag) {
        let me = self.me;
        match &mut self.back {
            CtxBack::Seq(core) => {
                let at = core.now + delay;
                core.queue.push(at, me, EventKind::Timer { tag });
            }
            CtxBack::Shard { sh, .. } => sh.schedule(me, delay, tag),
        }
    }

    /// Deterministic randomness scoped to the simulation.
    ///
    /// # Panics
    ///
    /// Unavailable during parallel window execution ([`Sim::set_threads`]
    /// above 1): the shared stream would make draw order depend on the
    /// thread interleaving. Agents that need randomness at message time
    /// should fork a per-agent [`SimRng`] at construction instead.
    pub fn rng(&mut self) -> &mut SimRng {
        match &mut self.back {
            CtxBack::Seq(core) => &mut core.rng,
            CtxBack::Shard { .. } => panic!(
                "ctx.rng() is unavailable during parallel window execution; \
                 fork a per-agent SimRng at agent construction instead"
            ),
        }
    }
}

/// A complete simulation: a topology, a population of agents, and an event
/// queue. See the crate docs for a usage example.
pub struct Sim<A: Agent> {
    pub(crate) core: Core<A::Msg>,
    pub(crate) agents: Vec<A>,
    started: bool,
    /// Worker threads for conservative time-window parallel execution;
    /// 1 (the default) is the historical sequential loop.
    threads: usize,
    /// Take the windowed path even on a single-core host (see
    /// [`Sim::force_parallel`]).
    par_force: bool,
    /// High-water mark of in-flight events observed at parallel window
    /// barriers (global queue + per-shard queues); 0 when the run never
    /// went parallel.
    pub(crate) par_peak: usize,
}

impl<A: Agent> Sim<A> {
    /// Build a simulation. `agents.len()` must equal `topo.len()`.
    pub fn new(topo: Topology, agents: Vec<A>, seed: u64) -> Self {
        assert_eq!(
            topo.len(),
            agents.len(),
            "one agent per topology host required"
        );
        let n = agents.len();
        Sim {
            core: Core {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                topo,
                rng: SimRng::new(seed).fork(0x51B0),
                stats: NetStats::default(),
                faults: FaultPlane::default(),
                drop_rng: SimRng::new(seed).fork(0x1055),
                dup_rng: SimRng::new(seed).fork(0xD0B1),
                spike_rng: SimRng::new(seed).fork(0x5B1C),
                down: vec![false; n],
                service: None,
                busy_until: vec![SimTime::ZERO; n],
            },
            agents,
            started: false,
            threads: 1,
            par_force: false,
            par_peak: 0,
        }
    }

    /// Execute with `threads` worker threads using conservative
    /// time-window parallelism (see the [`crate::par`] module docs). The
    /// default of 1 is the historical sequential loop. Any setting
    /// produces **bit-identical results** — agent states, counters,
    /// delivery order, final clock — because windows are bounded by the
    /// topology's minimum one-way delay and every cross-shard effect is
    /// merged back in the sequential engine's exact order. Topologies
    /// without a positive latency floor (zero-RTT pairs) and single-agent
    /// simulations always run sequentially regardless of this setting.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "at least one execution thread required");
        self.threads = threads;
    }

    /// The configured worker-thread count (default 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run the windowed parallel engine even where it cannot win —
    /// hosts reporting a single available core, where fanning out only
    /// adds context switches and [`Sim::set_threads`] therefore degrades
    /// to the sequential loop. Results are byte-identical either way;
    /// this knob exists so equivalence tests and engine benchmarks
    /// exercise the shard/merge machinery regardless of the machine
    /// they happen to run on.
    pub fn force_parallel(&mut self, on: bool) {
        self.par_force = on;
    }

    /// Whether `run`/`run_until` will take the parallel windowed path.
    fn parallel_eligible(&self) -> bool {
        self.threads > 1
            && self.agents.len() > 1
            && self.core.topo.min_one_way().0 > 0
            && (self.par_force || std::thread::available_parallelism().map_or(1, |c| c.get()) > 1)
    }

    /// Give every host a finite processing capacity: each delivered
    /// message occupies the destination for `per_message` of simulated
    /// time, and messages arriving while it is busy are deferred until
    /// it frees up (FIFO by arrival order). This is what makes sustained
    /// load saturate — without it every node is an infinite server and
    /// no offered rate can violate a latency SLO. `None` restores the
    /// default infinite-capacity model. Timers and crash/restart events
    /// are not subject to service time.
    pub fn set_service_time(&mut self, per_message: Option<SimDuration>) {
        self.core.service = per_message.filter(|d| d.0 > 0);
    }

    /// Drop each cross-host message independently with probability
    /// `rate` (0.0 = reliable network, the default). Deterministic in
    /// the simulation seed. Shorthand for configuring only the drop
    /// fault of [`Sim::set_faults`].
    pub fn set_loss_rate(&mut self, rate: f64) {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0, 1)");
        self.core.faults.drop_rate = rate;
    }

    /// Install a fault-injection configuration. Each fault kind draws
    /// from its own RNG stream forked off the simulation seed, so runs
    /// are reproducible and enabling one fault does not perturb the
    /// draw sequence of the others.
    pub fn set_faults(&mut self, faults: FaultPlane) {
        faults.validate();
        self.core.faults = faults;
    }

    /// The active fault configuration.
    pub fn faults(&self) -> &FaultPlane {
        &self.core.faults
    }

    /// Schedule `who` to crash at absolute time `at`. While down the
    /// host discards every message and timer addressed to it; its agent
    /// state survives (a crash models a reboot, not a disk wipe).
    pub fn schedule_crash(&mut self, at: SimTime, who: AgentId) {
        assert!(at >= self.core.now, "cannot schedule a crash in the past");
        self.core.queue.push(at, who, EventKind::Crash);
    }

    /// Schedule `who` to come back up at absolute time `at`.
    pub fn schedule_restart(&mut self, at: SimTime, who: AgentId) {
        assert!(at >= self.core.now, "cannot schedule a restart in the past");
        self.core.queue.push(at, who, EventKind::Restart);
    }

    /// Is `who` currently crashed?
    pub fn is_down(&self, who: AgentId) -> bool {
        self.core.down[who.0]
    }

    /// Inject an external message for `dst`, delivered at absolute time
    /// `at` (which must not be in the simulation's past). The `from` field
    /// seen by the agent is its own id. Use this to feed workload events
    /// (queries, joins) into the simulation.
    pub fn inject(&mut self, at: SimTime, dst: AgentId, msg: A::Msg) {
        assert!(at >= self.core.now, "cannot inject into the past");
        self.core
            .queue
            .push(at, dst, EventKind::Deliver { from: dst, msg });
    }

    /// Run `on_start` for every agent (in id order) at the current time.
    /// Called automatically by [`Sim::run`] if it hasn't happened yet.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.agents.len() {
            let ctx = &mut Ctx::seq(&mut self.core, AgentId(i));
            self.agents[i].on_start(ctx);
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.core.now, "event queue went backwards");
        self.core.now = ev.time;
        // Finite-capacity model: a delivery to a still-busy host is
        // requeued once as a `Serve` event at the next free slot, and
        // the slot is reserved immediately (busy_until advances at
        // defer time). Deferred deliveries therefore line up FIFO by
        // the order their deferrals popped, and each waits in the heap
        // exactly once — O(1) per message regardless of backlog depth,
        // where re-deferring to the current busy horizon would re-heap
        // the whole backlog every slot.
        if let Some(service) = self.core.service {
            if matches!(ev.kind, EventKind::Deliver { .. }) && !self.core.down[ev.dst.0] {
                let busy = self.core.busy_until[ev.dst.0];
                if busy > ev.time {
                    self.core.stats.deferred += 1;
                    self.core.busy_until[ev.dst.0] = busy + service;
                    let EventKind::Deliver { from, msg } = ev.kind else {
                        unreachable!("matched Deliver above")
                    };
                    self.core
                        .queue
                        .push(busy, ev.dst, EventKind::Serve { from, msg });
                    return true;
                }
                self.core.busy_until[ev.dst.0] = ev.time + service;
            }
            // A Serve event's slot was reserved when it was deferred;
            // it runs unconditionally.
        }
        self.core.stats.events += 1;
        let dst = ev.dst;
        match ev.kind {
            EventKind::Crash => {
                self.core.down[dst.0] = true;
                self.core.stats.crashes += 1;
                self.agents[dst.0].on_crash();
                return true;
            }
            EventKind::Restart => {
                self.core.down[dst.0] = false;
                self.core.stats.restarts += 1;
                let ctx = &mut Ctx::seq(&mut self.core, dst);
                self.agents[dst.0].on_restart(ctx);
                return true;
            }
            _ => {}
        }
        if self.core.down[dst.0] {
            // A down host discards everything addressed to it. Timers
            // vanish for good; crashed agents re-arm via `on_restart`.
            if matches!(ev.kind, EventKind::Deliver { .. } | EventKind::Serve { .. }) {
                self.core.stats.dropped_down += 1;
            }
            return true;
        }
        let ctx = &mut Ctx::seq(&mut self.core, dst);
        match ev.kind {
            EventKind::Deliver { from, msg } | EventKind::Serve { from, msg } => {
                self.agents[dst.0].on_message(ctx, from, msg)
            }
            EventKind::Timer { tag } => {
                self.agents[dst.0].on_timer(ctx, tag);
                self.core.stats.timers += 1;
            }
            EventKind::Crash | EventKind::Restart => unreachable!("handled above"),
        }
        true
    }

    /// Run until the event queue drains.
    pub fn run(&mut self)
    where
        A: Send,
        A::Msg: Clone + Send,
    {
        self.start();
        if self.parallel_eligible() {
            crate::par::run_parallel(self, SimTime::MAX);
            return;
        }
        while self.step() {}
    }

    /// Run until the queue drains or the next event would fire after
    /// `horizon`; events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: SimTime)
    where
        A: Send,
        A::Msg: Clone + Send,
    {
        self.start();
        if self.parallel_eligible() {
            crate::par::run_parallel(self, horizon);
        } else {
            while let Some(t) = self.core.queue.peek_time() {
                if t > horizon {
                    break;
                }
                self.step();
            }
        }
        if self.core.now < horizon {
            self.core.now = horizon;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Aggregate network counters.
    pub fn stats(&self) -> NetStats {
        let mut stats = self.core.stats;
        // Under parallel execution part of the in-flight population lives
        // in per-shard queues; the high-water mark is the larger of the
        // global queue's own peak and the barrier-sampled global total.
        stats.peak_queue = self.core.queue.peak_len().max(self.par_peak) as u64;
        stats
    }

    /// The latency model.
    pub fn topology(&self) -> &Topology {
        &self.core.topo
    }

    /// Immutable access to one agent.
    pub fn agent(&self, id: AgentId) -> &A {
        &self.agents[id.0]
    }

    /// Mutable access to one agent (for setup between phases; do not
    /// mutate agents while events that concern them are in flight unless
    /// the protocol tolerates it).
    pub fn agent_mut(&mut self, id: AgentId) -> &mut A {
        &mut self.agents[id.0]
    }

    /// Iterate over all agents.
    pub fn agents(&self) -> impl Iterator<Item = &A> {
        self.agents.iter()
    }

    /// Split borrow: the latency model together with mutable access to
    /// every agent. For between-phase maintenance (e.g. load migration)
    /// that must read the topology while rewriting agent state.
    pub fn topology_and_agents_mut(&mut self) -> (&Topology, &mut [A]) {
        (&self.core.topo, &mut self.agents)
    }

    /// Consume the simulation and return its agents.
    pub fn into_agents(self) -> Vec<A> {
        self.agents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: replies to every Ping with a Pong; the client records
    /// arrival times.
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum PingMsg {
        Ping,
        Pong,
    }

    struct PingAgent {
        peer: Option<AgentId>,
        pongs: Vec<SimTime>,
        started: bool,
    }

    impl Agent for PingAgent {
        type Msg = PingMsg;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, PingMsg>) {
            self.started = true;
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, PingMsg>, from: AgentId, msg: PingMsg) {
            match msg {
                PingMsg::Ping => ctx.send(from, PingMsg::Pong, 20),
                PingMsg::Pong => self.pongs.push(ctx.now()),
            }
            self.peer = Some(from);
        }
    }

    fn two_agents() -> Sim<PingAgent> {
        let topo = Topology::uniform(2, SimTime::from_millis(80));
        let agents = (0..2)
            .map(|_| PingAgent {
                peer: None,
                pongs: vec![],
                started: false,
            })
            .collect();
        Sim::new(topo, agents, 1)
    }

    #[test]
    fn ping_pong_latency() {
        let mut sim = two_agents();
        // Client (agent 0) pings the server (agent 1) at t=0 via inject +
        // immediate forward.
        sim.inject(SimTime::ZERO, AgentId(1), PingMsg::Ping);
        sim.run();
        // inject is a self-delivery at t=0; the Pong takes one one-way hop
        // of 40ms back to... wait, inject delivers Ping *to agent 1 from
        // itself*, so the pong goes 1 -> 1 with zero delay.
        assert_eq!(sim.agent(AgentId(1)).pongs, vec![SimTime::ZERO]);
    }

    #[test]
    fn cross_host_latency_is_one_way() {
        let mut sim = two_agents();
        sim.inject(SimTime::ZERO, AgentId(0), PingMsg::Ping);
        // Agent 0 receives Ping (from itself) and replies Pong to itself —
        // that's the degenerate case above. Instead drive a real exchange:
        sim.run();
        let mut sim = two_agents();
        sim.start();
        // Send a ping from 0 to 1 by injecting Ping at agent 1 with a fake
        // sender is not possible through inject; use a bootstrap message.
        struct Boot;
        let _ = Boot;
        // Simplest: agent 0 sends the ping from on_message of an injected
        // Ping. Already covered; here verify timing of a 0->1->0 exchange.
        sim.inject(SimTime::ZERO, AgentId(0), PingMsg::Ping);
        sim.run();
        // 0 ponged itself at t=0, so its own pong list has one entry at 0.
        assert_eq!(sim.agent(AgentId(0)).pongs, vec![SimTime::ZERO]);
    }

    #[test]
    fn on_start_runs_for_all() {
        let mut sim = two_agents();
        sim.run();
        assert!(sim.agent(AgentId(0)).started);
        assert!(sim.agent(AgentId(1)).started);
    }

    #[test]
    fn stats_exclude_self_sends() {
        let mut sim = two_agents();
        sim.inject(SimTime::ZERO, AgentId(0), PingMsg::Ping);
        sim.run();
        // The injected Ping is a self-delivery, and the resulting Pong is
        // also to self: zero network messages.
        assert_eq!(sim.stats().messages, 0);
        assert_eq!(sim.stats().bytes, 0);
    }

    /// A sink that records when each delivery was processed.
    struct Sink {
        processed_at: Vec<(u8, SimTime)>,
    }
    impl Agent for Sink {
        type Msg = u8;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: AgentId, msg: u8) {
            self.processed_at.push((msg, ctx.now()));
        }
    }

    /// Under the per-node service model, simultaneous deliveries to one
    /// host serialize FIFO, each occupying one service period; without
    /// it they all process at their arrival instant.
    #[test]
    fn service_model_serializes_deliveries_fifo() {
        let mk = || {
            Sim::new(
                Topology::uniform(1, SimTime::from_millis(10)),
                vec![Sink {
                    processed_at: vec![],
                }],
                1,
            )
        };
        // Baseline: infinite capacity, all three process at t=0.
        let mut sim = mk();
        for m in 0..3u8 {
            sim.inject(SimTime::ZERO, AgentId(0), m);
        }
        sim.run();
        assert!(sim
            .agent(AgentId(0))
            .processed_at
            .iter()
            .all(|&(_, t)| t == SimTime::ZERO));
        assert_eq!(sim.stats().deferred, 0);

        // Service model on: 5 ms per message, arrivals at t=0 process at
        // 0 / 5 / 10 ms in injection (FIFO) order.
        let mut sim = mk();
        sim.set_service_time(Some(SimDuration::from_millis(5)));
        for m in 0..3u8 {
            sim.inject(SimTime::ZERO, AgentId(0), m);
        }
        sim.run();
        let got = &sim.agent(AgentId(0)).processed_at;
        assert_eq!(
            got,
            &vec![
                (0, SimTime::ZERO),
                (1, SimTime::from_millis(5)),
                (2, SimTime::from_millis(10)),
            ]
        );
        assert!(
            sim.stats().deferred >= 2,
            "deferred {}",
            sim.stats().deferred
        );

        // A delivery after the busy horizon is not deferred.
        let mut sim = mk();
        sim.set_service_time(Some(SimDuration::from_millis(5)));
        sim.inject(SimTime::ZERO, AgentId(0), 0);
        sim.inject(SimTime::from_millis(50), AgentId(0), 1);
        sim.run();
        assert_eq!(sim.stats().deferred, 0);
        assert_eq!(
            sim.agent(AgentId(0)).processed_at[1],
            (1, SimTime::from_millis(50))
        );
    }

    /// A relay chain exercising real network hops and byte accounting.
    struct Relay {
        next: Option<AgentId>,
        got_at: Option<SimTime>,
    }
    impl Agent for Relay {
        type Msg = u8;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: AgentId, msg: u8) {
            self.got_at = Some(ctx.now());
            if let Some(next) = self.next {
                ctx.send(next, msg, 100);
            }
        }
    }

    #[test]
    fn relay_chain_timing_and_bytes() {
        let topo = Topology::uniform(3, SimTime::from_millis(60));
        let agents = vec![
            Relay {
                next: Some(AgentId(1)),
                got_at: None,
            },
            Relay {
                next: Some(AgentId(2)),
                got_at: None,
            },
            Relay {
                next: None,
                got_at: None,
            },
        ];
        let mut sim = Sim::new(topo, agents, 9);
        sim.inject(SimTime::ZERO, AgentId(0), 7);
        sim.run();
        assert_eq!(sim.agent(AgentId(0)).got_at, Some(SimTime::ZERO));
        assert_eq!(sim.agent(AgentId(1)).got_at, Some(SimTime::from_millis(30)));
        assert_eq!(sim.agent(AgentId(2)).got_at, Some(SimTime::from_millis(60)));
        // Two network messages of 100 bytes (the injected one was local).
        assert_eq!(sim.stats().messages, 2);
        assert_eq!(sim.stats().bytes, 200);
    }

    /// Timer-driven agent.
    struct Beeper {
        beeps: Vec<SimTime>,
        remaining: u32,
    }
    impl Agent for Beeper {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.schedule(SimDuration::from_secs(1), TimerTag(1));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
            assert_eq!(tag, TimerTag(1));
            self.beeps.push(ctx.now());
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule(SimDuration::from_secs(1), TimerTag(1));
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: AgentId, _: ()) {}
    }

    #[test]
    fn periodic_timers() {
        let topo = Topology::uniform(2, SimTime::from_millis(10));
        let agents = vec![
            Beeper {
                beeps: vec![],
                remaining: 3,
            },
            Beeper {
                beeps: vec![],
                remaining: 1,
            },
        ];
        let mut sim = Sim::new(topo, agents, 5);
        sim.run();
        assert_eq!(
            sim.agent(AgentId(0)).beeps,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
        assert_eq!(sim.agent(AgentId(1)).beeps, vec![SimTime::from_secs(1)]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.stats().timers, 4);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let topo = Topology::uniform(1, SimTime::from_millis(10));
        let agents = vec![Beeper {
            beeps: vec![],
            remaining: 10,
        }];
        let mut sim = Sim::new(topo, agents, 5);
        sim.run_until(SimTime::from_millis(2500));
        assert_eq!(sim.agent(AgentId(0)).beeps.len(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2500));
        assert!(sim.pending_events() > 0);
        // Continue to completion.
        sim.run();
        assert_eq!(sim.agent(AgentId(0)).beeps.len(), 10);
    }

    #[test]
    #[should_panic(expected = "one agent per topology host")]
    fn mismatched_population_panics() {
        let topo = Topology::uniform(3, SimTime::from_millis(10));
        let agents: Vec<Relay> = vec![];
        let _ = Sim::new(topo, agents, 0);
    }

    /// A chain of relays under heavy loss: some messages vanish, the
    /// accounting records them, and runs are deterministic in the seed.
    #[test]
    fn loss_model_drops_deterministically() {
        let run = |seed: u64| {
            let topo = Topology::uniform(2, SimTime::from_millis(10));
            // Agent 0 fires 200 one-way messages to agent 1.
            struct Spammer {
                received: u32,
            }
            impl Agent for Spammer {
                type Msg = u8;
                fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                    if ctx.me() == AgentId(0) {
                        for _ in 0..200 {
                            ctx.send(AgentId(1), 1, 10);
                        }
                    }
                }
                fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: AgentId, _: u8) {
                    self.received += 1;
                }
            }
            let mut sim = Sim::new(
                topo,
                vec![Spammer { received: 0 }, Spammer { received: 0 }],
                seed,
            );
            sim.set_loss_rate(0.3);
            sim.run();
            (sim.agent(AgentId(1)).received, sim.stats().dropped)
        };
        let (recv_a, drop_a) = run(7);
        let (recv_b, drop_b) = run(7);
        assert_eq!((recv_a, drop_a), (recv_b, drop_b), "loss must be seeded");
        assert_eq!(recv_a as u64 + drop_a, 200);
        // 30% loss of 200: far from 0 and far from 200.
        assert!((20..120).contains(&drop_a), "dropped {drop_a}");
        let (recv_c, _) = run(8);
        assert_ne!(recv_a, recv_c, "different seeds should differ");
    }

    #[test]
    fn self_sends_are_never_lost() {
        let topo = Topology::uniform(1, SimTime::from_millis(10));
        struct SelfTalker {
            received: u32,
        }
        impl Agent for SelfTalker {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
                for _ in 0..100 {
                    ctx.send(AgentId(0), 1, 10);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: AgentId, _: u8) {
                self.received += 1;
            }
        }
        let mut sim = Sim::new(topo, vec![SelfTalker { received: 0 }], 1);
        sim.set_loss_rate(0.9);
        sim.run();
        assert_eq!(sim.agent(AgentId(0)).received, 100);
        assert_eq!(sim.stats().dropped, 0);
    }

    use crate::fault::{FaultPlane, PartitionWindow};

    /// Counts arrivals and lifecycle events; the workhorse for
    /// fault-plane tests.
    struct Counter {
        received: u32,
        crashes: u32,
        restarts: u32,
    }
    impl Counter {
        fn new() -> Self {
            Counter {
                received: 0,
                crashes: 0,
                restarts: 0,
            }
        }
    }
    impl Agent for Counter {
        type Msg = u8;
        fn on_message(&mut self, _: &mut Ctx<'_, u8>, _: AgentId, _: u8) {
            self.received += 1;
        }
        fn on_crash(&mut self) {
            self.crashes += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Ctx<'_, u8>) {
            self.restarts += 1;
        }
    }

    /// Forwards every injected message from agent 0 to agent 1, and
    /// counts arrivals everywhere.
    struct Forwarder {
        received: u32,
    }
    impl Agent for Forwarder {
        type Msg = u8;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, _from: AgentId, msg: u8) {
            self.received += 1;
            if ctx.me() == AgentId(0) {
                ctx.send(AgentId(1), msg, 10);
            }
        }
    }

    fn forwarder_pair(one_way_ms: u64, seed: u64) -> Sim<Forwarder> {
        let topo = Topology::uniform(2, SimTime::from_millis(one_way_ms));
        Sim::new(
            topo,
            vec![Forwarder { received: 0 }, Forwarder { received: 0 }],
            seed,
        )
    }

    #[test]
    fn duplication_delivers_twice_deterministically() {
        let run = |seed: u64| {
            let mut sim = forwarder_pair(10, seed);
            sim.set_faults(FaultPlane {
                dup_rate: 0.25,
                ..FaultPlane::default()
            });
            for _ in 0..200 {
                sim.inject(SimTime::ZERO, AgentId(0), 1);
            }
            sim.run();
            (sim.agent(AgentId(1)).received, sim.stats().duplicated)
        };
        let (recv_a, dup_a) = run(3);
        assert_eq!(run(3), (recv_a, dup_a), "duplication must be seeded");
        // Each of the 200 forwards arrives once, plus once per duplicate.
        assert_eq!(recv_a as u64, 200 + dup_a);
        assert!((20..100).contains(&dup_a), "duplicated {dup_a}");
    }

    #[test]
    fn latency_spikes_delay_but_never_lose() {
        let mut sim = forwarder_pair(100, 11);
        sim.set_faults(FaultPlane {
            spike_rate: 0.5,
            spike_factor: 10.0,
            ..FaultPlane::default()
        });
        for _ in 0..40 {
            sim.inject(SimTime::ZERO, AgentId(0), 1);
        }
        sim.run();
        // Every forward arrives: the plain ones after the 50 ms one-way
        // delay, the spiked ones after 500 ms.
        assert_eq!(sim.agent(AgentId(1)).received, 40);
        let spiked = sim.stats().spiked;
        assert!((5..35).contains(&spiked), "spiked {spiked}");
        assert_eq!(sim.now(), SimTime::from_millis(500));
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn crash_discards_messages_until_restart() {
        let topo = Topology::uniform(2, SimTime::from_millis(10));
        let mut sim = Sim::new(topo, vec![Counter::new(), Counter::new()], 1);
        for i in 0..20u64 {
            sim.inject(SimTime::from_millis(i), AgentId(1), 0);
        }
        sim.schedule_crash(SimTime::from_micros(4_500), AgentId(1));
        sim.schedule_restart(SimTime::from_micros(11_500), AgentId(1));
        sim.run();
        let agent = sim.agent(AgentId(1));
        // 20 injected, 7 fell in the down window (t = 5..=11 ms).
        assert_eq!(agent.received, 13);
        assert_eq!(agent.crashes, 1);
        assert_eq!(agent.restarts, 1);
        assert_eq!(sim.stats().dropped_down, 7);
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().restarts, 1);
        assert!(!sim.is_down(AgentId(1)));
    }

    #[test]
    fn crashed_agent_timers_are_discarded() {
        let topo = Topology::uniform(1, SimTime::from_millis(10));
        let mut sim = Sim::new(
            topo,
            vec![Beeper {
                beeps: vec![],
                remaining: 10,
            }],
            0,
        );
        // The beeper re-arms from each firing; crashing it swallows the
        // pending timer, so the chain stays dead even after restart.
        sim.schedule_crash(SimTime::from_millis(2_500), AgentId(0));
        sim.schedule_restart(SimTime::from_millis(4_500), AgentId(0));
        sim.run();
        assert_eq!(sim.agent(AgentId(0)).beeps.len(), 2);
    }

    #[test]
    fn partition_windows_sever_cross_island_links_only() {
        let mut sim = forwarder_pair(10, 1);
        sim.set_faults(FaultPlane {
            partitions: vec![PartitionWindow {
                from: SimTime::from_millis(5),
                until: SimTime::from_millis(10),
                island: vec![true, false],
            }],
            ..FaultPlane::default()
        });
        for i in 0..15u64 {
            sim.inject(SimTime::from_millis(i), AgentId(0), 0);
        }
        sim.run();
        // Forwards sent at t in [5, 10) were severed: 5 of 15.
        assert_eq!(sim.stats().partitioned, 5);
        assert_eq!(sim.stats().messages, 15);
        assert_eq!(sim.agent(AgentId(1)).received, 10);
    }

    /// Message whose clones are tallied, to pin down the delivery path's
    /// copying behavior.
    #[derive(Debug)]
    struct CountedMsg(u8);

    static MSG_CLONES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    impl Clone for CountedMsg {
        fn clone(&self) -> Self {
            MSG_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountedMsg(self.0)
        }
    }

    struct CountedForwarder {
        received: usize,
    }

    impl Agent for CountedForwarder {
        type Msg = CountedMsg;
        fn on_message(&mut self, ctx: &mut Ctx<'_, CountedMsg>, _from: AgentId, msg: CountedMsg) {
            self.received += 1;
            if ctx.me() == AgentId(0) {
                ctx.send(AgentId(1), msg, 10);
            }
        }
    }

    fn run_counted(faults: FaultPlane, n: usize) -> (usize, NetStats) {
        let topo = Topology::uniform(2, SimTime::from_millis(10));
        let mut sim = Sim::new(
            topo,
            vec![
                CountedForwarder { received: 0 },
                CountedForwarder { received: 0 },
            ],
            7,
        );
        sim.set_faults(faults);
        for _ in 0..n {
            sim.inject(SimTime::ZERO, AgentId(0), CountedMsg(1));
        }
        sim.run();
        (sim.agent(AgentId(1)).received, sim.stats())
    }

    /// `Ctx::send` must move the message into the event queue — fan-out
    /// is 1, so a clone would be a pure copy tax on every delivery (the
    /// payloads are whole index entries and result sets). The one
    /// exception is the duplication fault, whose fan-out of 2 needs
    /// exactly one clone per duplicated send.
    #[test]
    fn send_is_zero_copy_without_dup_faults() {
        MSG_CLONES.store(0, std::sync::atomic::Ordering::Relaxed);
        let (received, _) = run_counted(FaultPlane::default(), 300);
        assert_eq!(received, 300);
        assert_eq!(
            MSG_CLONES.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "fan-out-1 delivery must not clone the message"
        );

        MSG_CLONES.store(0, std::sync::atomic::Ordering::Relaxed);
        let (received, stats) = run_counted(
            FaultPlane {
                dup_rate: 0.5,
                ..FaultPlane::default()
            },
            300,
        );
        let dup = stats.duplicated as usize;
        assert!(dup > 0, "dup fault must have fired");
        assert_eq!(received, 300 + dup);
        assert_eq!(
            MSG_CLONES.load(std::sync::atomic::Ordering::Relaxed),
            dup,
            "exactly one clone per duplicated send, none otherwise"
        );
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_into_past_panics() {
        let topo = Topology::uniform(1, SimTime::from_millis(10));
        let mut sim = Sim::new(
            topo,
            vec![Beeper {
                beeps: vec![],
                remaining: 2,
            }],
            0,
        );
        sim.run();
        sim.inject(SimTime::from_secs(1), AgentId(0), ());
    }
}
