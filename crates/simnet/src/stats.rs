//! Network-wide accounting.
//!
//! The simulator counts every message and byte that crosses the (simulated)
//! wire. Experiments layer their own per-query attribution on top; these
//! totals are the ground truth they must reconcile with.

/// Aggregate counters over an entire simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network layer.
    pub messages: u64,
    /// Sum of the declared sizes of those messages, in bytes.
    pub bytes: u64,
    /// Timer events fired.
    pub timers: u64,
    /// Events processed in total (messages + timers + starts).
    pub events: u64,
    /// Cross-host messages dropped by the loss model.
    pub dropped: u64,
    /// Messages discarded because the destination host was down.
    pub dropped_down: u64,
    /// Messages discarded by an active network partition.
    pub partitioned: u64,
    /// Messages delivered twice by the duplication fault.
    pub duplicated: u64,
    /// Messages whose delivery was delayed by a latency spike.
    pub spiked: u64,
    /// Crash events fired.
    pub crashes: u64,
    /// Restart events fired.
    pub restarts: u64,
    /// Most events simultaneously queued at any point in the run — the
    /// working-set size the event queue had to hold, which at scale is
    /// the simulator's dominant memory driver. Under parallel execution
    /// (`Sim::set_threads` > 1) queued events live in two places — the
    /// global calendar queue between windows and per-shard heaps inside
    /// one — so the mark is the maximum over both accountings: the
    /// calendar queue's own peak, and at each window barrier the
    /// leftover calendar population plus every shard's high-water mark.
    pub peak_queue: u64,
    /// Deliveries that had to wait for a busy destination host, counted
    /// once per waiting delivery (only nonzero under the opt-in
    /// per-node service model; see `Sim::set_service_time`). A
    /// high-deferral run is a saturated run.
    pub deferred: u64,
}

impl NetStats {
    /// Record one message of `bytes` bytes.
    #[inline]
    pub(crate) fn on_send(&mut self, bytes: u32) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Mean message size in bytes, or 0 when no messages were sent.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut s = NetStats::default();
        s.on_send(100);
        s.on_send(50);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.mean_message_bytes(), 75.0);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(NetStats::default().mean_message_bytes(), 0.0);
    }
}
