//! Deterministic counters and histograms for overlay/search telemetry.
//!
//! The registry is deliberately minimal: named monotone `u64` counters
//! plus power-of-two-bucket histograms, all keyed by `BTreeMap` so every
//! serialization is canonically ordered. Nothing here reads a wall
//! clock — values come only from simulated events — so two runs with the
//! same seed produce byte-identical [`Registry::to_json`] output. That
//! property is what the repository's golden-snapshot CI gate checks.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use serde_json::Value;

/// A histogram over `u64` samples with logarithmic (power-of-two)
/// buckets: bucket `0` holds the value `0`, bucket `b >= 1` holds values
/// in `[2^(b-1), 2^b)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Occupied buckets only: bucket index -> sample count.
    buckets: BTreeMap<u32, u64>,
    /// Total samples observed.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
    /// Largest observed value.
    max: u64,
}

/// The bucket index a value falls into.
fn bucket_of(value: u64) -> u32 {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros()
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        *self.buckets.entry(bucket_of(value)).or_default() += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_default() += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Canonical JSON: integer summary fields plus the occupied buckets
    /// as `[bucket_upper_bound_exclusive, count]` pairs in bucket order.
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .map(|(&b, &c)| {
                let le = if b == 0 { 0 } else { 1u64 << b };
                Value::Array(vec![Value::UInt(le), Value::UInt(c)])
            })
            .collect();
        serde_json::json!({
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "buckets": Value::Array(buckets),
        })
    }
}

/// Build a histogram from a slice of samples (load distributions etc.).
pub fn histogram_of(values: impl IntoIterator<Item = u64>) -> Histogram {
    let mut h = Histogram::default();
    for v in values {
        h.observe(v);
    }
    h
}

/// A named-metric registry: counters and histograms, canonically ordered.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to the named counter (created at 0 on first touch).
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_default() += by;
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Fold another registry into this one (summing counters, merging
    /// histograms).
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Canonical JSON: `{"counters": {...}, "histograms": {...}}` with
    /// sorted keys and integer values throughout.
    pub fn to_json(&self) -> Value {
        let counters: BTreeMap<String, Value> = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::UInt(v)))
            .collect();
        let histograms: BTreeMap<String, Value> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        serde_json::json!({
            "counters": Value::Object(counters),
            "histograms": Value::Object(histograms),
        })
    }
}

/// A registry shared between agents of one simulation. The simulator is
/// single-threaded, but agents are owned by the `Sim` while experiment
/// drivers also hold the handle, and systems run in parallel across
/// experiments — so the shared handle must be `Send + Sync`.
pub type SharedRegistry = Arc<Mutex<Registry>>;

/// A fresh shared registry.
pub fn shared() -> SharedRegistry {
    Arc::new(Mutex::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_summarizes() {
        let h = histogram_of([0, 1, 1, 5, 9]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 9);
        let j = h.to_json();
        assert_eq!(j["count"].as_u64(), Some(5));
        // 0 -> bucket le=0; 1,1 -> le=2; 5 -> le=8; 9 -> le=16.
        assert_eq!(j["buckets"].to_string(), "[[0,1],[2,2],[8,1],[16,1]]");
    }

    #[test]
    fn registry_counts_and_serializes_sorted() {
        let mut r = Registry::new();
        r.incr("b.msgs", 2);
        r.incr("a.msgs", 1);
        r.incr("b.msgs", 3);
        r.observe("hops", 4);
        assert_eq!(r.counter("b.msgs"), 5);
        assert_eq!(r.counter("missing"), 0);
        let s = r.to_json().to_string();
        // Sorted keys: "a.msgs" before "b.msgs"; integers unquoted.
        assert!(s.contains(r#""a.msgs":1,"b.msgs":5"#), "{s}");
        assert!(s.contains(r#""hops""#));
    }

    #[test]
    fn merge_folds_everything() {
        let mut a = Registry::new();
        a.incr("x", 1);
        a.observe("h", 3);
        let mut b = Registry::new();
        b.incr("x", 2);
        b.incr("y", 7);
        b.observe("h", 100);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn identical_registries_serialize_identically() {
        let build = || {
            let mut r = Registry::new();
            for i in 0..50u64 {
                r.incr(&format!("c{}", i % 7), i);
                r.observe("h", i * i);
            }
            r.to_json().to_string()
        };
        assert_eq!(build(), build());
    }
}
