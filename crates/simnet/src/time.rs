//! Simulation clock types.
//!
//! Simulated time is an integer count of nanoseconds since the start of the
//! simulation. Integer time (rather than `f64`) keeps event ordering exact
//! and the simulation bit-for-bit reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimTime((s * 1e9).round() as u64)
    }
    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e9).round() as u64)
    }
    /// Construct from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0 && ms.is_finite());
        SimDuration((ms * 1e6).round() as u64)
    }
    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// This span expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Integer division of the span, rounding toward zero.
    pub fn div_by(self, by: u64) -> SimDuration {
        SimDuration(self.0 / by)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).0, 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).0, 3_000_000);
        assert_eq!(SimTime::from_micros(3).0, 3_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_millis_f64(0.25).as_millis_f64(), 0.25);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(2);
        assert_eq!(u, SimTime::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn div_duration() {
        assert_eq!(
            SimDuration::from_millis(10).div_by(4),
            SimDuration(2_500_000)
        );
    }
}
