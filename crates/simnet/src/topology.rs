//! Wide-area latency model.
//!
//! The paper draws pairwise latencies from the **King dataset** — measured
//! round-trip times between 1740 DNS servers, with an average RTT of
//! 180 ms. That dataset is not redistributable here, so
//! [`Topology::king_like`] synthesizes a matrix with the same gross
//! statistics: hosts are embedded in a low-dimensional Euclidean space
//! (geography), per-pair lognormal jitter roughens the embedding (routing
//! inefficiency / access links), and the whole matrix is rescaled so the
//! mean RTT matches a target (180 ms by default). The result keeps the
//! properties the experiments actually exploit: rough triangle-inequality
//! geography for proximity neighbor selection, and a realistic RTT scale
//! and spread for latency metrics.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Default mean round-trip time, matching the paper's reported King average.
pub const DEFAULT_MEAN_RTT_MS: f64 = 180.0;

/// A symmetric pairwise round-trip-time matrix over `n` hosts.
#[derive(Clone)]
pub struct Topology {
    n: usize,
    /// Flattened `n * n` RTTs in nanoseconds; diagonal is zero.
    rtt_ns: Box<[u64]>,
}

impl Topology {
    /// A matrix where every distinct pair has the same RTT. Useful for
    /// unit tests where latency variation would be noise.
    pub fn uniform(n: usize, rtt: crate::time::SimTime) -> Topology {
        let mut rtt_ns = vec![0u64; n * n].into_boxed_slice();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rtt_ns[i * n + j] = rtt.0;
                }
            }
        }
        Topology { n, rtt_ns }
    }

    /// Synthesize a King-like matrix (see module docs).
    ///
    /// * `n` — number of hosts.
    /// * `seed` — generation is fully deterministic in this seed.
    /// * `mean_rtt_ms` — target mean RTT over distinct pairs.
    pub fn king_like(n: usize, seed: u64, mean_rtt_ms: f64) -> Topology {
        assert!(n >= 1, "a topology needs at least one host");
        assert!(mean_rtt_ms > 0.0);
        if n == 1 {
            // Degenerate single-host world: no pairs to model.
            return Topology {
                n,
                rtt_ns: vec![0u64; 1].into_boxed_slice(),
            };
        }
        let mut rng = SimRng::new(seed).fork(0x7090);

        // 5-D embedding: enough dimensions that pairwise distances have a
        // realistic unimodal spread rather than the degenerate shape a 1-D
        // or 2-D embedding would give at this scale.
        const DIMS: usize = 5;
        let coords: Vec<[f64; DIMS]> = (0..n)
            .map(|_| {
                let mut c = [0.0; DIMS];
                for v in &mut c {
                    *v = rng.f64();
                }
                c
            })
            .collect();

        // Raw latencies: base propagation from the embedding plus a small
        // constant floor (last-mile) and multiplicative lognormal jitter.
        let mut raw = vec![0.0f64; n * n];
        let mut sum = 0.0f64;
        let mut pairs = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut d2 = 0.0;
                for (a, b) in coords[i].iter().zip(&coords[j]) {
                    let d = a - b;
                    d2 += d * d;
                }
                let base = d2.sqrt();
                // Lognormal(mu=0, sigma=0.45): median 1.0x, long right tail.
                let z = normal_sample(&mut rng);
                let jitter = (0.45 * z).exp();
                let lat = (0.08 + base) * jitter;
                raw[i * n + j] = lat;
                raw[j * n + i] = lat;
                sum += lat;
                pairs += 1;
            }
        }

        // Rescale to the requested mean.
        let scale = mean_rtt_ms / (sum / pairs as f64);
        let mut rtt_ns = vec![0u64; n * n].into_boxed_slice();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let ms = raw[i * n + j] * scale;
                    rtt_ns[i * n + j] = (ms * 1e6).round() as u64;
                }
            }
        }
        Topology { n, rtt_ns }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the topology has no hosts.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Round-trip time between hosts `a` and `b`.
    #[inline]
    pub fn rtt(&self, a: usize, b: usize) -> SimDuration {
        SimDuration(self.rtt_ns[a * self.n + b])
    }

    /// One-way propagation delay, i.e. half the RTT.
    #[inline]
    pub fn one_way(&self, a: usize, b: usize) -> SimDuration {
        SimDuration(self.rtt_ns[a * self.n + b] / 2)
    }

    /// Mean RTT over all distinct ordered pairs, in milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        let mut sum = 0u128;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.rtt_ns[i * self.n + j] as u128;
                }
            }
        }
        let pairs = (self.n * (self.n - 1)) as f64;
        sum as f64 / pairs / 1e6
    }

    /// The given percentile (0–100) of distinct-pair RTTs, in milliseconds.
    pub fn percentile_rtt_ms(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct));
        let mut all: Vec<u64> = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                all.push(self.rtt_ns[i * self.n + j]);
            }
        }
        all.sort_unstable();
        if all.is_empty() {
            return 0.0;
        }
        let idx = ((pct / 100.0) * (all.len() - 1) as f64).round() as usize;
        all[idx] as f64 / 1e6
    }
}

/// Standard normal via Box–Muller (polar form avoided to keep the draw
/// count per sample fixed, which preserves stream stability).
fn normal_sample(rng: &mut SimRng) -> f64 {
    let u1 = 1.0 - rng.f64(); // (0, 1]
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn uniform_matrix() {
        let t = Topology::uniform(4, SimTime::from_millis(100));
        assert_eq!(t.len(), 4);
        assert_eq!(t.rtt(0, 0), SimDuration::ZERO);
        assert_eq!(t.rtt(1, 3), SimDuration::from_millis(100));
        assert_eq!(t.one_way(1, 3), SimDuration::from_millis(50));
        assert!((t.mean_rtt_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn king_like_hits_target_mean() {
        let t = Topology::king_like(200, 42, DEFAULT_MEAN_RTT_MS);
        let mean = t.mean_rtt_ms();
        assert!(
            (mean - DEFAULT_MEAN_RTT_MS).abs() < 1.0,
            "mean RTT {mean} not within 1ms of target"
        );
    }

    #[test]
    fn king_like_is_symmetric_with_zero_diagonal() {
        let t = Topology::king_like(64, 7, 180.0);
        for i in 0..64 {
            assert_eq!(t.rtt(i, i), SimDuration::ZERO);
            for j in 0..64 {
                assert_eq!(t.rtt(i, j), t.rtt(j, i));
            }
        }
    }

    #[test]
    fn king_like_deterministic_in_seed() {
        let a = Topology::king_like(32, 99, 180.0);
        let b = Topology::king_like(32, 99, 180.0);
        for i in 0..32 {
            for j in 0..32 {
                assert_eq!(a.rtt(i, j), b.rtt(i, j));
            }
        }
        let c = Topology::king_like(32, 100, 180.0);
        let diffs = (0..32)
            .flat_map(|i| (0..32).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && a.rtt(i, j) != c.rtt(i, j))
            .count();
        assert!(
            diffs > 900,
            "different seeds should give different matrices"
        );
    }

    #[test]
    fn king_like_has_dispersion() {
        let t = Topology::king_like(200, 42, 180.0);
        let p5 = t.percentile_rtt_ms(5.0);
        let p95 = t.percentile_rtt_ms(95.0);
        // King latencies spread over roughly an order of magnitude.
        assert!(p5 < 100.0, "p5 was {p5}");
        assert!(p95 > 280.0, "p95 was {p95}");
        assert!(t.percentile_rtt_ms(100.0) > p95);
        assert!(t.percentile_rtt_ms(0.0) < p5);
    }

    #[test]
    fn king_like_positive_off_diagonal() {
        let t = Topology::king_like(50, 3, 180.0);
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    assert!(t.rtt(i, j).0 > 0);
                }
            }
        }
    }
}
