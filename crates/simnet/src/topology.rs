//! Wide-area latency model.
//!
//! The paper draws pairwise latencies from the **King dataset** — measured
//! round-trip times between 1740 DNS servers, with an average RTT of
//! 180 ms. That dataset is not redistributable here, so
//! [`Topology::king_like`] synthesizes a matrix with the same gross
//! statistics: hosts are embedded in a low-dimensional Euclidean space
//! (geography), per-pair lognormal jitter roughens the embedding (routing
//! inefficiency / access links), and the whole matrix is rescaled so the
//! mean RTT matches a target (180 ms by default). The result keeps the
//! properties the experiments actually exploit: rough triangle-inequality
//! geography for proximity neighbor selection, and a realistic RTT scale
//! and spread for latency metrics.
//!
//! # Two representations
//!
//! The dense `n × n` matrix is exact and fast but quadratic: at 100k
//! hosts it would need 80 GB. [`Topology::king_like_scalable`] therefore
//! stores only the per-host embedding (40 bytes/host) and computes each
//! RTT **on demand**: base propagation from the coordinates plus a
//! pair-keyed deterministic jitter, rescaled by a factor calibrated once
//! at construction from a bounded pair sample. Same gross statistics,
//! same determinism (the RTT of a pair depends only on `(seed, i, j)`),
//! O(n) memory. The dense `king_like` path is kept bit-for-bit unchanged
//! so every existing golden stays byte-identical.

use crate::rng::{splitmix64, SimRng};
use crate::time::SimDuration;

/// Default mean round-trip time, matching the paper's reported King average.
pub const DEFAULT_MEAN_RTT_MS: f64 = 180.0;

/// Embedding dimensionality: enough that pairwise distances have a
/// realistic unimodal spread rather than the degenerate shape a 1-D or
/// 2-D embedding would give at this scale.
const DIMS: usize = 5;

/// Lognormal jitter sigma (median 1.0×, long right tail).
const JITTER_SIGMA: f64 = 0.45;

/// Constant last-mile floor added to the embedding distance, in the
/// pre-rescale unit.
const LAST_MILE: f64 = 0.08;

/// Pair-sample budget for calibrating the coordinate representation's
/// scale factor and for its statistics queries. 2^17 pairs keeps the
/// sampled mean within a fraction of a percent of the true mean while
/// bounding construction at scale.
const STAT_SAMPLE_PAIRS: usize = 1 << 17;

/// How pairwise RTTs are stored.
#[derive(Clone)]
enum Repr {
    /// Flattened `n * n` RTTs in nanoseconds; diagonal is zero. Exact,
    /// O(n²) memory.
    Dense { rtt_ns: Box<[u64]> },
    /// Per-host embedding; RTTs computed on demand. O(n) memory.
    Coords {
        coords: Box<[[f64; DIMS]]>,
        /// Multiplies raw (embedding + jitter) latencies into ms.
        scale: f64,
        /// Keys the per-pair jitter stream.
        seed: u64,
    },
}

/// A symmetric pairwise round-trip-time model over `n` hosts.
#[derive(Clone)]
pub struct Topology {
    n: usize,
    repr: Repr,
    /// Lower bound on every distinct-pair one-way delay, in nanoseconds
    /// (0 when there are no pairs). Exact for the dense representation,
    /// analytic for the coordinate representation. This is the safe
    /// lookahead window for conservative parallel execution: any message
    /// sent at time `t` arrives no earlier than `t + min_one_way_ns`.
    min_one_way_ns: u64,
}

impl Topology {
    /// A matrix where every distinct pair has the same RTT. Useful for
    /// unit tests where latency variation would be noise.
    pub fn uniform(n: usize, rtt: crate::time::SimTime) -> Topology {
        let mut rtt_ns = vec![0u64; n * n].into_boxed_slice();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rtt_ns[i * n + j] = rtt.0;
                }
            }
        }
        Topology {
            n,
            min_one_way_ns: dense_min_one_way(n, &rtt_ns),
            repr: Repr::Dense { rtt_ns },
        }
    }

    /// Synthesize a King-like matrix (see module docs).
    ///
    /// * `n` — number of hosts.
    /// * `seed` — generation is fully deterministic in this seed.
    /// * `mean_rtt_ms` — target mean RTT over distinct pairs.
    pub fn king_like(n: usize, seed: u64, mean_rtt_ms: f64) -> Topology {
        assert!(n >= 1, "a topology needs at least one host");
        assert!(mean_rtt_ms > 0.0);
        if n == 1 {
            // Degenerate single-host world: no pairs to model.
            return Topology {
                n,
                repr: Repr::Dense {
                    rtt_ns: vec![0u64; 1].into_boxed_slice(),
                },
                min_one_way_ns: 0,
            };
        }
        let mut rng = SimRng::new(seed).fork(0x7090);

        let coords: Vec<[f64; DIMS]> = (0..n)
            .map(|_| {
                let mut c = [0.0; DIMS];
                for v in &mut c {
                    *v = rng.f64();
                }
                c
            })
            .collect();

        // Raw latencies: base propagation from the embedding plus a small
        // constant floor (last-mile) and multiplicative lognormal jitter.
        let mut raw = vec![0.0f64; n * n];
        let mut sum = 0.0f64;
        let mut pairs = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut d2 = 0.0;
                for (a, b) in coords[i].iter().zip(&coords[j]) {
                    let d = a - b;
                    d2 += d * d;
                }
                let base = d2.sqrt();
                // Lognormal(mu=0, sigma=0.45): median 1.0x, long right tail.
                let z = normal_sample(&mut rng);
                let jitter = (JITTER_SIGMA * z).exp();
                let lat = (LAST_MILE + base) * jitter;
                raw[i * n + j] = lat;
                raw[j * n + i] = lat;
                sum += lat;
                pairs += 1;
            }
        }

        // Rescale to the requested mean.
        let scale = mean_rtt_ms / (sum / pairs as f64);
        let mut rtt_ns = vec![0u64; n * n].into_boxed_slice();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let ms = raw[i * n + j] * scale;
                    rtt_ns[i * n + j] = (ms * 1e6).round() as u64;
                }
            }
        }
        Topology {
            n,
            min_one_way_ns: dense_min_one_way(n, &rtt_ns),
            repr: Repr::Dense { rtt_ns },
        }
    }

    /// King-like statistics in O(n) memory: stores only the embedding and
    /// computes RTTs on demand (see module docs). Use this above a few
    /// thousand hosts, where the dense matrix stops fitting.
    ///
    /// The distribution matches [`Topology::king_like`]'s family — same
    /// embedding, same lognormal-jitter shape, same target mean — but the
    /// two are *different draws*: the dense path consumes one shared RNG
    /// stream while this one keys jitter per pair, so individual entries
    /// differ even at equal `(n, seed)`.
    pub fn king_like_scalable(n: usize, seed: u64, mean_rtt_ms: f64) -> Topology {
        assert!(n >= 1, "a topology needs at least one host");
        assert!(mean_rtt_ms > 0.0);
        let mut rng = SimRng::new(seed).fork(0x7090);
        let coords: Box<[[f64; DIMS]]> = (0..n)
            .map(|_| {
                let mut c = [0.0; DIMS];
                for v in &mut c {
                    *v = rng.f64();
                }
                c
            })
            .collect();
        if n == 1 {
            return Topology {
                n,
                repr: Repr::Coords {
                    coords,
                    scale: 1.0,
                    seed,
                },
                min_one_way_ns: 0,
            };
        }

        // Calibrate the scale from a bounded deterministic pair sample so
        // the (sampled) mean hits the target.
        let mut sum = 0.0;
        let mut count = 0u64;
        for_each_stat_pair(n, seed, |i, j| {
            sum += raw_latency(&coords, seed, i, j);
            count += 1;
        });
        let scale = mean_rtt_ms / (sum / count as f64);
        Topology {
            n,
            min_one_way_ns: coords_min_one_way(scale),
            repr: Repr::Coords {
                coords,
                scale,
                seed,
            },
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the topology has no hosts.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Round-trip time between hosts `a` and `b`.
    #[inline]
    pub fn rtt(&self, a: usize, b: usize) -> SimDuration {
        SimDuration(self.rtt_ns(a, b))
    }

    /// One-way propagation delay, i.e. half the RTT.
    #[inline]
    pub fn one_way(&self, a: usize, b: usize) -> SimDuration {
        SimDuration(self.rtt_ns(a, b) / 2)
    }

    /// A lower bound on [`Topology::one_way`] over all distinct pairs:
    /// no message between distinct hosts is ever delivered in less than
    /// this. Exact (the true minimum) for dense matrices; for the
    /// coordinate representation it is the analytic floor of the jitter
    /// model, which every on-demand pair provably respects. Zero when
    /// the topology has fewer than two hosts or contains a zero-latency
    /// pair — conservative parallel execution falls back to the
    /// sequential loop in that case.
    #[inline]
    pub fn min_one_way(&self) -> SimDuration {
        SimDuration(self.min_one_way_ns)
    }

    #[inline]
    fn rtt_ns(&self, a: usize, b: usize) -> u64 {
        match &self.repr {
            Repr::Dense { rtt_ns } => rtt_ns[a * self.n + b],
            Repr::Coords {
                coords,
                scale,
                seed,
            } => {
                if a == b {
                    0
                } else {
                    (raw_latency(coords, *seed, a, b) * scale * 1e6).round() as u64
                }
            }
        }
    }

    /// Mean RTT over distinct pairs, in milliseconds. Exact for the dense
    /// representation; for the coordinate representation, computed over
    /// the same bounded pair sample used at calibration (so it lands on
    /// the configured target by construction).
    pub fn mean_rtt_ms(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0u128;
        let mut count = 0u64;
        self.for_each_sampled_pair(|rtt_ns| {
            sum += rtt_ns as u128;
            count += 1;
        });
        sum as f64 / count as f64 / 1e6
    }

    /// The given percentile (0–100) of distinct-pair RTTs, in
    /// milliseconds. Exact for the dense representation, sampled for the
    /// coordinate representation.
    pub fn percentile_rtt_ms(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct));
        let mut all: Vec<u64> = Vec::new();
        self.for_each_sampled_pair(|rtt_ns| all.push(rtt_ns));
        all.sort_unstable();
        if all.is_empty() {
            return 0.0;
        }
        let idx = ((pct / 100.0) * (all.len() - 1) as f64).round() as usize;
        all[idx] as f64 / 1e6
    }

    /// Visit the RTT of every distinct pair (dense) or of the bounded
    /// deterministic pair sample (coords).
    fn for_each_sampled_pair(&self, mut f: impl FnMut(u64)) {
        if self.n < 2 {
            return;
        }
        match &self.repr {
            Repr::Dense { rtt_ns } => {
                for i in 0..self.n {
                    for j in (i + 1)..self.n {
                        f(rtt_ns[i * self.n + j]);
                    }
                }
            }
            Repr::Coords { seed, .. } => {
                let seed = *seed;
                for_each_stat_pair(self.n, seed, |i, j| f(self.rtt_ns(i, j)));
            }
        }
    }
}

/// Visit a deterministic set of distinct pairs for statistics: all
/// `n(n-1)/2` pairs when that fits the sample budget, otherwise
/// [`STAT_SAMPLE_PAIRS`] pairs drawn from a seed-keyed stream.
fn for_each_stat_pair(n: usize, seed: u64, mut f: impl FnMut(usize, usize)) {
    let total = n * (n - 1) / 2;
    if total <= STAT_SAMPLE_PAIRS {
        for i in 0..n {
            for j in (i + 1)..n {
                f(i, j);
            }
        }
    } else {
        let mut s = seed ^ 0xCA11_B8A7_E57A_7500;
        for _ in 0..STAT_SAMPLE_PAIRS {
            let i = (splitmix64(&mut s) % n as u64) as usize;
            let mut j = (splitmix64(&mut s) % (n as u64 - 1)) as usize;
            if j >= i {
                j += 1;
            }
            f(i, j);
        }
    }
}

/// Exact minimum one-way delay over the off-diagonal entries of a dense
/// RTT matrix, in nanoseconds; zero when there are no pairs.
fn dense_min_one_way(n: usize, rtt_ns: &[u64]) -> u64 {
    let mut min = u64::MAX;
    for i in 0..n {
        for j in (i + 1)..n {
            min = min.min(rtt_ns[i * n + j]);
        }
    }
    if min == u64::MAX {
        0
    } else {
        min / 2
    }
}

/// Analytic lower bound on the coordinate representation's one-way delay
/// in nanoseconds. [`raw_latency`] is `(LAST_MILE + dist) * exp(sigma*z)`
/// with `dist >= 0` and the Irwin–Hall `z` strictly above `-2*sqrt(3)`
/// (four uniforms in `[0, 1)` summed), so every raw latency exceeds
/// `LAST_MILE * exp(-sigma * 2*sqrt(3))`. The stored RTT rounds
/// `raw * scale * 1e6` to the nearest integer, which can move it at most
/// 0.5 below the real value; flooring the bound and subtracting one
/// absorbs that.
fn coords_min_one_way(scale: f64) -> u64 {
    let z_floor = -2.0 * 1.732_050_807_568_877_2; // -2*sqrt(3)
    let raw_floor = LAST_MILE * (JITTER_SIGMA * z_floor).exp();
    let rtt_floor = (raw_floor * scale * 1e6).floor() as u64;
    rtt_floor.saturating_sub(1) / 2
}

/// Raw (pre-rescale) latency of pair `(i, j)` in the coordinate
/// representation: embedding distance + last-mile floor, times a
/// pair-keyed lognormal-ish jitter. Symmetric and deterministic in
/// `(seed, i, j)` — the jitter stream is keyed on the unordered pair, so
/// `raw(i, j) == raw(j, i)` by construction.
fn raw_latency(coords: &[[f64; DIMS]], seed: u64, i: usize, j: usize) -> f64 {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    let mut d2 = 0.0;
    for (x, y) in coords[a].iter().zip(&coords[b]) {
        let d = x - y;
        d2 += d * d;
    }
    let base = LAST_MILE + d2.sqrt();
    // Pair-keyed standard normal via Irwin–Hall: the sum of 4 uniforms
    // has mean 2 and variance 1/3; centering and scaling by sqrt(3)
    // approximates N(0,1) well within the ±3.5σ the jitter cares about,
    // at a quarter the cost of Box–Muller (no ln/cos on the hot path).
    let mut s = seed
        ^ (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let mut sum = 0.0;
    for _ in 0..4 {
        sum += (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    }
    let z = (sum - 2.0) * 1.732_050_807_568_877_2; // sqrt(3)
    base * (JITTER_SIGMA * z).exp()
}

/// Standard normal via Box–Muller (polar form avoided to keep the draw
/// count per sample fixed, which preserves stream stability).
fn normal_sample(rng: &mut SimRng) -> f64 {
    let u1 = 1.0 - rng.f64(); // (0, 1]
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn uniform_matrix() {
        let t = Topology::uniform(4, SimTime::from_millis(100));
        assert_eq!(t.len(), 4);
        assert_eq!(t.rtt(0, 0), SimDuration::ZERO);
        assert_eq!(t.rtt(1, 3), SimDuration::from_millis(100));
        assert_eq!(t.one_way(1, 3), SimDuration::from_millis(50));
        assert!((t.mean_rtt_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn king_like_hits_target_mean() {
        let t = Topology::king_like(200, 42, DEFAULT_MEAN_RTT_MS);
        let mean = t.mean_rtt_ms();
        assert!(
            (mean - DEFAULT_MEAN_RTT_MS).abs() < 1.0,
            "mean RTT {mean} not within 1ms of target"
        );
    }

    #[test]
    fn king_like_is_symmetric_with_zero_diagonal() {
        let t = Topology::king_like(64, 7, 180.0);
        for i in 0..64 {
            assert_eq!(t.rtt(i, i), SimDuration::ZERO);
            for j in 0..64 {
                assert_eq!(t.rtt(i, j), t.rtt(j, i));
            }
        }
    }

    #[test]
    fn king_like_deterministic_in_seed() {
        let a = Topology::king_like(32, 99, 180.0);
        let b = Topology::king_like(32, 99, 180.0);
        for i in 0..32 {
            for j in 0..32 {
                assert_eq!(a.rtt(i, j), b.rtt(i, j));
            }
        }
        let c = Topology::king_like(32, 100, 180.0);
        let diffs = (0..32)
            .flat_map(|i| (0..32).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && a.rtt(i, j) != c.rtt(i, j))
            .count();
        assert!(
            diffs > 900,
            "different seeds should give different matrices"
        );
    }

    #[test]
    fn king_like_has_dispersion() {
        let t = Topology::king_like(200, 42, 180.0);
        let p5 = t.percentile_rtt_ms(5.0);
        let p95 = t.percentile_rtt_ms(95.0);
        // King latencies spread over roughly an order of magnitude.
        assert!(p5 < 100.0, "p5 was {p5}");
        assert!(p95 > 280.0, "p95 was {p95}");
        assert!(t.percentile_rtt_ms(100.0) > p95);
        assert!(t.percentile_rtt_ms(0.0) < p5);
    }

    #[test]
    fn king_like_positive_off_diagonal() {
        let t = Topology::king_like(50, 3, 180.0);
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    assert!(t.rtt(i, j).0 > 0);
                }
            }
        }
    }

    #[test]
    fn scalable_hits_target_mean() {
        // Small n: calibration is exhaustive, so the mean is exact up to
        // rounding. Large n: sampled, still tight.
        for &n in &[200usize, 2000] {
            let t = Topology::king_like_scalable(n, 42, DEFAULT_MEAN_RTT_MS);
            let mean = t.mean_rtt_ms();
            assert!(
                (mean - DEFAULT_MEAN_RTT_MS).abs() < 1.0,
                "n={n}: mean RTT {mean} not within 1ms of target"
            );
        }
    }

    #[test]
    fn scalable_is_symmetric_with_zero_diagonal() {
        let t = Topology::king_like_scalable(64, 7, 180.0);
        for i in 0..64 {
            assert_eq!(t.rtt(i, i), SimDuration::ZERO);
            for j in 0..64 {
                assert_eq!(t.rtt(i, j), t.rtt(j, i));
                if i != j {
                    assert!(t.rtt(i, j).0 > 0);
                }
            }
        }
    }

    #[test]
    fn scalable_deterministic_in_seed() {
        let a = Topology::king_like_scalable(64, 99, 180.0);
        let b = Topology::king_like_scalable(64, 99, 180.0);
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!(a.rtt(i, j), b.rtt(i, j));
            }
        }
        let c = Topology::king_like_scalable(64, 100, 180.0);
        let diffs = (0..64)
            .flat_map(|i| (0..64).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && a.rtt(i, j) != c.rtt(i, j))
            .count();
        assert!(diffs > 3600, "different seeds should differ");
    }

    #[test]
    fn scalable_has_dispersion_like_dense() {
        let t = Topology::king_like_scalable(200, 42, 180.0);
        let p5 = t.percentile_rtt_ms(5.0);
        let p95 = t.percentile_rtt_ms(95.0);
        assert!(p5 < 100.0, "p5 was {p5}");
        assert!(p95 > 280.0, "p95 was {p95}");
    }

    #[test]
    fn min_one_way_exact_for_dense() {
        for seed in [3u64, 42, 99] {
            let t = Topology::king_like(96, seed, 180.0);
            let mut true_min = u64::MAX;
            for i in 0..96 {
                for j in 0..96 {
                    if i != j {
                        true_min = true_min.min(t.one_way(i, j).0);
                    }
                }
            }
            assert_eq!(t.min_one_way().0, true_min);
            assert!(t.min_one_way().0 > 0);
        }
        let u = Topology::uniform(4, SimTime::from_millis(100));
        assert_eq!(u.min_one_way(), SimDuration::from_millis(50));
    }

    #[test]
    fn min_one_way_bounds_every_scalable_pair() {
        for seed in [1u64, 7, 42, 1234] {
            for n in [2usize, 64, 500] {
                let t = Topology::king_like_scalable(n, seed, 180.0);
                let bound = t.min_one_way().0;
                assert!(bound > 0, "n={n} seed={seed}: zero lookahead bound");
                for i in 0..n {
                    for j in (i + 1)..n {
                        assert!(
                            t.one_way(i, j).0 >= bound,
                            "n={n} seed={seed} pair ({i},{j}): one-way {} < bound {bound}",
                            t.one_way(i, j).0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn min_one_way_degenerate_topologies_are_zero() {
        assert_eq!(Topology::king_like(1, 9, 180.0).min_one_way().0, 0);
        assert_eq!(Topology::king_like_scalable(1, 9, 180.0).min_one_way().0, 0);
        assert_eq!(Topology::uniform(2, SimTime::ZERO).min_one_way().0, 0);
        assert_eq!(
            Topology::uniform(1, SimTime::from_millis(10))
                .min_one_way()
                .0,
            0
        );
    }

    /// The scalable representation must stay O(n) in memory, which this
    /// can't assert directly — but it can assert construction at a size
    /// whose dense matrix (8 × 50k² bytes = 20 GB) would be infeasible.
    #[test]
    fn scalable_constructs_at_large_n() {
        let t = Topology::king_like_scalable(50_000, 1, 180.0);
        assert_eq!(t.len(), 50_000);
        assert!(t.rtt(0, 49_999).0 > 0);
        assert_eq!(t.rtt(123, 45_678), t.rtt(45_678, 123));
    }
}
