//! Steady-state message delivery must not allocate.
//!
//! The zero-copy audit (`send_is_zero_copy_without_dup_faults`) pins the
//! *clone* count; this binary pins the *allocator* itself: once the
//! event queue's buckets have grown to the workload's working set, a
//! send → queue → deliver cycle is moves all the way through. At 100k
//! nodes the simulator processes hundreds of millions of deliveries, so
//! a single per-delivery allocation would put the global allocator at
//! the top of every profile.
//!
//! This file deliberately holds ONE test: the counting allocator is
//! process-global, and a concurrently running sibling test would bleed
//! its allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation (alloc +
/// realloc; frees are not counted — handing memory back is fine).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use simnet::{Agent, AgentId, Ctx, Sim, SimTime, Topology};

/// Agent 0 forwards every delivery to agent 1; both count arrivals.
struct Forwarder {
    received: usize,
}

impl Agent for Forwarder {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: AgentId, msg: u64) {
        self.received += 1;
        if ctx.me() == AgentId(0) {
            ctx.send(AgentId(1), msg, 16);
        }
    }
}

#[test]
fn steady_state_delivery_does_not_allocate() {
    const BATCH: usize = 500;

    // Zero RTT keeps every event in one calendar bucket, so the warm-up
    // batch grows that bucket's heap to the working-set size once.
    let topo = Topology::uniform(2, SimTime::ZERO);
    let agents = vec![Forwarder { received: 0 }, Forwarder { received: 0 }];
    let mut sim = Sim::new(topo, agents, 42);

    // Warm-up: size the queue, fault RNG streams, and agent state.
    for i in 0..BATCH {
        sim.inject(SimTime::ZERO, AgentId(0), i as u64);
    }
    sim.run();
    assert_eq!(sim.agent(AgentId(1)).received, BATCH);

    // Requesting threads must not cost anything here: this topology has
    // no positive latency floor, so there is no safe lookahead window
    // and the run falls back to the sequential loop — which must remain
    // allocation-free even with the parallel engine compiled in and
    // asked for (force_parallel leaves only the W = 0 gate standing, so
    // this holds on single-core hosts too). Parallel-eligible runs
    // allocate per-window shard state by design; that trade is
    // wall-clock for allocations and is measured by the bench suite,
    // not this gate.
    sim.set_threads(8);
    sim.force_parallel(true);

    // Measured: the identical workload through the warmed machinery.
    // Every inject, send, queue push/pop, and delivery must be
    // allocation-free.
    let now = sim.now();
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..BATCH {
        sim.inject(now, AgentId(0), i as u64);
    }
    sim.run();
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(sim.agent(AgentId(1)).received, 2 * BATCH);
    assert_eq!(
        delta, 0,
        "steady-state delivery allocated {delta} times over {BATCH} messages"
    );
    // The high-water mark survives the threads knob: it still reflects
    // the real queue population (the warm-up batch parked ~BATCH events
    // at one instant), not the per-shard accounting path that never ran.
    assert!(
        sim.stats().peak_queue >= BATCH as u64,
        "peak_queue {} lost the sequential high-water mark",
        sim.stats().peak_queue
    );
}
