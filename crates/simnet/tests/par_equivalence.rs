//! Sequential ≡ parallel equivalence for the conservative time-window
//! engine (`simnet::par`).
//!
//! The engine's contract is *bit-identical* replay of the sequential
//! loop at every thread count: same per-agent event logs (including
//! processing order at equal instants), same counters, same final
//! clock, same pending-event count. These tests drive a deliberately
//! hostile agent — same-instant self-send chains, fan-out to
//! pseudo-random peers, timers landing inside and outside windows —
//! under every fault knob the simulator has, and diff full run
//! snapshots between `threads = 1` and `threads ∈ {2, 3, 8}`.
//!
//! The proptest at the bottom is the window-safety invariant check: if
//! any event could execute before a causally-earlier cross-shard event,
//! its handler would observe different state and the per-agent logs
//! would diverge from the sequential run for *some* seed. Randomizing
//! topology, population, faults, and thread count searches for exactly
//! that seed.

use proptest::prelude::*;
use simnet::topology::Topology;
use simnet::{Agent, AgentId, Ctx, FaultPlane, NetStats, Sim, SimRng, SimTime, TimerTag};

/// Everything observable about a finished run. `peak_queue` is excluded:
/// it is an engine-internal high-water mark whose exact value legitimately
/// differs between the global calendar queue and sharded window heaps
/// (its parallel accounting has its own test below).
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: SimTime,
    pending: usize,
    stats: NetStats,
    logs: Vec<Vec<(u64, usize, u64)>>,
    checksums: Vec<u64>,
}

/// A stress agent: forwards TTL'd tokens to pseudo-random peers, chases
/// same-instant self-send chains, and keeps periodic timers running.
/// All randomness comes from a per-agent forked `SimRng` (never
/// `ctx.rng()`), so behaviour is a pure function of delivered history.
struct StressNode {
    n: usize,
    rng: SimRng,
    /// (now ns, from, payload) for every processed event, in order.
    log: Vec<(u64, usize, u64)>,
    /// Order-sensitive digest of the log.
    checksum: u64,
    timer_budget: u32,
    crashes_seen: u32,
}

impl StressNode {
    fn new(me: usize, n: usize, seed: u64) -> Self {
        StressNode {
            n,
            rng: SimRng::new(seed).fork(0xA6E27 ^ me as u64),
            log: Vec::new(),
            checksum: 0,
            timer_budget: 6,
            crashes_seen: 0,
        }
    }

    fn note(&mut self, now: SimTime, from: usize, payload: u64) {
        self.log.push((now.0, from, payload));
        self.checksum = self
            .checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(now.0 ^ (from as u64) << 48 ^ payload);
    }
}

impl Agent for StressNode {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        // Stagger first timers so windows see mixed timer/delivery batches.
        let jitter = self.rng.below(40);
        ctx.schedule(simnet::SimDuration::from_millis(5 + jitter), TimerTag(1));
        if ctx.me().0 % 3 == 0 {
            let dst = AgentId((ctx.me().0 + 1) % self.n);
            ctx.send(dst, 4 << 8, 64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: AgentId, msg: u64) {
        self.note(ctx.now(), from.0, msg);
        let ttl = msg >> 8;
        if ttl == 0 {
            return;
        }
        match msg & 0x3 {
            // Same-instant self-send chain: executes within this window,
            // exercising chain-key ordering depth.
            0 => ctx.send(ctx.me(), (ttl - 1) << 8 | 1, 16),
            // Fan out to two pseudo-random peers back to back — their
            // fault draws must replay in exactly this order.
            1 => {
                let a = AgentId(self.rng.index(self.n));
                let b = AgentId(self.rng.index(self.n));
                ctx.send(a, (ttl - 1) << 8 | 2, 96);
                ctx.send(b, (ttl - 1) << 8 | 3, 32);
            }
            // Short timer: may land inside or outside the current window.
            2 => ctx.schedule(
                simnet::SimDuration::from_micros(self.rng.below(3_000)),
                TimerTag(2),
            ),
            // Forward to a ring neighbour.
            _ => {
                let dst = AgentId((ctx.me().0 + 7) % self.n);
                ctx.send(dst, (ttl - 1) << 8, 48);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: TimerTag) {
        self.note(ctx.now(), usize::MAX, tag.0);
        if tag.0 == 1 && self.timer_budget > 0 {
            self.timer_budget -= 1;
            let dst = AgentId(self.rng.index(self.n));
            ctx.send(dst, 3 << 8 | 1, 128);
            ctx.schedule(
                simnet::SimDuration::from_millis(10 + self.rng.below(25)),
                TimerTag(1),
            );
        }
    }

    fn on_crash(&mut self) {
        self.crashes_seen += 1;
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.note(ctx.now(), usize::MAX - 1, 0);
        let dst = AgentId((ctx.me().0 + 1) % self.n);
        ctx.send(dst, 2 << 8 | 1, 64);
    }
}

#[derive(Clone, Copy, Default)]
struct Scenario {
    n: usize,
    seed: u64,
    faults: bool,
    service: bool,
    churn: bool,
    horizon_ms: Option<u64>,
}

fn build(sc: Scenario) -> Sim<StressNode> {
    let topo = Topology::king_like(sc.n, sc.seed, 180.0);
    let agents = (0..sc.n)
        .map(|i| StressNode::new(i, sc.n, sc.seed))
        .collect();
    let mut sim = Sim::new(topo, agents, sc.seed ^ 0x9E37);
    if sc.faults {
        sim.set_faults(FaultPlane {
            drop_rate: 0.08,
            dup_rate: 0.07,
            spike_rate: 0.1,
            spike_factor: 3.0,
            partitions: vec![simnet::PartitionWindow {
                from: SimTime::from_millis(40),
                until: SimTime::from_millis(90),
                island: (0..sc.n).map(|i| i % 2 == 0).collect(),
            }],
        });
    }
    if sc.service {
        sim.set_service_time(Some(simnet::SimDuration::from_micros(400)));
    }
    if sc.churn && sc.n >= 3 {
        sim.schedule_crash(SimTime::from_millis(30), AgentId(1));
        sim.schedule_restart(SimTime::from_millis(120), AgentId(1));
        sim.schedule_crash(SimTime::from_millis(55), AgentId(sc.n - 1));
    }
    // Several injections at one instant: tie-broken by queue order.
    sim.inject(SimTime::ZERO, AgentId(0), 5 << 8 | 1);
    sim.inject(SimTime::ZERO, AgentId(sc.n / 2), 5 << 8 | 2);
    sim.inject(SimTime::from_millis(2), AgentId(0), 4 << 8);
    sim
}

fn snapshot(sim: &Sim<StressNode>) -> Snapshot {
    let mut stats = sim.stats();
    stats.peak_queue = 0;
    Snapshot {
        now: sim.now(),
        pending: sim.pending_events(),
        stats,
        logs: sim.agents().map(|a| a.log.clone()).collect(),
        checksums: sim.agents().map(|a| a.checksum).collect(),
    }
}

fn run_with(sc: Scenario, threads: usize) -> Snapshot {
    let mut sim = build(sc);
    sim.set_threads(threads);
    sim.force_parallel(true);
    match sc.horizon_ms {
        Some(ms) => sim.run_until(SimTime::from_millis(ms)),
        None => sim.run(),
    }
    snapshot(&sim)
}

fn assert_equivalent(sc: Scenario) {
    let seq = run_with(sc, 1);
    assert!(
        seq.stats.events > 20,
        "scenario too quiet to be a meaningful check: {:?}",
        seq.stats
    );
    for threads in [2, 3, 8] {
        let par = run_with(sc, threads);
        assert_eq!(seq, par, "divergence at {threads} threads (n={})", sc.n);
    }
}

#[test]
fn plain_run_is_thread_count_invariant() {
    assert_equivalent(Scenario {
        n: 24,
        seed: 7,
        ..Scenario::default()
    });
}

#[test]
fn faulty_run_is_thread_count_invariant() {
    // Loss, duplication, spikes, and a partition window all draw from
    // the shared fault RNG streams; barrier replay must hit them in
    // sequential order.
    assert_equivalent(Scenario {
        n: 24,
        seed: 11,
        faults: true,
        ..Scenario::default()
    });
}

#[test]
fn service_and_churn_run_is_thread_count_invariant() {
    assert_equivalent(Scenario {
        n: 16,
        seed: 13,
        service: true,
        churn: true,
        ..Scenario::default()
    });
}

#[test]
fn everything_at_once_is_thread_count_invariant() {
    assert_equivalent(Scenario {
        n: 32,
        seed: 17,
        faults: true,
        service: true,
        churn: true,
        ..Scenario::default()
    });
}

#[test]
fn bounded_horizon_matches_sequential() {
    // run_until must include events at exactly the horizon and leave the
    // clock clamped identically.
    assert_equivalent(Scenario {
        n: 24,
        seed: 19,
        faults: true,
        horizon_ms: Some(60),
        ..Scenario::default()
    });
}

#[test]
fn segmented_runs_with_mid_run_injection_match() {
    let sc = Scenario {
        n: 20,
        seed: 23,
        faults: true,
        ..Scenario::default()
    };
    let run_segmented = |threads: usize| {
        let mut sim = build(sc);
        sim.set_threads(threads);
        sim.force_parallel(true);
        sim.run_until(SimTime::from_millis(50));
        sim.inject(SimTime::from_millis(50), AgentId(3), 5 << 8 | 1);
        sim.run_until(SimTime::from_millis(130));
        sim.inject(SimTime::from_millis(140), AgentId(9), 4 << 8 | 2);
        sim.run();
        snapshot(&sim)
    };
    let seq = run_segmented(1);
    for threads in [2, 8] {
        assert_eq!(
            seq,
            run_segmented(threads),
            "divergence at {threads} threads"
        );
    }
}

#[test]
fn dense_burst_fans_out_to_workers_and_matches() {
    // A same-instant burst of 6 messages per agent makes the first
    // window's batch far exceed the inline threshold at every thread
    // count, guaranteeing the worker fan-out path (not just the
    // sparse-inline path) is what's being diffed here.
    let run_burst = |threads: usize| {
        let mut sim = build(Scenario {
            n: 32,
            seed: 41,
            faults: true,
            service: true,
            ..Scenario::default()
        });
        for round in 0..6u64 {
            for i in 0..32usize {
                sim.inject(
                    SimTime::from_micros(round * 37),
                    AgentId(i),
                    3 << 8 | (round & 0x3),
                );
            }
        }
        sim.set_threads(threads);
        sim.force_parallel(true);
        sim.run();
        snapshot(&sim)
    };
    let seq = run_burst(1);
    assert!(seq.stats.events > 500, "burst too small: {:?}", seq.stats);
    for threads in [2, 8] {
        assert_eq!(seq, run_burst(threads), "divergence at {threads} threads");
    }
}

#[test]
fn more_threads_than_agents_is_safe() {
    // threads=8 over n=2: chunk size 1, every shard a single agent.
    assert_equivalent(Scenario {
        n: 2,
        seed: 29,
        ..Scenario::default()
    });
    // n=5 with uneven chunking (ceil(5/8)=1 → 5 shards).
    assert_equivalent(Scenario {
        n: 5,
        seed: 31,
        faults: true,
        ..Scenario::default()
    });
}

#[test]
fn single_agent_population_falls_back_to_sequential() {
    let topo = Topology::uniform(1, SimTime::from_millis(100));
    let mut sim = Sim::new(topo, vec![StressNode::new(0, 1, 3)], 3);
    sim.set_threads(8);
    sim.force_parallel(true);
    sim.inject(SimTime::ZERO, AgentId(0), 3 << 8);
    sim.run();
    assert!(sim.stats().events > 0);
}

#[test]
fn zero_latency_floor_falls_back_to_sequential() {
    // A topology with no positive one-way floor admits no safe window;
    // the run must silently take the sequential path and still finish.
    let run = |threads: usize| {
        let topo = Topology::uniform(4, SimTime::ZERO);
        let agents = (0..4).map(|i| StressNode::new(i, 4, 5)).collect();
        let mut sim = Sim::new(topo, agents, 5);
        sim.set_threads(threads);
        sim.force_parallel(true);
        sim.inject(SimTime::ZERO, AgentId(0), 4 << 8 | 1);
        sim.run();
        snapshot(&sim)
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn parallel_peak_queue_covers_shard_heaps() {
    // peak_queue under parallel execution must still be a high-water
    // mark of simultaneously queued events: at least the sequential
    // batch sizes seen at each barrier, and never absurdly small.
    let sc = Scenario {
        n: 24,
        seed: 37,
        ..Scenario::default()
    };
    let mut seq = build(sc);
    seq.run();
    let mut par = build(sc);
    par.set_threads(8);
    par.force_parallel(true);
    par.run();
    assert!(
        par.stats().peak_queue > 0,
        "parallel peak_queue never tracked"
    );
    // The sharded accounting sums per-shard maxima that need not peak in
    // the same window, so it may exceed the sequential figure — but a
    // correct high-water mark can never undershoot a single window's
    // global population, which the sequential peak bounds from below
    // only loosely. Sanity-bound it within a generous factor instead.
    let s = seq.stats().peak_queue as f64;
    let p = par.stats().peak_queue as f64;
    assert!(
        p >= s * 0.5 && p <= s * 16.0,
        "parallel peak_queue {p} implausible vs sequential {s}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Window-safety invariant, searched randomly: for any population,
    /// topology seed, fault mix, and thread count, the parallel engine
    /// reproduces the sequential run exactly. A single event executing
    /// before a causally-earlier cross-shard arrival would corrupt some
    /// agent's log or checksum.
    #[test]
    fn parallel_replay_is_exact(
        n in 2usize..28,
        seed in 0u64..1_000,
        threads in 2usize..9,
        faults in any::<bool>(),
        service in any::<bool>(),
        churn in any::<bool>(),
    ) {
        let sc = Scenario { n, seed, faults, service, churn, horizon_ms: None };
        let seq = run_with(sc, 1);
        let par = run_with(sc, threads);
        prop_assert_eq!(seq, par);
    }

    /// The lookahead the engine trusts: no cross-host pair is closer
    /// than the topology's claimed minimum one-way delay.
    #[test]
    fn lookahead_never_exceeds_any_link(seed in 0u64..500, n in 2usize..64) {
        let topo = Topology::king_like(n, seed, 180.0);
        let w = topo.min_one_way();
        prop_assert!(w.0 > 0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(topo.one_way(i, j) >= w);
                }
            }
        }
    }
}
