//! The opt-in routing-plane optimization layer: per-node shortcut and
//! hot-range result caches plus the knobs for sub-query batching.
//!
//! The paper routes every query fragment through the overlay from
//! scratch (§3.3) and resolves popular regions anew on every query.
//! DIMS-style caching at the routing tier and NearBucket-LSH's locality
//! observation both say the same thing: repeated similarity lookups in a
//! P2P index concentrate on hot regions, so remembering *who answered*
//! (shortcuts) and *what they answered* (results) removes most of the
//! per-query overlay work. Everything here is:
//!
//! * **opt-in** — a system built without [`RoutingOptConfig`] sends
//!   byte-identical messages to the pre-cache implementation;
//! * **deterministic** — caches are `BTreeMap`s with FIFO eviction
//!   driven only by simulated message order, never by wall-clock or hash
//!   seeds, so golden telemetry snapshots stay byte-identical per seed;
//! * **safe under staleness** — a shortcut that points at a node that no
//!   longer owns (or no longer *is*) degrades to one extra overlay hop:
//!   the receiver simply keeps routing with its own table. A result
//!   cache hit is served only when the cached region *provably contains*
//!   the query region and the cached candidate set was complete
//!   (coverage-checked against the answerers' owned ring arcs), so a hit
//!   equals the uncached answer exactly.
//!
//! Ring intervals here are **inclusive** `(lo, hi)` pairs in ring-key
//! space, with the same wrap convention as [`crate::store`]: `lo > hi`
//! denotes the wrapped union `[0, hi] ∪ [lo, u64::MAX]`.

use std::collections::{BTreeMap, VecDeque};

use chord::NodeRef;
use lph::Rect;
use metric::ObjectId;

/// Tunables of the routing-plane optimization layer. Attach via
/// [`crate::SystemConfig::routing_opt`]; the individual switches exist so
/// experiments can attribute wins to one mechanism at a time.
#[derive(Clone, Debug)]
pub struct RoutingOptConfig {
    /// Coalesce co-destined refine hand-offs into one batched wire
    /// message and result messages per origin likewise.
    pub batching: bool,
    /// Learn `key range -> owner` shortcuts from observed answers and
    /// consult them before the finger table.
    pub shortcuts: bool,
    /// Cache complete answers of hot ranges at the querying node.
    pub result_cache: bool,
    /// Maximum learned shortcut intervals per node (FIFO eviction).
    pub shortcut_capacity: usize,
    /// Maximum cached result regions per node (FIFO eviction).
    pub result_capacity: usize,
    /// A region whose full candidate set exceeds this is not cached
    /// (bounds both memory and the result-message payload).
    pub max_cached_entries: usize,
}

impl Default for RoutingOptConfig {
    fn default() -> Self {
        RoutingOptConfig {
            batching: true,
            shortcuts: true,
            result_cache: true,
            shortcut_capacity: 128,
            result_capacity: 32,
            max_cached_entries: 512,
        }
    }
}

impl RoutingOptConfig {
    /// Sanity-check the knobs; called when a node adopts the config.
    pub fn validate(&self) {
        assert!(
            self.shortcut_capacity >= 1,
            "shortcut capacity must be >= 1"
        );
        assert!(self.result_capacity >= 1, "result capacity must be >= 1");
        assert!(
            self.max_cached_entries >= 1,
            "cached-entry bound must be >= 1"
        );
    }
}

/// Split a possibly wrapping inclusive ring interval into its
/// non-wrapping parts (`lo > hi` ⇒ `[0, hi]` and `[lo, MAX]`).
pub fn split_wrap((lo, hi): (u64, u64)) -> Vec<(u64, u64)> {
    if lo <= hi {
        vec![(lo, hi)]
    } else {
        vec![(0, hi), (lo, u64::MAX)]
    }
}

/// Intersection of two possibly wrapping inclusive ring intervals, as
/// non-wrapping parts (possibly empty).
pub fn intersect_wrap(a: (u64, u64), b: (u64, u64)) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &(alo, ahi) in &split_wrap(a) {
        for &(blo, bhi) in &split_wrap(b) {
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
        }
    }
    out
}

/// Does the union of the non-wrapping inclusive intervals in `have`
/// cover every interval in `needed`? Adjacent intervals merge (`[0,3]`
/// and `[4,9]` jointly cover `[2,7]`).
pub fn covers(needed: &[(u64, u64)], have: &[(u64, u64)]) -> bool {
    let mut sorted = have.to_vec();
    sorted.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (lo, hi) in sorted {
        match merged.last_mut() {
            Some((_, e)) if lo <= e.saturating_add(1) => *e = (*e).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    needed
        .iter()
        .all(|&(lo, hi)| merged.iter().any(|&(s, e)| s <= lo && hi <= e))
}

/// A per-node cache of learned `key interval -> owner` shortcuts.
///
/// Populated from observed result messages (each answer names the
/// answerer's ring id and the arc it is authoritative for); consulted by
/// [`crate::routing::WithShortcuts`] before the finger table. Intervals
/// are kept disjoint — learning an overlapping interval replaces the
/// stale overlap — and evicted FIFO past the capacity. Stale entries are
/// harmless by construction (the target re-routes with its own table)
/// and are dropped eagerly when their owner becomes suspected dead.
#[derive(Clone, Debug, Default)]
pub struct ShortcutCache {
    /// `start -> (inclusive end, owner)`, non-wrapping and disjoint.
    map: BTreeMap<u64, (u64, NodeRef)>,
    /// Insertion order of interval starts, for FIFO eviction. May hold
    /// stale starts (replaced by overlap); eviction skips those.
    order: VecDeque<u64>,
    cap: usize,
}

impl ShortcutCache {
    /// An empty cache holding at most `cap` intervals.
    pub fn new(cap: usize) -> ShortcutCache {
        ShortcutCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Learned intervals currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been learned (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Learn that `owner` is authoritative for the (possibly wrapping)
    /// inclusive interval. Overlapping previously learned intervals are
    /// replaced. Returns the number of FIFO evictions performed.
    pub fn learn(&mut self, interval: (u64, u64), owner: NodeRef) -> u64 {
        let mut evicted = 0u64;
        for (lo, hi) in split_wrap(interval) {
            // Drop every stored interval overlapping [lo, hi]: they are
            // disjoint and sorted, so walk back from the last interval
            // starting at or before hi while it still reaches lo.
            let mut stale = Vec::new();
            for (&s, &(e, _)) in self.map.range(..=hi).rev() {
                if e < lo {
                    break;
                }
                stale.push(s);
            }
            for s in stale {
                self.map.remove(&s);
            }
            self.map.insert(lo, (hi, owner));
            self.order.push_back(lo);
            while self.map.len() > self.cap {
                match self.order.pop_front() {
                    Some(s) => {
                        if self.map.remove(&s).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        evicted
    }

    /// The learned owner of `key`, if a learned interval contains it.
    pub fn lookup(&self, key: u64) -> Option<NodeRef> {
        self.map
            .range(..=key)
            .next_back()
            .and_then(|(_, &(end, owner))| (end >= key).then_some(owner))
    }

    /// Drop every interval learned for ring id `id` (the node is
    /// suspected dead or its ownership moved). Returns how many were
    /// dropped.
    pub fn invalidate_owner(&mut self, id: u64) -> u64 {
        let before = self.map.len();
        self.map.retain(|_, (_, owner)| owner.id.0 != id);
        (before - self.map.len()) as u64
    }

    /// Drop everything (ring identifiers were reassigned wholesale).
    pub fn clear(&mut self) -> u64 {
        let n = self.map.len() as u64;
        self.map.clear();
        self.order.clear();
        n
    }
}

/// The radius bucket of a result-cache key: `floor(log2 r)`, clamped.
/// Degenerate radii (zero, negative, NaN, infinite) share a sentinel
/// bucket so they can never alias a real one.
pub fn radius_bucket(radius: f64) -> i16 {
    if radius.is_finite() && radius > 0.0 {
        radius.log2().floor().clamp(-4096.0, 4096.0) as i16
    } else {
        i16::MIN
    }
}

/// Key of one cached result region.
pub type ResultKey = (u8, u64, u32, i16);

/// A complete cached answer region: the exact query rect it was
/// assembled for and *every* entry whose stored point falls inside it
/// (pre-pruning, pre-top-k — a contained query re-ranks for its own
/// center, so nothing may be dropped at cache time).
#[derive(Clone, Debug)]
pub struct CachedRegion {
    /// The region the candidate set is complete for.
    pub rect: Rect,
    /// `(object, stored index-space point)` of every matching entry.
    pub entries: Vec<(ObjectId, Box<[f64]>)>,
}

/// A per-node cache of complete answers for hot ranges, keyed by
/// `(index, prefix_key, prefix_length, radius bucket)` with exact
/// containment checks on lookup and FIFO eviction.
#[derive(Clone, Debug, Default)]
pub struct ResultCache {
    map: BTreeMap<ResultKey, CachedRegion>,
    order: VecDeque<ResultKey>,
    cap: usize,
}

impl ResultCache {
    /// An empty cache holding at most `cap` regions.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Cached regions currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Store a complete region under its key. Returns FIFO evictions.
    pub fn insert(&mut self, key: ResultKey, region: CachedRegion) -> u64 {
        let mut evicted = 0u64;
        self.map.insert(key, region);
        self.order.push_back(key);
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(k) => {
                    if self.map.remove(&k).is_some() {
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }

    /// A cached region that *provably contains* `rect`: same index, same
    /// radius bucket, keyed by `prefix` or any of its ancestors (a
    /// containing query's enclosing prefix is always on the ancestor
    /// chain), and passing the exact `contains_rect` check.
    pub fn lookup(
        &self,
        index: u8,
        prefix: lph::Prefix,
        bucket: i16,
        rect: &Rect,
    ) -> Option<&CachedRegion> {
        for len in (0..=prefix.len()).rev() {
            let p = lph::Prefix::of_key(prefix.key(), len);
            if let Some(region) = self.map.get(&(index, p.key(), len, bucket)) {
                if region.rect.contains_rect(rect) {
                    return Some(region);
                }
            }
        }
        None
    }

    /// Drop every cached region of `index` whose rect contains `point`
    /// (a publication landed inside it, so the cached candidate set is
    /// no longer complete). Returns how many regions were dropped.
    pub fn invalidate_containing(&mut self, index: u8, point: &[f64]) -> u64 {
        let before = self.map.len();
        self.map
            .retain(|k, region| k.0 != index || !region.rect.contains_point(point));
        (before - self.map.len()) as u64
    }

    /// Drop every cached region of `index` (migration or rebalance moved
    /// entries wholesale). `None` clears all indexes.
    pub fn clear_index(&mut self, index: Option<u8>) -> u64 {
        let before = self.map.len();
        match index {
            Some(ix) => self.map.retain(|k, _| k.0 != ix),
            None => self.map.clear(),
        }
        (before - self.map.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(id: u64, addr: usize) -> NodeRef {
        NodeRef::new(id, addr)
    }

    #[test]
    fn wrap_splitting_and_intersection() {
        assert_eq!(split_wrap((3, 9)), vec![(3, 9)]);
        assert_eq!(split_wrap((9, 3)), vec![(0, 3), (9, u64::MAX)]);
        assert_eq!(intersect_wrap((0, 10), (5, 20)), vec![(5, 10)]);
        assert_eq!(intersect_wrap((5, 20), (25, 30)), vec![]);
        // Wrapped arc ∩ plain interval hits both sides.
        assert_eq!(
            intersect_wrap((u64::MAX - 1, 1), (0, u64::MAX)),
            vec![(0, 1), (u64::MAX - 1, u64::MAX)]
        );
    }

    #[test]
    fn coverage_merges_adjacent_intervals() {
        assert!(covers(&[(2, 7)], &[(0, 3), (4, 9)]));
        assert!(covers(&[(0, 0)], &[(0, 10)]));
        assert!(!covers(&[(2, 7)], &[(0, 3), (5, 9)]), "gap at 4");
        assert!(covers(&[], &[]));
        assert!(!covers(&[(1, 1)], &[]));
        // Saturation at the top of the ring.
        assert!(covers(
            &[(u64::MAX - 5, u64::MAX)],
            &[(u64::MAX - 9, u64::MAX)]
        ));
    }

    #[test]
    fn shortcut_learn_lookup_and_overlap_replacement() {
        let mut c = ShortcutCache::new(8);
        assert!(c.is_empty());
        c.learn((10, 20), nr(100, 1));
        c.learn((30, 40), nr(200, 2));
        assert_eq!(c.lookup(15).unwrap().addr.0, 1);
        assert_eq!(c.lookup(40).unwrap().addr.0, 2);
        assert!(c.lookup(25).is_none());
        assert!(c.lookup(9).is_none());
        // Overlapping learn replaces the stale interval.
        c.learn((15, 35), nr(300, 3));
        assert_eq!(c.lookup(18).unwrap().addr.0, 3);
        assert_eq!(c.lookup(33).unwrap().addr.0, 3);
        assert!(c.lookup(12).is_none(), "replaced interval is gone whole");
    }

    #[test]
    fn shortcut_wrapping_interval_spans_the_seam() {
        let mut c = ShortcutCache::new(8);
        c.learn((u64::MAX - 10, 5), nr(7, 4));
        assert_eq!(c.lookup(0).unwrap().addr.0, 4);
        assert_eq!(c.lookup(u64::MAX).unwrap().addr.0, 4);
        assert!(c.lookup(6).is_none());
        assert_eq!(c.len(), 2, "wrap stores two non-wrapping parts");
    }

    #[test]
    fn shortcut_fifo_eviction_and_owner_invalidation() {
        let mut c = ShortcutCache::new(2);
        assert_eq!(c.learn((0, 9), nr(1, 1)), 0);
        assert_eq!(c.learn((20, 29), nr(2, 2)), 0);
        assert_eq!(c.learn((40, 49), nr(3, 3)), 1, "oldest evicted");
        assert!(c.lookup(5).is_none());
        assert!(c.lookup(45).is_some());
        c.learn((60, 69), nr(3, 3));
        assert_eq!(c.invalidate_owner(3), 2);
        assert!(c.is_empty());
        assert_eq!(c.clear(), 0);
    }

    #[test]
    fn radius_buckets_separate_scales() {
        assert_eq!(radius_bucket(1.0), 0);
        assert_eq!(radius_bucket(1.5), 0);
        assert_eq!(radius_bucket(2.0), 1);
        assert_eq!(radius_bucket(0.5), -1);
        assert_ne!(radius_bucket(4.0), radius_bucket(2.0));
        assert_eq!(radius_bucket(0.0), i16::MIN);
        assert_eq!(radius_bucket(-3.0), i16::MIN);
        assert_eq!(radius_bucket(f64::NAN), i16::MIN);
        assert_eq!(radius_bucket(f64::INFINITY), i16::MIN);
    }

    #[test]
    fn result_cache_ancestor_walk_and_containment() {
        let mut c = ResultCache::new(4);
        let big = Rect::new(vec![0.0, 0.0], vec![4.0, 4.0]);
        let key_prefix = lph::Prefix::of_key(0b1010 << 60, 2);
        c.insert(
            (0, key_prefix.key(), 2, 3),
            CachedRegion {
                rect: big.clone(),
                entries: vec![(ObjectId(1), vec![1.0, 1.0].into_boxed_slice())],
            },
        );
        // A deeper prefix on the same chain with a contained rect hits.
        let deep = lph::Prefix::of_key(0b10101 << 59, 5);
        let small = Rect::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert!(c.lookup(0, deep, 3, &small).is_some());
        // Wrong bucket, wrong index, or an uncontained rect all miss.
        assert!(c.lookup(0, deep, 4, &small).is_none());
        assert!(c.lookup(1, deep, 3, &small).is_none());
        let wide = Rect::new(vec![1.0, 1.0], vec![5.0, 2.0]);
        assert!(c.lookup(0, deep, 3, &wide).is_none());
        // Off-chain prefix (different top bits) misses.
        let off = lph::Prefix::of_key(0b0101 << 60, 4);
        assert!(c.lookup(0, off, 3, &small).is_none());
    }

    #[test]
    fn result_cache_eviction_and_invalidation() {
        let mut c = ResultCache::new(2);
        let r = |lo: f64, hi: f64| Rect::new(vec![lo], vec![hi]);
        let reg = |lo: f64, hi: f64| CachedRegion {
            rect: r(lo, hi),
            entries: Vec::new(),
        };
        assert_eq!(c.insert((0, 0, 1, 0), reg(0.0, 1.0)), 0);
        assert_eq!(c.insert((0, 1, 1, 0), reg(2.0, 3.0)), 0);
        assert_eq!(c.insert((0, 2, 1, 0), reg(4.0, 5.0)), 1);
        assert_eq!(c.len(), 2);
        // Publication inside a cached rect drops exactly that region.
        assert_eq!(c.invalidate_containing(0, &[2.5]), 1);
        assert_eq!(c.invalidate_containing(0, &[9.9]), 0);
        assert_eq!(c.clear_index(Some(0)), 1);
        assert!(c.is_empty());
        c.insert((3, 0, 1, 0), reg(0.0, 1.0));
        assert_eq!(c.clear_index(None), 1);
    }
}
