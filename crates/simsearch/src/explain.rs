//! Query explanation: trace a range query's resolution offline.
//!
//! [`SearchSystem::explain`] replays Algorithms 3–5 against the system's
//! routing tables *without* the event simulation, recording every step —
//! which node handled which fragment, where it split, who answered what.
//! The trace is exact (the same pure functions drive the simulated
//! execution), so it is the tool for answering "why did this query visit
//! 14 nodes?" and for teaching the embedded-tree mechanics.

use chord::ChordId;
use lph::{Prefix, Rect};
use simnet::AgentId;

use crate::msg::{query_msg_bytes, QueryId, SubQueryMsg};
use crate::routing::{route_subquery, surrogate_refine, Action};
use crate::system::SearchSystem;

/// One step of a query's resolution.
#[derive(Clone, Debug)]
pub struct ExplainStep {
    /// The node the fragment was processed on.
    pub at: AgentId,
    /// Overlay hops taken to reach this step.
    pub hops: u32,
    /// The fragment's prefix length on arrival.
    pub prefix_len: u32,
    /// What happened.
    pub what: StepKind,
}

/// What a node did with a fragment.
#[derive(Clone, Debug)]
pub enum StepKind {
    /// Answered locally with this many matching entries.
    Answer {
        /// Matching entries in the node's store.
        matches: usize,
    },
    /// Handed to the surrogate (owner) node.
    Handoff {
        /// The surrogate's address.
        to: AgentId,
    },
    /// Forwarded along the DHT links.
    Forward {
        /// The next hop's address.
        to: AgentId,
    },
}

/// The full trace of one query.
#[derive(Clone, Debug, Default)]
pub struct ExplainReport {
    /// Every step, in processing order.
    pub steps: Vec<ExplainStep>,
    /// Distinct nodes that answered.
    pub answering_nodes: Vec<AgentId>,
    /// Total matching entries across answers (before top-k merging).
    pub total_matches: usize,
    /// Inter-node messages the resolution would send.
    pub messages: usize,
    /// Estimated query-delivery bytes (paper size model, unbatched).
    pub est_query_bytes: u64,
    /// Maximum hops to any answering node.
    pub max_hops: u32,
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} steps, {} messages, {} answering nodes, {} matches, max {} hops",
            self.steps.len(),
            self.messages,
            self.answering_nodes.len(),
            self.total_matches,
            self.max_hops
        )?;
        for s in &self.steps {
            let what = match &s.what {
                StepKind::Answer { matches } => format!("ANSWER {matches} entries"),
                StepKind::Handoff { to } => format!("handoff -> node {}", to.0),
                StepKind::Forward { to } => format!("forward -> node {}", to.0),
            };
            writeln!(
                f,
                "  [hop {:>2}] node {:>4} (prefix {:>2} bits): {what}",
                s.hops, s.at.0, s.prefix_len
            )?;
        }
        Ok(())
    }
}

impl SearchSystem {
    /// Trace the resolution of a range query from `origin` without
    /// running the simulator. The trace matches what the simulated
    /// execution does (same routing functions, same tables).
    pub fn explain(&self, index: u8, point: &[f64], radius: f64, origin: usize) -> ExplainReport {
        let grid = &self.grids[index as usize];
        let rot = self.rotations[index as usize];
        let rect = Rect::ball(point, radius, grid.bounds());
        let prefix = grid.enclosing_prefix(&rect);
        let k = grid.dims();
        let sq = SubQueryMsg {
            qid: QueryId::MAX, // never collides with real workload ids
            index,
            rect,
            prefix,
            hops: 0,
            origin: AgentId(origin),
            ball: None,
            shortcut: false,
        };

        let mut report = ExplainReport::default();
        let mut work: Vec<(AgentId, SubQueryMsg, bool)> = vec![(AgentId(origin), sq, false)];
        while let Some((at, q, is_refine)) = work.pop() {
            let node = self.sim.agent(at);
            let actions = if is_refine {
                surrogate_refine(&node.table, grid, rot, q, true)
            } else {
                route_subquery(&node.table, grid, rot, q, true)
            };
            for a in actions {
                match a {
                    Action::Answer(ans) => {
                        let matches = node.indexes[index as usize]
                            .store
                            .matching(&ans.rect)
                            .count();
                        report.total_matches += matches;
                        report.max_hops = report.max_hops.max(ans.hops);
                        if !report.answering_nodes.contains(&at) {
                            report.answering_nodes.push(at);
                        }
                        report.steps.push(ExplainStep {
                            at,
                            hops: ans.hops,
                            prefix_len: ans.prefix.len(),
                            what: StepKind::Answer { matches },
                        });
                    }
                    Action::Handoff { to, mut sq } => {
                        report.messages += 1;
                        report.est_query_bytes += query_msg_bytes(1, k) as u64;
                        report.steps.push(ExplainStep {
                            at,
                            hops: sq.hops,
                            prefix_len: sq.prefix.len(),
                            what: StepKind::Handoff { to },
                        });
                        sq.hops += 1;
                        work.push((to, sq, true));
                    }
                    Action::Forward { to, mut sq } => {
                        report.messages += 1;
                        report.est_query_bytes += query_msg_bytes(1, k) as u64;
                        report.steps.push(ExplainStep {
                            at,
                            hops: sq.hops,
                            prefix_len: sq.prefix.len(),
                            what: StepKind::Forward { to },
                        });
                        sq.hops += 1;
                        work.push((to, sq, false));
                    }
                }
            }
            assert!(report.messages < 100_000, "explain runaway — routing bug");
        }
        report
    }

    /// Render the *recorded* telemetry trace of a simulated query as a
    /// human-readable query plan. Unlike [`SearchSystem::explain`], which
    /// replays routing offline, this reports what actually happened on
    /// the simulated wire — batching, shared paths and all. `None` when
    /// the query id was never traced.
    pub fn query_plan(&self, qid: QueryId) -> Option<String> {
        use crate::telemetry::TraceEvent;
        use std::fmt::Write;
        let trace = self.telemetry().trace(qid)?;
        let s = trace.summary();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query {qid}: issued at node {}, {} answering nodes, max {} hops",
            trace.origin, s.answers, s.hops
        );
        let _ = writeln!(
            out,
            "  {} splits ({} deferred on shared paths), {} refines, {} peels",
            s.splits, s.shared_paths, s.refines, s.peels
        );
        let _ = writeln!(
            out,
            "  {} query bytes in {} messages, {} result bytes; \
             scanned {}, matched {}, returned {}",
            s.query_bytes,
            s.forwards + s.handoffs,
            s.result_bytes,
            s.scanned,
            s.matched,
            s.returned
        );
        for e in &trace.events {
            let line = match *e {
                TraceEvent::Forward {
                    from,
                    to,
                    subqueries,
                    bytes,
                } => {
                    format!("forward node {from} -> node {to} ({subqueries} subqueries, {bytes} B)")
                }
                TraceEvent::Handoff { from, to, bytes } => {
                    format!("handoff node {from} -> node {to} ({bytes} B)")
                }
                TraceEvent::SharedPath { at, prefix_len } => {
                    format!("shared path at node {at} (prefix {prefix_len} bits)")
                }
                TraceEvent::Split { at, prefix_len } => {
                    format!("split at node {at} (prefix {prefix_len} bits)")
                }
                TraceEvent::Refine { at, prefix_len } => {
                    format!("refine at node {at} (prefix {prefix_len} bits)")
                }
                TraceEvent::Peel { at, prefix_len } => {
                    format!("peel at node {at} (child prefix {prefix_len} bits)")
                }
                TraceEvent::Answer {
                    at,
                    hops,
                    scanned,
                    matched,
                    returned,
                    bytes,
                } => format!(
                    "ANSWER at node {at}: scanned {scanned}, matched {matched}, \
                     returned {returned} (hop {hops}, {bytes} B)"
                ),
            };
            let _ = writeln!(out, "    {line}");
        }
        Some(out)
    }

    /// The node that owns a given index-space point (diagnostics).
    pub fn owner_of_point(&self, index: u8, point: &[f64]) -> AgentId {
        let grid = &self.grids[index as usize];
        let rot = self.rotations[index as usize];
        let clamped: Vec<f64> = point
            .iter()
            .enumerate()
            .map(|(d, &v)| v.clamp(grid.bounds().lo()[d], grid.bounds().hi()[d]))
            .collect();
        let key = rot.to_ring(grid.hash(&clamped));
        self.ring().owner_of(ChordId(key)).addr
    }

    /// The prefix a query region would be routed with (diagnostics).
    pub fn enclosing_prefix_of(&self, index: u8, point: &[f64], radius: f64) -> Prefix {
        let grid = &self.grids[index as usize];
        let rect = Rect::ball(point, radius, grid.bounds());
        grid.enclosing_prefix(&rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::DistanceOracle;
    use crate::system::{IndexSpec, QuerySpec, SystemConfig};
    use metric::ObjectId;
    use std::sync::Arc;

    fn world() -> (SearchSystem, Vec<Vec<f64>>) {
        let side = 20usize;
        let points: Vec<Vec<f64>> = (0..side * side)
            .map(|i| {
                vec![
                    (i % side) as f64 * 100.0 / side as f64,
                    (i / side) as f64 * 100.0 / side as f64,
                ]
            })
            .collect();
        let op = points.clone();
        let oracle: DistanceOracle = Arc::new(move |_q, obj: ObjectId| {
            let p = &op[obj.0 as usize];
            ((p[0] - 50.0).powi(2) + (p[1] - 50.0).powi(2)).sqrt()
        });
        let system = SearchSystem::build(
            SystemConfig {
                n_nodes: 20,
                depth: 16,
                ..SystemConfig::default()
            },
            &[IndexSpec {
                name: "explain".into(),
                boundary: vec![(0.0, 100.0); 2],
                points: points.clone(),
                rotate: false,
                rotation: None,
            }],
            oracle,
        );
        (system, points)
    }

    #[test]
    fn explain_matches_brute_force_counts() {
        let (system, points) = world();
        let report = system.explain(0, &[50.0, 50.0], 12.0, 3);
        // Matches = objects in the clipped box (dedup: explain counts
        // per-answer matches; duplicates can only arise from boundary
        // overhang answers, absent on this grid-aligned world).
        let expect = points
            .iter()
            .filter(|p| (p[0] - 50.0).abs() <= 12.0 && (p[1] - 50.0).abs() <= 12.0)
            .count();
        assert_eq!(report.total_matches, expect, "{report}");
        assert!(!report.answering_nodes.is_empty());
        assert!(report.messages < 200);
        // The display renders every step.
        let text = format!("{report}");
        assert!(text.contains("ANSWER"));
    }

    #[test]
    fn explain_agrees_with_simulated_execution() {
        let (mut system, _points) = world();
        let report = system.explain(0, &[30.0, 70.0], 9.0, 7);
        // Run the same query for real; the merged result count must not
        // exceed explain's match count, and the answering-node count
        // must line up with the responses.
        let outcomes = system.run_queries(
            &[QuerySpec {
                index: 0,
                point: vec![30.0, 70.0],
                radius: 9.0,
                truth: vec![],
            }],
            1.0,
        );
        // Every answering node sends at least one result message (a node
        // visited by several independent fragments replies per visit, so
        // responses can exceed the distinct-node count).
        assert!(outcomes[0].responses as usize >= report.answering_nodes.len());
        assert_eq!(outcomes[0].hops, report.max_hops);
        // The recorded trace renders as a query plan and agrees on hops.
        let plan = system.query_plan(0).expect("query 0 was traced");
        assert!(plan.contains("ANSWER"), "{plan}");
        assert!(
            plan.contains(&format!("max {} hops", outcomes[0].hops)),
            "{plan}"
        );
        assert!(system.query_plan(999).is_none());
    }

    #[test]
    fn diagnostics_helpers() {
        let (system, _) = world();
        let owner = system.owner_of_point(0, &[10.0, 10.0]);
        assert!(owner.0 < 20);
        let p = system.enclosing_prefix_of(0, &[10.0, 10.0], 1.0);
        assert!(!p.is_empty());
        // A huge radius forces the root prefix.
        let root = system.enclosing_prefix_of(0, &[50.0, 50.0], 60.0);
        assert_eq!(root.len(), 0);
    }
}
