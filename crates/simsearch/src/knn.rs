//! k-nearest-neighbor search by iterative range expansion.
//!
//! The architecture natively answers *range* queries; the paper's recall
//! evaluation (and its future-work list) points at k-NN as the query
//! users actually issue. The classical reduction is implemented here: a
//! range query with a small initial radius, grown geometrically until
//! the merged result set certifies itself —
//!
//! > once `k` results are in hand and the `k`-th distance `d_k <= r`,
//! > the result is the exact k-NN: any closer object would satisfy
//! > `d < d_k <= r` and the range resolution (which is exact, see
//! > `tests/coverage.rs`) would have returned it.
//!
//! Every round reuses the same query id, so the per-query bandwidth
//! accounting naturally accumulates the *total* cost of the k-NN
//! conversation, which is what [`KnnOutcome`] reports.

use metric::ObjectId;
use simnet::{AgentId, SimDuration, SimTime};

use crate::msg::{QueryId, SearchMsg, SubQueryMsg};
use crate::system::SearchSystem;
use lph::Rect;

/// Result of an iterative k-NN search.
#[derive(Clone, Debug)]
pub struct KnnOutcome {
    /// The k nearest objects found, ascending by distance.
    pub results: Vec<(ObjectId, f64)>,
    /// Range-query rounds used.
    pub rounds: u32,
    /// The radius of the final round.
    pub final_radius: f64,
    /// True when the `d_k <= r` certificate held (exact k-NN); false
    /// when the search exhausted its rounds or the whole space held
    /// fewer than `k` objects in range.
    pub certified: bool,
    /// Total query-delivery bytes across all rounds.
    pub query_bytes: u64,
    /// Total result-delivery bytes across all rounds.
    pub result_bytes: u64,
    /// Sum of per-round completion latencies (the sequential wall time a
    /// real client would observe), milliseconds.
    pub total_ms: f64,
}

impl SearchSystem {
    /// Iterative k-NN: grow the search radius by `growth` per round
    /// (e.g. 2.0) starting from `initial_radius`, for at most
    /// `max_rounds` rounds.
    ///
    /// `qid` must be a query id the system's distance oracle understands
    /// (all rounds reuse it). Requires `k <= knn_k` of the system config
    /// so per-node replies cannot truncate below `k`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_knn(
        &mut self,
        qid: QueryId,
        index: u8,
        point: &[f64],
        k: usize,
        initial_radius: f64,
        growth: f64,
        max_rounds: u32,
    ) -> KnnOutcome {
        assert!(k >= 1 && k <= self.cfg.knn_k, "k must be within knn_k");
        assert!(initial_radius > 0.0 && growth > 1.0 && max_rounds >= 1);
        let grid = std::sync::Arc::clone(&self.grids[index as usize]);
        // A radius at least the widest dimension span makes the clipped
        // query rect cover the whole index space: past that, one more
        // round is definitive.
        let full_span = (0..grid.dims())
            .map(|d| grid.bounds().hi()[d] - grid.bounds().lo()[d])
            .fold(0.0f64, f64::max);

        let mut radius = initial_radius;
        let mut rounds = 0;
        let mut certified = false;
        let mut total_ms = 0.0;
        let mut results: Vec<(ObjectId, f64)> = Vec::new();
        let mut rng = simnet::SimRng::new(self.cfg.seed).fork(0x6A ^ qid as u64);
        let center: std::sync::Arc<[f64]> = point.into();
        while rounds < max_rounds {
            rounds += 1;
            let origin = AgentId(rng.index(self.cfg.n_nodes));
            let rect = Rect::ball(point, radius, grid.bounds());
            let prefix = grid.enclosing_prefix(&rect);
            let at: SimTime = self.sim.now() + SimDuration::from_millis(1);
            self.sim.inject(
                at,
                origin,
                SearchMsg::Issue(SubQueryMsg {
                    qid,
                    index,
                    rect,
                    prefix,
                    hops: 0,
                    origin,
                    // This round's ball: pruning stays exact per round
                    // because certification only inspects distances
                    // `<= radius`, which the bound can never exclude.
                    ball: Some(crate::msg::QueryBall {
                        center: std::sync::Arc::clone(&center),
                        radius,
                    }),
                    shortcut: false,
                }),
            );
            self.sim.run();
            let iq = self.sim.agent(origin).issued[&qid].clone();
            total_ms += iq
                .last_result
                .map(|t| t.since(iq.issued_at).as_millis_f64())
                .unwrap_or(0.0);
            results = iq.merged;
            let full_space = radius >= full_span;
            if results.len() >= k && results[k - 1].1 <= radius {
                certified = true;
                results.truncate(k);
                break;
            }
            if full_space {
                // Whole space searched: the result is as complete as the
                // data allows; certify only if k were actually found and
                // within... distance beyond the radius cannot exist when
                // the rect is the entire space AND the metric query's
                // superset property holds, so certify on count alone.
                certified = results.len() >= k;
                results.truncate(k);
                break;
            }
            radius *= growth;
        }
        results.truncate(k);

        // Fold accumulated bandwidth for this qid across every node.
        let mut query_bytes = 0;
        let mut result_bytes = 0;
        for node in self.sim.agents() {
            let row = node.costs.row(qid);
            query_bytes += row.query_bytes;
            result_bytes += row.result_bytes;
        }
        KnnOutcome {
            results,
            rounds,
            final_radius: radius,
            certified,
            query_bytes,
            result_bytes,
            total_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::DistanceOracle;
    use crate::system::{IndexSpec, SystemConfig};
    use metric::{Metric, L2};
    use std::sync::Arc;

    /// 1000 grid points in [0,100]^2; the index space is the data space.
    fn world(knn_k: usize) -> (SearchSystem, Vec<Vec<f64>>, Vec<f64>) {
        let side = 32usize;
        let points: Vec<Vec<f64>> = (0..side * side)
            .map(|i| {
                vec![
                    (i % side) as f64 * 100.0 / side as f64,
                    (i / side) as f64 * 100.0 / side as f64,
                ]
            })
            .collect();
        let qpoint = vec![47.3, 52.9];
        let op = points.clone();
        let oq = qpoint.clone();
        let oracle: DistanceOracle = Arc::new(move |_qid: QueryId, obj: metric::ObjectId| {
            let p = &op[obj.0 as usize];
            let a: Vec<f32> = p.iter().map(|&x| x as f32).collect();
            let b: Vec<f32> = oq.iter().map(|&x| x as f32).collect();
            L2::new().distance(&a, &b)
        });
        let system = SearchSystem::build(
            SystemConfig {
                n_nodes: 24,
                knn_k,
                depth: 16,
                ..SystemConfig::default()
            },
            &[IndexSpec {
                name: "knn-test".into(),
                boundary: vec![(0.0, 100.0); 2],
                points: points.clone(),
                rotate: false,
                rotation: None,
            }],
            oracle,
        );
        (system, points, qpoint)
    }

    fn brute_knn(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<ObjectId> {
        let mut d: Vec<(ObjectId, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let dist = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2)).sqrt();
                (ObjectId(i as u32), dist)
            })
            .collect();
        d.sort_by(|a, b| {
            // Match the system's f32-precision oracle ordering.
            let fa = a.1 as f32;
            let fb = b.1 as f32;
            fa.total_cmp(&fb).then(a.0.cmp(&b.0))
        });
        d.into_iter().take(k).map(|(id, _)| id).collect()
    }

    #[test]
    fn knn_is_exact_and_certified() {
        let (mut system, points, q) = world(10);
        let out = system.run_knn(0, 0, &q, 10, 1.0, 2.0, 16);
        assert!(out.certified, "search must certify: {out:?}");
        assert_eq!(out.results.len(), 10);
        let got: Vec<ObjectId> = out.results.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, brute_knn(&points, &q, 10));
        assert!(out.rounds > 1, "tiny initial radius needs expansion");
        assert!(out.query_bytes > 0 && out.result_bytes > 0);
        assert!(out.total_ms > 0.0);
    }

    #[test]
    fn generous_initial_radius_finishes_in_one_round() {
        let (mut system, points, q) = world(10);
        let out = system.run_knn(0, 0, &q, 5, 30.0, 2.0, 16);
        assert_eq!(out.rounds, 1);
        assert!(out.certified);
        let got: Vec<ObjectId> = out.results.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, brute_knn(&points, &q, 5));
    }

    #[test]
    fn more_rounds_cost_more_bandwidth() {
        let (mut a, _, q) = world(10);
        let (mut b, _, _) = world(10);
        let tiny = a.run_knn(0, 0, &q, 10, 0.5, 1.5, 24);
        let generous = b.run_knn(0, 0, &q, 10, 20.0, 2.0, 4);
        assert!(tiny.rounds > generous.rounds);
        assert!(
            tiny.query_bytes > generous.query_bytes,
            "expansion rounds should cost extra delivery: {} vs {}",
            tiny.query_bytes,
            generous.query_bytes
        );
    }

    #[test]
    fn k_larger_than_dataset_terminates_uncertified_capped() {
        let side = 3usize; // 9 objects
        let points: Vec<Vec<f64>> = (0..side * side)
            .map(|i| vec![(i % side) as f64, (i / side) as f64])
            .collect();
        let op = points.clone();
        let oracle: DistanceOracle = Arc::new(move |_q: QueryId, obj: metric::ObjectId| {
            let p = &op[obj.0 as usize];
            (p[0] * p[0] + p[1] * p[1]).sqrt()
        });
        let mut system = SearchSystem::build(
            SystemConfig {
                n_nodes: 8,
                knn_k: 20,
                depth: 12,
                ..SystemConfig::default()
            },
            &[IndexSpec {
                name: "knn-tiny".into(),
                boundary: vec![(0.0, 2.0); 2],
                points,
                rotate: false,
                rotation: None,
            }],
            oracle,
        );
        let out = system.run_knn(0, 0, &[0.0, 0.0], 20, 0.5, 2.0, 10);
        assert_eq!(out.results.len(), 9, "only 9 objects exist");
        assert!(!out.certified, "cannot certify 20-NN of 9 objects");
    }

    #[test]
    #[should_panic(expected = "within knn_k")]
    fn k_above_node_cap_is_rejected() {
        let (mut system, _, q) = world(5);
        let _ = system.run_knn(0, 0, &q, 10, 1.0, 2.0, 4);
    }
}
