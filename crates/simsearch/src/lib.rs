//! # simsearch — the landmark-based distributed similarity index
//!
//! This crate is the paper's primary contribution: a distributed index
//! platform on Chord that answers near-neighbor queries in arbitrary
//! metric spaces. The pieces:
//!
//! * [`msg`] — wire messages and the paper's explicit byte-size model
//!   (query message `20 + 4 + n·(4k + 9)` bytes, result message
//!   `20 + 6·entries`);
//! * [`store`] — per-node index-entry storage, keyed by ring position;
//! * [`routing`] — Algorithms 3 (QueryRouting), 4 (QuerySplit) and 5
//!   (SurrogateRefine) as pure functions over a routing table, unit- and
//!   property-tested against a brute-force coverage oracle;
//! * [`node`] — the network agent tying routing to [`simnet`] delivery,
//!   with per-query cost accounting;
//! * [`load`] — load balancing: the static space-mapping rotation is in
//!   [`lph::Rotation`]; this module adds the paper's *dynamic load
//!   migration* (probe level `P_l`, threshold factor `δ`, leave-and-
//!   rejoin at the split point);
//! * [`system`] — the experiment driver: build a stabilized ring,
//!   publish entries, optionally balance load, inject a query workload,
//!   run the simulation, and fold per-query metrics (hops, response
//!   time, maximum latency, bandwidth, recall — §4.1's metric set);
//! * [`resilience`] — opt-in retry/failover and replicated publication
//!   so queries keep full recall under the fault plane [`simnet`]
//!   injects (loss, latency spikes, crash/restart churn);
//! * [`cache`] — the opt-in routing-plane optimization layer: learned
//!   key-range → owner shortcuts, a bounded hot-range result cache, and
//!   (in [`node`]) sub-query batching; invalidated by the resilience
//!   suspicion signal and data-plane mutation, never serving stale
//!   answers;
//! * [`stats`] — result aggregation helpers (percentiles, series);
//! * [`telemetry`] — per-query traces (hop/split/refine/answer events)
//!   plus the run-wide counter registry; serialized canonically so
//!   identical seeds produce byte-identical snapshots (the CI gate).
//!
//! The crate is deliberately independent of any particular metric: the
//! caller maps objects and queries into index-space points (see
//! [`landmark`]) and supplies a [`msg::QueryDistance`] oracle so index
//! nodes can rank their local candidates by true distance, mirroring a
//! deployment where index entries carry enough of the object to evaluate
//! the black-box distance.

pub mod cache;
pub mod explain;
pub mod knn;
pub mod load;
pub mod loadgen;
pub mod msg;
pub mod node;
pub mod overlay;
pub mod refresh;
pub mod resilience;
pub mod routing;
pub mod stats;
pub mod store;
pub mod system;
pub mod telemetry;

pub use cache::{ResultCache, RoutingOptConfig, ShortcutCache};
pub use explain::{ExplainReport, ExplainStep, StepKind};
pub use knn::KnnOutcome;
pub use loadgen::{
    CapacityResult, CapacityTrial, LoadConfig, LoadMode, LoadOutcome, LoadPlan, LoadPools,
    PlannedOp, PoolKind, QueryMix, SloSpec,
};
pub use msg::{QueryBall, QueryDistance, QueryId, SearchMsg, SubQueryMsg};
pub use node::{IssuedQuery, SearchNode};
pub use overlay::{FailureAware, Overlay, OverlayKind, OverlayTable};
pub use refresh::ReindexReport;
pub use resilience::ResilienceConfig;
pub use routing::{
    route_subquery, route_subquery_traced, surrogate_refine, surrogate_refine_traced, Action,
    RoutingEvent, WithShortcuts,
};
pub use store::{Entry, ScanStats, Store};
pub use system::{
    threads_from_env, IndexSpec, LoadBalanceConfig, QueryOutcome, QuerySpec, SearchSystem,
    SystemConfig,
};
pub use telemetry::{QuerySummary, QueryTrace, Telemetry, TraceEvent};
