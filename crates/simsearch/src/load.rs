//! Dynamic load migration (paper §3.4).
//!
//! A node's load is the number of index entries it stores. Each round,
//! every node probes the load of its routing-table neighborhood out to
//! probe level `P_l`; a node whose load exceeds the neighborhood average
//! by the threshold factor `δ` recruits the lightest probed node to
//! *leave* (handing its entries to its successor) and *re-join* with an
//! identifier at the heavy node's split point — the median ring key of
//! its entries — taking over half of them.
//!
//! Differences from the paper's in-protocol description, both chosen to
//! keep experiments deterministic and are noted in DESIGN.md:
//!
//! * migration runs between simulation phases (after publication, before
//!   queries) rather than on piggybacked runtime probes — the measured
//!   effect (final load distribution and the routing cost on the skewed
//!   ring, figures 3/4/6) is the same;
//! * after each round the membership change is applied globally: ring
//!   rebuilt, routing tables re-stabilized, entries re-assigned to their
//!   owners. Entry conservation is asserted.

use chord::{ChordId, NodeRef, OracleRing};
use simnet::{SimRng, Topology};

use crate::node::SearchNode;
use crate::overlay::{Overlay, OverlayKind, OverlayTable};

/// Parameters of the dynamic load-migration mechanism.
#[derive(Clone, Copy, Debug)]
pub struct LoadBalanceConfig {
    /// Threshold factor `δ`: a node is heavy when
    /// `load > avg_neighbors * (1 + δ)`. The paper's experiments use 0.
    pub delta: f64,
    /// Probe level `P_l`: how many routing-table hops the load probe
    /// explores. The paper's experiments use 4.
    pub probe_level: u32,
    /// Safety cap on migration rounds.
    pub max_rounds: usize,
}

impl Default for LoadBalanceConfig {
    fn default() -> Self {
        LoadBalanceConfig {
            delta: 0.0,
            probe_level: 4,
            max_rounds: 8,
        }
    }
}

/// What the balancer did.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadBalanceReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Total leave-and-rejoin migrations performed.
    pub migrations: usize,
}

/// Join-time balancing (paper §3.4, first mechanism): "when a new node
/// joins the system, the join request is forwarded toward a heavily
/// loaded node, which will divide its key range and assign one half to
/// the new node."
///
/// Given the ring keys of the entries to be hosted, place `n_nodes`
/// identifiers by admitting nodes one at a time: the first gets a random
/// id; every later joiner splits the key range of the currently
/// heaviest node at the median of its entries. Falls back to a random
/// id when the heaviest range cannot be divided (single-key pile-up).
pub fn load_aware_ids(entry_keys: &[u64], n_nodes: usize, rng: &mut SimRng) -> Vec<u64> {
    use rand::RngCore;
    assert!(n_nodes >= 1);
    let mut keys = entry_keys.to_vec();
    keys.sort_unstable();
    let mut ids: Vec<u64> = vec![rng.next_u64()];
    let mut taken: std::collections::HashSet<u64> = ids.iter().copied().collect();
    while ids.len() < n_nodes {
        ids.sort_unstable();
        // Count entries per arc: node ids sorted; the arc of ids[i] is
        // (ids[i-1], ids[i]], wrapping for i = 0.
        let mut counts = vec![0usize; ids.len()];
        for &k in &keys {
            let idx = ids.partition_point(|&id| id < k) % ids.len();
            counts[idx] += 1;
        }
        let (heavy, &load) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .expect("ids holds at least the bootstrap id, so counts is never empty");
        let mut new_id = None;
        if load >= 2 {
            // Median key of the heavy arc, in offset space from the arc
            // start (the predecessor id + 1).
            let pred = ids[(heavy + ids.len() - 1) % ids.len()];
            let start = pred.wrapping_add(1);
            let mut offsets: Vec<u64> = keys
                .iter()
                .filter(|&&k| {
                    let idx = ids.partition_point(|&id| id < k) % ids.len();
                    idx == heavy
                })
                .map(|&k| k.wrapping_sub(start))
                .collect();
            offsets.sort_unstable();
            if offsets[0] != offsets[offsets.len() - 1] {
                let mut m = offsets[(offsets.len() - 1) / 2];
                if m == offsets[offsets.len() - 1] {
                    let i = offsets.partition_point(|&o| o < m);
                    m = offsets[i - 1];
                }
                let candidate = start.wrapping_add(m);
                if !taken.contains(&candidate) {
                    new_id = Some(candidate);
                }
            }
        }
        let id = new_id.unwrap_or_else(|| {
            let mut id = rng.next_u64();
            while taken.contains(&id) {
                id = rng.next_u64();
            }
            id
        });
        taken.insert(id);
        ids.push(id);
    }
    // Deterministic (mostly sorted) order; callers pair ids with agent
    // addresses positionally.
    ids
}

/// The set of node addresses within `level` routing-table hops of
/// `start` (excluding `start` itself).
fn probe_set(nodes: &[SearchNode], start: usize, level: u32) -> Vec<usize> {
    let mut seen = vec![false; nodes.len()];
    seen[start] = true;
    let mut frontier = vec![start];
    let mut out = Vec::new();
    for _ in 0..level {
        let mut next = Vec::new();
        for &addr in &frontier {
            for n in nodes[addr].table.neighbors() {
                let a = n.addr.0;
                if !seen[a] {
                    seen[a] = true;
                    out.push(a);
                    next.push(a);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

/// The split identifier for a heavy node: the largest entry key that
/// leaves both halves non-empty, i.e. the median ring key *in offset
/// space* relative to the start of the node's arc. `None` when the load
/// cannot be divided (fewer than 2 entries, or every entry hashed to a
/// single key — the paper's greedy/TREC pathology).
fn split_point(node: &SearchNode, arc_start: u64) -> Option<u64> {
    let mut offsets: Vec<u64> = node
        .indexes
        .iter()
        .flat_map(|ix| ix.store.entries().iter())
        .map(|e| e.ring_key.wrapping_sub(arc_start))
        .collect();
    if offsets.len() < 2 {
        return None;
    }
    offsets.sort_unstable();
    if offsets[0] == offsets[offsets.len() - 1] {
        return None; // single key: indivisible
    }
    let mut m = offsets[(offsets.len() - 1) / 2];
    // Entries exactly at the median key go to the lower half; make sure
    // the upper half stays non-empty.
    if m == offsets[offsets.len() - 1] {
        // Walk down to the previous distinct key.
        let idx = offsets.partition_point(|&o| o < m);
        m = offsets[idx - 1];
    }
    Some(arc_start.wrapping_add(m))
}

/// Redistribute every entry to the owner its ring key maps to under the
/// (possibly new) ring. Returns the total entry count (for conservation
/// checks).
pub fn redistribute(ring: &OracleRing, nodes: &mut [SearchNode]) -> usize {
    let n_indexes = nodes.first().map(|n| n.indexes.len()).unwrap_or(0);
    let mut total = 0;
    for ix in 0..n_indexes {
        let mut all = Vec::new();
        for node in nodes.iter_mut() {
            all.extend(node.indexes[ix].store.take_all());
        }
        total += all.len();
        let mut per_addr: Vec<Vec<crate::store::Entry>> = vec![Vec::new(); nodes.len()];
        for e in all {
            let owner = ring.owner_of(ChordId(e.ring_key));
            per_addr[owner.addr.0].push(e);
        }
        for (addr, entries) in per_addr.into_iter().enumerate() {
            nodes[addr].indexes[ix].store.extend(entries);
        }
    }
    total
}

/// Rebuild stabilized routing tables for the (new) ring into the nodes,
/// preserving each node's overlay kind.
pub fn rebuild_tables(
    ring: &OracleRing,
    nodes: &mut [SearchNode],
    n_successors: usize,
    topo: Option<&Topology>,
    pns_candidates: usize,
) {
    let kind = nodes
        .first()
        .map(|n| n.table.kind())
        .unwrap_or(OverlayKind::Chord);
    match kind {
        OverlayKind::Chord => {
            for t in ring.build_all_tables(n_successors, topo, pns_candidates) {
                let addr = t.me().addr.0;
                nodes[addr].table = Overlay::Chord(t);
            }
        }
        OverlayKind::Pastry => {
            for t in pastry::build_all_tables(ring, pastry::LEAF_HALF, topo, pns_candidates) {
                let addr = t.me().addr.0;
                nodes[addr].table = Overlay::Pastry(t);
            }
        }
    }
}

/// Run dynamic load migration to convergence (or `max_rounds`).
pub fn balance(
    ring: &mut OracleRing,
    nodes: &mut [SearchNode],
    cfg: &LoadBalanceConfig,
    topo: &Topology,
    n_successors: usize,
    pns_candidates: usize,
    rng: &mut SimRng,
) -> LoadBalanceReport {
    balance_with_telemetry(
        ring,
        nodes,
        cfg,
        topo,
        n_successors,
        pns_candidates,
        rng,
        None,
    )
}

/// [`balance`], additionally recording `lb.rounds`, `lb.migrations` and a
/// per-round `lb.migrations_per_round` histogram into `registry`.
#[allow(clippy::too_many_arguments)]
pub fn balance_with_telemetry(
    ring: &mut OracleRing,
    nodes: &mut [SearchNode],
    cfg: &LoadBalanceConfig,
    topo: &Topology,
    n_successors: usize,
    pns_candidates: usize,
    rng: &mut SimRng,
    mut registry: Option<&mut simnet::Registry>,
) -> LoadBalanceReport {
    let mut report = LoadBalanceReport::default();
    let before: usize = nodes.iter().map(|n| n.load()).sum();
    for _round in 0..cfg.max_rounds {
        report.rounds += 1;
        // Current ids by address.
        let mut id_of: Vec<u64> = vec![0; nodes.len()];
        for nd in ring.nodes() {
            id_of[nd.addr.0] = nd.id.0;
        }
        let mut loads: Vec<usize> = nodes.iter().map(|n| n.load()).collect();
        let mut new_ids = id_of.clone();
        let mut moved_this_round = 0usize;
        let mut migrated: Vec<bool> = vec![false; nodes.len()];

        // Heaviest nodes act first (deterministic tie-break by address).
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by_key(|&a| (std::cmp::Reverse(loads[a]), a));
        for h in order {
            if migrated[h] || loads[h] < 2 {
                continue;
            }
            let probes = probe_set(nodes, h, cfg.probe_level);
            let candidates: Vec<usize> = probes.into_iter().filter(|&a| !migrated[a]).collect();
            if candidates.is_empty() {
                continue;
            }
            let avg =
                candidates.iter().map(|&a| loads[a] as f64).sum::<f64>() / candidates.len() as f64;
            if (loads[h] as f64) <= avg * (1.0 + cfg.delta) {
                continue;
            }
            // Lightest probed node becomes the helper; only worth it if
            // taking half the heavy node's load is a strict improvement
            // for the maximum of the pair.
            let &victim = candidates
                .iter()
                .min_by_key(|&&a| (loads[a], a))
                .expect("candidates checked non-empty above");
            if victim == h || loads[victim] * 2 >= loads[h] {
                continue;
            }
            // The victim's entries are handed to its successor when it
            // leaves. If that handoff would make the successor the new
            // hot spot, the migration is a net loss — it shifts the
            // peak instead of removing it and can cascade for rounds
            // (each round's new peak recruiting another victim). Only
            // migrate when every affected node ends below the current
            // peak. (When the successor IS the heavy node the handoff
            // is folded into the split itself and the earlier
            // half-load guard already bounds it.)
            let handoff_succ = ring.successor_of(ChordId(id_of[victim].wrapping_add(1)));
            if handoff_succ.addr.0 != victim
                && handoff_succ.addr.0 != h
                && loads[handoff_succ.addr.0] + loads[victim] >= loads[h]
            {
                continue;
            }
            let pred = ring.predecessor_of(ChordId(id_of[h]));
            let arc_start = if pred.addr.0 == h {
                // Single-node ring: arc is the whole circle.
                id_of[h].wrapping_add(1)
            } else {
                id_of[pred.addr.0].wrapping_add(1)
            };
            let Some(split) = split_point(&nodes[h], arc_start) else {
                continue; // indivisible hotspot (single-key pile-up)
            };
            // The victim leaves and rejoins at the split point. Collision
            // avoidance: bump until the id is free.
            let mut id = split;
            let taken: std::collections::HashSet<u64> = new_ids
                .iter()
                .enumerate()
                .filter(|&(a, _)| a != victim)
                .map(|(_, &v)| v)
                .collect();
            while taken.contains(&id) {
                id = id.wrapping_add(1);
            }
            new_ids[victim] = id;
            migrated[victim] = true;
            migrated[h] = true;
            moved_this_round += 1;
            // Approximate load bookkeeping for the rest of this round;
            // exact loads are restored by the redistribution below.
            let succ = ring.successor_of(ChordId(id_of[victim].wrapping_add(1)));
            if succ.addr.0 != victim {
                loads[succ.addr.0] += loads[victim];
            }
            let moved = loads[h] / 2;
            loads[victim] = moved;
            loads[h] -= moved;
            let _ = rng; // ordering is deterministic; rng reserved for tie policies
        }

        if let Some(reg) = registry.as_deref_mut() {
            reg.incr("lb.rounds", 1);
            reg.observe("lb.migrations_per_round", moved_this_round as u64);
        }
        if moved_this_round == 0 {
            break;
        }
        report.migrations += moved_this_round;
        if let Some(reg) = registry.as_deref_mut() {
            reg.incr("lb.migrations", moved_this_round as u64);
        }
        *ring = OracleRing::new(
            new_ids
                .iter()
                .enumerate()
                .map(|(addr, &id)| NodeRef::new(id, addr))
                .collect(),
        );
        let after = redistribute(ring, nodes);
        assert_eq!(before, after, "load migration lost or duplicated entries");
        rebuild_tables(ring, nodes, n_successors, Some(topo), pns_candidates);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::DistanceOracle;
    use crate::node::IndexState;
    use crate::store::{Entry, Store};
    use lph::{Grid, Rect, Rotation};
    use metric::ObjectId;
    use std::sync::Arc;

    fn make_world(n: usize, entry_keys: &[u64]) -> (OracleRing, Vec<SearchNode>, Topology) {
        let mut rng = SimRng::new(99);
        let ring = OracleRing::with_random_ids(n, &mut rng);
        let topo = Topology::king_like(n, 3, 180.0);
        let tables = ring.build_all_tables(8, None, 8);
        let grid = Arc::new(Grid::new(Rect::cube(1, 0.0, 1.0), 16));
        let oracle: DistanceOracle = Arc::new(|_q, _o: ObjectId| 0.0);
        let mut nodes: Vec<SearchNode> = tables
            .into_iter()
            .map(|t| {
                SearchNode::new(
                    t,
                    vec![IndexState {
                        grid: Arc::clone(&grid),
                        rotation: Rotation::IDENTITY,
                        store: Store::new(),
                    }],
                    Arc::clone(&oracle),
                    10,
                    None,
                )
            })
            .collect();
        for (i, &k) in entry_keys.iter().enumerate() {
            let owner = ring.owner_of(ChordId(k));
            nodes[owner.addr.0].indexes[0].store.insert(Entry {
                ring_key: k,
                obj: ObjectId(i as u32),
                point: vec![0.5].into_boxed_slice(),
            });
        }
        (ring, nodes, topo)
    }

    #[test]
    fn skewed_load_gets_flattened() {
        // 2000 entries crammed into a narrow key band: one or two nodes
        // hold everything before balancing.
        let keys: Vec<u64> = (0..2000u64).map(|i| (1u64 << 40) + i * 1000).collect();
        let (mut ring, mut nodes, topo) = make_world(32, &keys);
        let max_before = nodes.iter().map(|n| n.load()).max().unwrap();
        assert!(max_before > 500, "setup must be skewed, got {max_before}");
        let cfg = LoadBalanceConfig::default();
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert!(report.migrations > 0);
        let max_after = nodes.iter().map(|n| n.load()).max().unwrap();
        let total: usize = nodes.iter().map(|n| n.load()).sum();
        assert_eq!(total, 2000, "entries conserved");
        assert!(
            max_after * 4 < max_before,
            "max load should drop: {max_before} -> {max_after}"
        );
    }

    #[test]
    fn balance_records_telemetry() {
        let keys: Vec<u64> = (0..2000u64).map(|i| (1u64 << 40) + i * 1000).collect();
        let (mut ring, mut nodes, topo) = make_world(32, &keys);
        let cfg = LoadBalanceConfig::default();
        let mut rng = SimRng::new(5);
        let mut reg = simnet::Registry::new();
        let report = balance_with_telemetry(
            &mut ring,
            &mut nodes,
            &cfg,
            &topo,
            8,
            8,
            &mut rng,
            Some(&mut reg),
        );
        assert_eq!(reg.counter("lb.rounds") as usize, report.rounds);
        assert_eq!(reg.counter("lb.migrations") as usize, report.migrations);
        let h = reg.histogram("lb.migrations_per_round").unwrap();
        assert_eq!(h.count() as usize, report.rounds);
        assert_eq!(h.sum() as usize, report.migrations);
    }

    #[test]
    fn single_key_pileup_cannot_be_divided() {
        // Every entry hashes to one key — the paper's greedy/TREC
        // pathology: migration must refuse to split it.
        let keys: Vec<u64> = vec![12345; 500];
        let (mut ring, mut nodes, topo) = make_world(16, &keys);
        let cfg = LoadBalanceConfig::default();
        let mut rng = SimRng::new(5);
        let _ = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        let max_after = nodes.iter().map(|n| n.load()).max().unwrap();
        assert_eq!(max_after, 500, "single-key load is indivisible");
        let total: usize = nodes.iter().map(|n| n.load()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn uniform_load_is_left_alone_under_positive_delta() {
        // Perfectly spreadable uniform keys with a generous threshold:
        // few or no migrations needed after the first smoothing.
        let keys: Vec<u64> = (0..1024u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let (mut ring, mut nodes, topo) = make_world(64, &keys);
        let cfg = LoadBalanceConfig {
            delta: 4.0,
            ..LoadBalanceConfig::default()
        };
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        let total: usize = nodes.iter().map(|n| n.load()).sum();
        assert_eq!(total, 1024);
        assert!(
            report.migrations <= 4,
            "high delta should suppress migration, got {}",
            report.migrations
        );
    }

    #[test]
    fn load_aware_ids_flatten_skewed_keys() {
        // 2000 keys in a narrow band: random ids put almost everything
        // on one node; load-aware admission splits the hot range.
        let keys: Vec<u64> = (0..2000u64).map(|i| (1u64 << 40) + i * 1000).collect();
        let count_max = |ids: &[u64]| {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            let mut counts = vec![0usize; sorted.len()];
            for &k in &keys {
                let idx = sorted.partition_point(|&id| id < k) % sorted.len();
                counts[idx] += 1;
            }
            counts.into_iter().max().unwrap()
        };
        let mut rng = SimRng::new(12);
        let aware = load_aware_ids(&keys, 32, &mut rng);
        assert_eq!(aware.len(), 32);
        let mut dedup = aware.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 32, "ids must be distinct");
        let mut rng2 = SimRng::new(12);
        let random = OracleRing::with_random_ids(32, &mut rng2)
            .nodes()
            .iter()
            .map(|n| n.id.0)
            .collect::<Vec<_>>();
        let aware_max = count_max(&aware);
        let random_max = count_max(&random);
        assert!(
            aware_max * 4 <= random_max,
            "load-aware {aware_max} should be far below random {random_max}"
        );
        // Near-perfect split: 2000 entries / 32 nodes ≈ 63.
        assert!(aware_max <= 2000 / 32 * 3, "max arc load {aware_max}");
    }

    #[test]
    fn load_aware_ids_survive_single_key_pileup() {
        let keys = vec![77u64; 500];
        let mut rng = SimRng::new(3);
        let ids = load_aware_ids(&keys, 8, &mut rng);
        assert_eq!(ids.len(), 8);
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn probe_set_respects_level() {
        let keys: Vec<u64> = (0..100u64).map(|i| i << 32).collect();
        let (_ring, nodes, _topo) = make_world(40, &keys);
        let l1 = probe_set(&nodes, 0, 1);
        let l2 = probe_set(&nodes, 0, 2);
        assert!(!l1.is_empty());
        assert!(l2.len() >= l1.len());
        assert!(!l1.contains(&0));
        // Level-1 probes are exactly the routing table's known nodes.
        let known: Vec<usize> = nodes[0]
            .table
            .neighbors()
            .iter()
            .map(|n| n.addr.0)
            .collect();
        let mut l1s = l1.clone();
        l1s.sort_unstable();
        let mut ks = known;
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(l1s, ks);
    }

    #[test]
    fn redistribute_is_conservative_and_correct() {
        let keys: Vec<u64> = (0..300u64).map(|i| i.wrapping_mul(0xABCDEF123)).collect();
        let (ring, mut nodes, _topo) = make_world(16, &keys);
        let total = redistribute(&ring, &mut nodes);
        assert_eq!(total, 300);
        // Every entry sits on its owner.
        for node in &nodes {
            for e in node.indexes[0].store.entries() {
                let owner = ring.owner_of(ChordId(e.ring_key));
                assert_eq!(owner.id, node.table.me_ref().id);
            }
        }
    }

    /// A world with an exact, hand-placed load per node: `loads[slot]`
    /// entries land on the node at sorted-ring position `slot` (keys
    /// just below each node's own id — random 64-bit ids leave arcs
    /// wide enough that the keys stay in-arc, which the assertions at
    /// the end re-check).
    fn world_with_loads(loads: &[usize]) -> (OracleRing, Vec<SearchNode>, Topology) {
        let n = loads.len();
        let mut rng = SimRng::new(424_242);
        let ring = OracleRing::with_random_ids(n, &mut rng);
        let mut order: Vec<NodeRef> = ring.nodes().to_vec();
        order.sort_by_key(|nd| nd.id.0);
        let mut keys = Vec::new();
        for (slot, nd) in order.iter().enumerate() {
            for j in 0..loads[slot] {
                keys.push(nd.id.0 - j as u64);
            }
        }
        let topo2 = Topology::king_like(n, 3, 180.0);
        let tables = ring.build_all_tables(8, None, 8);
        let grid = Arc::new(Grid::new(Rect::cube(1, 0.0, 1.0), 16));
        let oracle: DistanceOracle = Arc::new(|_q, _o: ObjectId| 0.0);
        let mut nodes2: Vec<SearchNode> = tables
            .into_iter()
            .map(|t| {
                SearchNode::new(
                    t,
                    vec![IndexState {
                        grid: Arc::clone(&grid),
                        rotation: Rotation::IDENTITY,
                        store: Store::new(),
                    }],
                    Arc::clone(&oracle),
                    10,
                    None,
                )
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            let owner = ring.owner_of(ChordId(k));
            nodes2[owner.addr.0].indexes[0].store.insert(Entry {
                ring_key: k,
                obj: ObjectId(i as u32),
                point: vec![0.5].into_boxed_slice(),
            });
        }
        for (slot, nd) in order.iter().enumerate() {
            assert_eq!(
                nodes2[nd.addr.0].load(),
                loads[slot],
                "arc too narrow for hand-placed load at slot {slot}"
            );
        }
        (ring, nodes2, topo2)
    }

    #[test]
    fn probe_level_zero_never_triggers() {
        // With no probe reach there is no neighborhood to compare
        // against, so even an extreme hot spot must stay put.
        let (mut ring, mut nodes, topo) = world_with_loads(&[100, 0, 0, 0]);
        let cfg = LoadBalanceConfig {
            probe_level: 0,
            ..LoadBalanceConfig::default()
        };
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert_eq!(report.migrations, 0, "probe level 0 must never migrate");
        assert_eq!(nodes.iter().map(|n| n.load()).max().unwrap(), 100);
    }

    #[test]
    fn exact_threshold_load_does_not_trigger() {
        // Heavy node at EXACTLY avg * (1 + δ): the paper's trigger is
        // strict (`load > avg (1 + δ)`), so nothing may move; one unit
        // of slack under the threshold must migrate.
        // 4 nodes, level-4 probes reach everyone: avg of the others is
        // 10, so δ = 2.0 puts the threshold exactly at 30.
        let (mut ring, mut nodes, topo) = world_with_loads(&[30, 10, 10, 10]);
        let cfg = LoadBalanceConfig {
            delta: 2.0,
            ..LoadBalanceConfig::default()
        };
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert_eq!(report.migrations, 0, "load == avg*(1+δ) must not trigger");

        let (mut ring, mut nodes, topo) = world_with_loads(&[30, 10, 10, 10]);
        let cfg = LoadBalanceConfig {
            delta: 1.9,
            ..LoadBalanceConfig::default()
        };
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert!(report.migrations > 0, "load above avg*(1+δ) must trigger");
    }

    #[test]
    fn victim_with_half_the_heavy_load_is_not_recruited() {
        // The only victims on offer already hold half the heavy node's
        // load: splitting with them cannot strictly improve the peak.
        let (mut ring, mut nodes, topo) = world_with_loads(&[40, 25, 25, 25]);
        let cfg = LoadBalanceConfig::default(); // δ = 0: 40 > 25 triggers
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert_eq!(
            report.migrations, 0,
            "a victim holding >= half the heavy load must be refused"
        );
        assert_eq!(nodes.iter().map(|n| n.load()).max().unwrap(), 40);
    }

    #[test]
    fn handoff_that_creates_a_new_peak_is_refused() {
        // The trigger bug surfaced by the flash-crowd scenario: the
        // lightest probed node (8) is a fine split helper by the
        // half-load guard alone, but leaving hands its 8 entries to its
        // successor (35), creating a NEW 43-entry peak above the
        // original 40 — and cascading for rounds. The handoff guard
        // must refuse the migration outright.
        // Sorted-ring layout: [victim 8, its successor 35, heavy 40,
        // 20, 20]; δ = 0.8 puts only the 40-node over threshold
        // (its neighborhood average is 20.75 → threshold 37.35).
        let (mut ring, mut nodes, topo) = world_with_loads(&[8, 35, 40, 20, 20]);
        let cfg = LoadBalanceConfig {
            delta: 0.8,
            ..LoadBalanceConfig::default()
        };
        let mut rng = SimRng::new(5);
        let report = balance(&mut ring, &mut nodes, &cfg, &topo, 8, 8, &mut rng);
        assert_eq!(
            report.migrations, 0,
            "migration that shifts the peak to the victim's successor must be refused"
        );
        assert_eq!(nodes.iter().map(|n| n.load()).max().unwrap(), 40);
        let total: usize = nodes.iter().map(|n| n.load()).sum();
        assert_eq!(total, 123);
    }

    #[test]
    fn split_point_balances_halves() {
        let keys: Vec<u64> = (0..101u64).map(|i| 1000 + i * 10).collect();
        let (ring, nodes, _topo) = make_world(1, &keys);
        let me = ring.nodes()[0];
        let arc_start = me.id.0.wrapping_add(1); // single node: whole circle
        let split = split_point(&nodes[0], arc_start).unwrap();
        let lower = keys
            .iter()
            .filter(|&&k| k.wrapping_sub(arc_start) <= split.wrapping_sub(arc_start))
            .count();
        assert!(
            (lower as i64 - 50).abs() <= 1,
            "split should halve: lower={lower}"
        );
    }
}
